//! # cets — Cost-Effective Tuning Searches
//!
//! Umbrella crate re-exporting the whole CETS workspace: a Rust
//! reproduction of *"Cost-Effective Methodology for Complex Tuning Searches
//! in HPC: Navigating Interdependencies and Dimensionality"* (IPDPS 2024).
//!
//! Start with [`core`] (the methodology and the Bayesian-optimization
//! engine), then [`synthetic`] and [`tddft`] for the paper's two evaluation
//! targets. See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use cets_core as core;
pub use cets_gp as gp;
pub use cets_graph as graph;
pub use cets_linalg as linalg;
pub use cets_lint as lint;
pub use cets_serve as serve;
pub use cets_space as space;
pub use cets_stats as stats;
pub use cets_stencil as stencil;
pub use cets_synthetic as synthetic;
pub use cets_tddft as tddft;
