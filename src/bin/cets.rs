//! `cets` — command-line front end for the CETS tuning methodology.
//!
//! ```text
//! cets synthetic --case 3 [--cutoff 0.25] [--evals-per-dim 10] [--seed 0] [--report out.md]
//!                [--gp-tier auto|exact|sparse|auto:N] [--inducing m]
//! cets tddft --case 1 [--cutoff 0.10] [--evals-per-dim 10] [--seed 0] [--report out.md]
//!                    [--db out.json] [--gp-tier auto|exact|sparse|auto:N] [--inducing m]
//! cets serve --data <dir> [--spool <dir>] [--fsync always|never] [--max-restarts n]
//!            [--sim-kill-at k[:torn]] [--threads n]
//! cets lint <plan.json> [--format human|json|sarif] [--deny-warnings]
//! cets analyze <plan.json> [--format human|json|sarif] [--deny-warnings]
//!                          [--domain interval|octagon|product] [--contract [out.json]]
//! cets analyze --explain <CODE>
//! cets help
//! ```
//!
//! Runs the full pipeline (sensitivity → DAG → plan → staged BO execution)
//! on one of the two built-in evaluation targets and prints (optionally
//! writes) the markdown tuning report. `cets lint` statically validates a
//! plan-bundle file (search space + influence DAG + staged plan + kernel)
//! without evaluating anything; exit code 0 means the plan passed, 1 means
//! diagnostics denied it, 2 means the file could not be read or parsed.
//! `cets analyze` additionally runs the abstract-interpretation
//! feasibility engine (diagnostic codes `A001`–`A011`): it proves
//! constraints unsatisfiable or tautological over the declared domains and
//! contracts the box bounds to the feasible region. The default `product`
//! domain is the reduced product of the relational octagon (differences
//! and sums `±x ± y <= c`, disjunctive branch-and-prune), a congruence
//! domain (`n ≡ r mod m` residue grids from `%` constraints, `A009`), and
//! a finite-set domain over ordinal/categorical parameters (dead options
//! `A010`, forced values `A011`); `--domain octagon` drops the last two
//! and `--domain interval` falls back to the plain per-parameter interval
//! analysis. With `--contract` the rewritten plan (tightened bounds
//! applied, dead options pruned) is printed to stdout — or written to a
//! file when the flag is given a path — while the report moves to stderr.
//! `cets analyze --explain <CODE>` prints the reference entry for any
//! diagnostic code without needing a plan file.
//!
//! `cets serve` runs the durable campaign service: it opens (or recovers)
//! the write-ahead log under `--data`, ingests any JSON campaign specs
//! from the `--spool` directory, drives every open campaign to a terminal
//! state, prints the summary, and exits. Killing the process at any
//! moment — `kill -9` included — loses at most the evaluation in flight:
//! re-running the same command replays the log and continues every
//! campaign bit-for-bit. Exit codes: 0 all campaigns succeeded, 1 some
//! campaign failed terminally, 2 usage or state error, 3 a simulated kill
//! (`--sim-kill-at`, testing only) fired.

use cets::core::{
    render_markdown, BoConfig, FaultPlan, FaultyObjective, Methodology, MethodologyConfig,
    Objective, ResilienceConfig, SystemClock, VariationPolicy,
};
use cets::synthetic::{SyntheticCase, SyntheticFunction};
use cets::tddft::{CaseStudy, TddftSimulator};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                // A flag followed by another flag (or nothing) is boolean.
                match raw.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(value) => {
                        flags.push((name.to_string(), value.clone()));
                        i += 2;
                    }
                    None => {
                        flags.push((name.to_string(), String::new()));
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Args { flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_str(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn usage() {
    eprintln!("cets — cost-effective tuning searches for HPC");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  cets synthetic --case <1..5> [options]   tune a synthetic function");
    eprintln!("  cets tddft     --case <1|2>  [options]   tune the RT-TDDFT simulator");
    eprintln!("  cets lint      <plan.json>   [options]   statically validate a plan bundle");
    eprintln!("  cets analyze   <plan.json>   [options]   lint + interval feasibility analysis");
    eprintln!("  cets serve     --data <dir>  [options]   run the durable campaign service");
    eprintln!();
    eprintln!("OPTIONS:");
    eprintln!("  --cutoff <f>         influence cut-off (default: 0.25 synthetic, 0.10 tddft)");
    eprintln!("  --evals-per-dim <n>  BO budget per dimension (default 10)");
    eprintln!("  --seed <n>           RNG seed (default 0)");
    eprintln!("  --threads <n>        worker threads for GP training, linear algebra and");
    eprintln!("                       concurrent stage searches (default: CETS_THREADS env");
    eprintln!("                       var, else all cores); results are bit-identical at");
    eprintln!("                       any thread count — only wall-clock time changes");
    eprintln!("  --report <path>      also write the markdown report to a file");
    eprintln!("  --db <path>          (tddft) save the evaluation database as JSON");
    eprintln!("  --resilient          run execution under the fault-tolerant layer:");
    eprintln!("                       panics are contained, non-finite results screened,");
    eprintln!("                       and the report gains a per-search failure ledger");
    eprintln!("  --inject-flaky <p>   (synthetic) deterministically inject faults (panics,");
    eprintln!("                       NaNs) into a fraction p of evaluations; implies");
    eprintln!("                       --resilient — a demo of graceful degradation");
    eprintln!("  --gp-tier <t>        surrogate tier: `auto` (default; exact GP below the");
    eprintln!("                       escalation threshold, sparse SGPR above), `auto:N`");
    eprintln!("                       (auto with threshold N), `exact`, or `sparse`");
    eprintln!("  --inducing <m>       (sparse tier) number of inducing points (default 48)");
    eprintln!();
    eprintln!("LINT / ANALYZE OPTIONS:");
    eprintln!("  --format <human|json|sarif>  output format (default human)");
    eprintln!("  --deny-warnings              exit non-zero on warnings, not just errors");
    eprintln!("  --domain <d>                 (analyze) abstract domain: `product` (default,");
    eprintln!("                               octagon × congruence × finite sets), `octagon`");
    eprintln!("                               (relational, disjunctive splitting), or the");
    eprintln!("                               plain `interval` analysis");
    eprintln!("  --contract [out.json]        (analyze) emit the plan with statically");
    eprintln!("                               contracted bounds applied and dead ordinal/");
    eprintln!("                               categorical options pruned");
    eprintln!("  --explain <CODE>             (analyze) print the reference entry for a");
    eprintln!("                               diagnostic code (S/G/N/A) and exit");
    eprintln!();
    eprintln!("SERVE OPTIONS:");
    eprintln!("  --data <dir>                 service directory (holds the write-ahead log);");
    eprintln!("                               reopening it recovers every campaign bit-for-bit");
    eprintln!("  --spool <dir>                ingest campaign specs (*.json) from a spool");
    eprintln!("                               directory; files are never modified or removed");
    eprintln!("  --fsync <always|never>       WAL durability (default always: every record is");
    eprintln!("                               synced before the evaluation result is used)");
    eprintln!("  --max-restarts <n>           per-campaign restart budget (default 2)");
    eprintln!("  --sim-kill-at <k[:torn]>     (testing) simulate a process kill once the WAL");
    eprintln!("                               holds k records, tearing the next write after");
    eprintln!("                               `torn` bytes; exits with code 3");
}

fn run_pipeline<O: Objective>(
    objective: &O,
    owners: &[(String, String)],
    title: &str,
    methodology: Methodology,
    report_path: Option<&str>,
    db_path: Option<&str>,
) -> ExitCode {
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let baseline = objective.default_config();
    let default_value = objective.evaluate(&baseline).total;
    eprintln!("analyzing {title} (untuned objective: {default_value:.4})...");
    let (report, exec) = match methodology.run(objective, &pairs, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let md = render_markdown(objective, title, &report, Some(&exec));
    println!("{md}");
    eprintln!(
        "tuned: {:.4} -> {:.4} ({:.1}% improvement, {} evaluations)",
        default_value,
        exec.final_value,
        (1.0 - exec.final_value / default_value) * 100.0,
        exec.total_evals
    );
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(path, &md) {
            eprintln!("error writing report {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }
    if let Some(path) = db_path {
        if let Err(e) = exec.database.save(std::path::Path::new(path)) {
            eprintln!("error writing database {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "database written to {path} ({} records)",
            exec.database.len()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        usage();
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&raw[1..]);
    let evals_per_dim: usize = args.get("evals-per-dim", 10);
    let seed: u64 = args.get("seed", 0);
    if let Some(v) = args.get_str("threads") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => cets::linalg::par::set_global_threads(n),
            _ => {
                eprintln!("--threads must be a positive integer, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let flaky_rate: Option<f64> = match args.get_str("inject-flaky") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => (p > 0.0).then_some(p),
            _ => {
                eprintln!("--inject-flaky must be a probability in [0, 1], got {v:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let resilient = args.get_str("resilient").is_some() || flaky_rate.is_some();
    let gp_cfg = {
        let mut gp = cets::gp::GpConfig::default();
        if let Some(v) = args.get_str("gp-tier") {
            gp.tier = match v {
                "auto" => cets::gp::TierPolicy::default(),
                "exact" => cets::gp::TierPolicy::Exact,
                "sparse" => cets::gp::TierPolicy::Sparse,
                other => match other
                    .strip_prefix("auto:")
                    .and_then(|t| t.parse::<usize>().ok())
                {
                    Some(threshold) if threshold > 0 => cets::gp::TierPolicy::Auto { threshold },
                    _ => {
                        eprintln!("--gp-tier must be auto, exact, sparse or auto:<N>, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                },
            };
        }
        if let Some(v) = args.get_str("inducing") {
            match v.parse::<usize>() {
                Ok(m) if m > 0 => gp.sparse.m_inducing = m,
                _ => {
                    eprintln!("--inducing must be a positive integer, got {v:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
        gp
    };

    match cmd.as_str() {
        "synthetic" => {
            let case_no: usize = args.get("case", 3);
            if !(1..=5).contains(&case_no) {
                eprintln!("--case must be 1..5");
                return ExitCode::FAILURE;
            }
            let case = SyntheticCase::all()[case_no - 1];
            let cutoff: f64 = args.get("cutoff", 0.25);
            // Analysis on the raw routine scale, execution on the log
            // objective (see cets-synthetic docs).
            let analysis = SyntheticFunction::new(case).with_seed(seed).as_raw();
            let owners = SyntheticFunction::owners();
            let m = Methodology::new(MethodologyConfig {
                cutoff,
                variation_policy: VariationPolicy::Multiplicative {
                    count: 30,
                    factor: 0.1,
                },
                bo: BoConfig {
                    seed,
                    gp: gp_cfg.clone(),
                    ..Default::default()
                },
                evals_per_dim,
                resilience: resilient.then(ResilienceConfig::default),
                ..Default::default()
            });
            // Analyze on the raw routine scale, execute against the
            // paper's log-scale objective.
            let exec_f = SyntheticFunction::new(case).with_seed(seed);
            let pairs = SyntheticFunction::owner_pairs(&owners);
            let baseline = match analysis.space().decode(&[0.6; 20]) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error building the analysis baseline: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let default_value = exec_f.evaluate(&exec_f.default_config()).total;
            eprintln!(
                "analyzing {} (untuned objective: {default_value:.4})...",
                case.name()
            );
            let report = match m.analyze(&analysis, &pairs, &baseline) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let exec = match flaky_rate {
                Some(rate) => {
                    // Demo of graceful degradation: a seeded fraction of
                    // evaluations panics or returns NaN; the resilient layer
                    // contains both. The default panic hook would spam a
                    // backtrace per injected crash, so silence it.
                    std::panic::set_hook(Box::new(|_| {}));
                    let plan = FaultPlan {
                        flaky_rate: rate,
                        seed,
                        ..Default::default()
                    };
                    let faulty = FaultyObjective::new(&exec_f, plan, Arc::new(SystemClock::new()));
                    let out = m.execute(&faulty, &report);
                    eprintln!(
                        "fault injection: {} of {} evaluations sabotaged",
                        faulty.injected(),
                        faulty.evaluations()
                    );
                    out
                }
                None => m.execute(&exec_f, &report),
            };
            let exec = match exec {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let md = render_markdown(&exec_f, &case.name(), &report, Some(&exec));
            println!("{md}");
            eprintln!(
                "tuned: {:.4} -> {:.4} ({:.1}% improvement, {} evaluations)",
                default_value,
                exec.final_value,
                (1.0 - exec.final_value / default_value) * 100.0,
                exec.total_evals
            );
            if let Some(path) = args.get_str("report") {
                if let Err(e) = std::fs::write(path, &md) {
                    eprintln!("error writing report {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("report written to {path}");
            }
            ExitCode::SUCCESS
        }
        "tddft" => {
            let case_no: usize = args.get("case", 1);
            let case = match case_no {
                1 => CaseStudy::case1(),
                2 => CaseStudy::case2(),
                _ => {
                    eprintln!("--case must be 1 or 2");
                    return ExitCode::FAILURE;
                }
            };
            let cutoff: f64 = args.get("cutoff", 0.10);
            let sim = TddftSimulator::new(case)
                .with_seed(seed)
                .with_expert_constraints();
            let owners = TddftSimulator::owners();
            let m = Methodology::new(MethodologyConfig {
                cutoff,
                variation_policy: VariationPolicy::Spread { count: 5 },
                precedence: vec!["Slater".into(), "MPI".into()],
                shared_params: TddftSimulator::shared_params(),
                bo: BoConfig {
                    seed,
                    gp: gp_cfg.clone(),
                    ..Default::default()
                },
                evals_per_dim,
                resilience: resilient.then(ResilienceConfig::default),
                ..Default::default()
            });
            run_pipeline(
                &sim,
                &owners,
                &sim.case().name.clone(),
                m,
                args.get_str("report"),
                args.get_str("db"),
            )
        }
        "lint" | "analyze" => {
            let analyze_mode = cmd == "analyze";
            if analyze_mode {
                if let Some(code) = args.get_str("explain") {
                    match cets::lint::explain(code) {
                        Some(entry) => {
                            print!("{}", cets::lint::render_explain(entry));
                            return ExitCode::SUCCESS;
                        }
                        None => {
                            eprintln!("unknown diagnostic code: {code:?} (expected S/G/N/A codes like A009)");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            let Some(path) = raw.get(1).filter(|p| !p.starts_with("--")) else {
                eprintln!(
                    "usage: cets {cmd} <plan.json> [--format human|json|sarif] [--deny-warnings]{}",
                    if analyze_mode {
                        " [--domain interval|octagon|product] [--contract [out.json]] \
                         [--explain <CODE>]"
                    } else {
                        ""
                    }
                );
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let bundle = match cets::lint::load_str(&src) {
                Ok(mut b) => {
                    b.spans.file = Some(path.clone());
                    b
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let options = match args.get_str("domain").unwrap_or("product") {
                "product" => cets::lint::AnalysisOptions::default(),
                "octagon" => cets::lint::AnalysisOptions {
                    domain: cets::lint::Domain::Octagon,
                    ..Default::default()
                },
                "interval" => cets::lint::AnalysisOptions {
                    domain: cets::lint::Domain::Interval,
                    ..Default::default()
                },
                other => {
                    eprintln!("unknown --domain {other} (expected interval, octagon or product)");
                    return ExitCode::from(2);
                }
            };
            let report = if analyze_mode {
                cets::lint::analyze_with(&bundle, options)
            } else {
                cets::lint::lint(&bundle)
            };
            let rendered = match args.get_str("format").unwrap_or("human") {
                "json" => cets::lint::render_json(&report),
                "sarif" => cets::lint::render_sarif(&report),
                "human" => cets::lint::render_human(&report),
                other => {
                    eprintln!("unknown --format {other} (expected human, json or sarif)");
                    return ExitCode::from(2);
                }
            };
            match analyze_mode.then(|| args.get_str("contract")).flatten() {
                None => println!("{rendered}"),
                Some(out_path) => {
                    let analysis = cets::lint::analyze_space_with(&bundle, &options);
                    let contracted = match cets::lint::rewrite_contracted(&src, &analysis) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    if out_path.is_empty() {
                        // Plan to stdout (pipe-friendly), report to stderr.
                        eprintln!("{rendered}");
                        println!("{contracted}");
                    } else {
                        if let Err(e) = std::fs::write(out_path, format!("{contracted}\n")) {
                            eprintln!("error writing {out_path}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("{rendered}");
                        eprintln!("contracted plan written to {out_path}");
                    }
                }
            }
            let deny_warnings = raw.iter().any(|a| a == "--deny-warnings");
            let denied = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
            if denied {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "serve" => {
            let Some(data) = args.get_str("data") else {
                eprintln!(
                    "usage: cets serve --data <dir> [--spool <dir>] [--fsync always|never] \
                     [--max-restarts n] [--sim-kill-at k[:torn]]"
                );
                return ExitCode::from(2);
            };
            let fsync = match args.get_str("fsync").unwrap_or("always") {
                "always" => cets::serve::FsyncPolicy::Always,
                "never" => cets::serve::FsyncPolicy::Never,
                other => {
                    eprintln!("--fsync must be `always` or `never`, got {other:?}");
                    return ExitCode::from(2);
                }
            };
            let kill = match args.get_str("sim-kill-at") {
                None => None,
                Some(v) => {
                    let (k, torn) = match v.split_once(':') {
                        Some((k, t)) => (k.parse::<usize>(), t.parse::<usize>()),
                        None => (v.parse::<usize>(), Ok(0)),
                    };
                    match (k, torn) {
                        (Ok(after_records), Ok(torn_bytes)) => Some(cets::serve::KillSpec {
                            after_records,
                            torn_bytes,
                        }),
                        _ => {
                            eprintln!("--sim-kill-at must be <k> or <k:torn>, got {v:?}");
                            return ExitCode::from(2);
                        }
                    }
                }
            };
            let mut config = cets::serve::ServeConfig::new(data);
            config.spool_dir = args.get_str("spool").map(std::path::PathBuf::from);
            config.fsync = fsync;
            config.restart.max_restarts = args.get("max-restarts", 2);
            config.kill = kill;
            // Injected faults and contained panics are expected service
            // traffic; keep the default hook from spamming backtraces.
            std::panic::set_hook(Box::new(|_| {}));
            let mut svc = match cets::serve::Service::open(config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error opening service: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(reason) = &svc.recovery.truncated {
                eprintln!("wal: repaired torn tail ({reason})");
            }
            eprintln!(
                "wal: recovered {} records, {} campaigns",
                svc.recovery.records,
                svc.state().campaigns.len()
            );
            match svc.intake_spool() {
                Ok((accepted, rejected)) => {
                    if accepted + rejected > 0 {
                        eprintln!("spool: accepted {accepted}, rejected {rejected}");
                    }
                }
                // A simulated kill can fire while logging the intake
                // itself — same exit code as a kill mid-campaign, so the
                // chaos matrix can sweep every record count uniformly.
                Err(cets::serve::ServeError::SimulatedCrash { records }) => {
                    eprintln!("simulated kill fired with {records} records durable");
                    return ExitCode::from(3);
                }
                Err(e) => {
                    eprintln!("error scanning spool: {e}");
                    return ExitCode::from(2);
                }
            }
            match svc.run_until_drained() {
                Ok(summary) => {
                    print!("{}", summary.render());
                    if summary.any_failed() {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(cets::serve::ServeError::SimulatedCrash { records }) => {
                    eprintln!("simulated kill fired with {records} records durable");
                    ExitCode::from(3)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            ExitCode::FAILURE
        }
    }
}
