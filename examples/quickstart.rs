//! Quickstart: tune a small two-routine application with the CETS
//! methodology.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The toy application has two "routines": a compute kernel whose runtime
//! depends on its block size and unroll factor, and a communication stage
//! whose runtime depends on the message chunking — but the chunk size
//! *also* perturbs the compute kernel (a cache effect), which is exactly
//! the interdependence pattern CETS detects and exploits.

use cets::core::{
    BoConfig, Methodology, MethodologyConfig, Objective, Observation, VariationPolicy,
};
use cets::space::{Config, SearchSpace};

/// A toy two-routine application with a hidden cross-influence.
struct MiniApp {
    space: SearchSpace,
}

impl MiniApp {
    fn new() -> Self {
        MiniApp {
            space: SearchSpace::builder()
                .ordinal("unroll", vec![1.0, 2.0, 4.0, 8.0])
                .integer("block", 32, 1024)
                .integer("chunk", 1, 64)
                .build(),
        }
    }
}

impl Objective for MiniApp {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn routine_names(&self) -> Vec<String> {
        vec!["compute".into(), "comm".into()]
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        let unroll = self.space.get_f64(cfg, "unroll").unwrap();
        let block = self.space.get_f64(cfg, "block").unwrap();
        let chunk = self.space.get_f64(cfg, "chunk").unwrap();
        // Compute: best at unroll=4, block=256 — and the comm chunk size
        // thrashes its cache when large (the cross-influence).
        let compute = 1.0
            + 0.2 * (unroll.log2() - 2.0).abs()
            + 0.002 * (block - 256.0).abs() / 32.0
            + 0.01 * chunk;
        // Comm: amortizes per-message overhead, best at large chunks.
        let comm = 0.5 + 8.0 / chunk;
        Observation {
            total: compute + comm,
            routines: vec![compute, comm],
        }
    }

    fn default_config(&self) -> Config {
        self.space
            .config_from_pairs(&[("unroll", 1.0), ("block", 32.0), ("chunk", 1.0)])
            .unwrap()
    }
}

fn main() {
    let app = MiniApp::new();
    let default_cost = app.evaluate(&app.default_config()).total;
    println!("untuned cost: {default_cost:.3}\n");

    // Step 1-3: sensitivity analysis + influence DAG + partition, then
    // Step 4-5: capped search plan, executed with Bayesian optimization.
    let methodology = Methodology::new(MethodologyConfig {
        cutoff: 0.10,
        variation_policy: VariationPolicy::Spread { count: 5 },
        bo: BoConfig {
            seed: 42,
            ..Default::default()
        },
        evals_per_dim: 10,
        ..Default::default()
    });

    let owners = [
        ("unroll", "compute"),
        ("block", "compute"),
        ("chunk", "comm"),
    ];
    let (report, exec) = methodology
        .run(&app, &owners, &app.default_config())
        .expect("tuning pipeline");

    println!("sensitivity scores (parameter -> routine):");
    for p in ["unroll", "block", "chunk"] {
        for r in ["compute", "comm"] {
            println!(
                "  {p:>6} -> {r:<7} {:6.1}%",
                report.scores.score_by_name(p, r).unwrap() * 100.0
            );
        }
    }

    println!("\nsearch plan:\n{}", report.plan.describe());
    println!(
        "tuned cost: {:.3}  ({:.1}% better, {} evaluations, {:?})",
        exec.final_value,
        (1.0 - exec.final_value / default_cost) * 100.0,
        exec.total_evals,
        exec.wall_time
    );
    println!(
        "best configuration: {}",
        app.space().format_config(&exec.final_config)
    );
}
