//! The paper's synthetic-function campaign on one case (Sections III-C &
//! IV): sensitivity analysis (Table II), influence DAG (Figure 2),
//! methodology plan, and a strategy comparison (Table III, reduced
//! budgets — the full reproduction is `cargo run -p cets-bench --bin
//! exp_table3_strategies`).
//!
//! ```text
//! cargo run --release --example synthetic_campaign [1..5]
//! ```

use cets::core::{
    run_strategy, BoConfig, Methodology, MethodologyConfig, Objective, Strategy, VariationPolicy,
};
use cets::synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let case_idx: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let case = SyntheticCase::all()[(case_idx - 1).min(4)];
    println!(
        "=== {} (Group 4 influence: {}) ===\nGroup 3 = {}\n",
        case.name(),
        case.group4_influence(),
        case.group3_formula()
    );

    // --- Phase 1: analysis on the raw routine scale (paper Table II).
    let analysis = SyntheticFunction::new(case).as_raw();
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let baseline = analysis.space().decode(&[0.6; 20]).unwrap();

    let methodology = Methodology::new(MethodologyConfig {
        cutoff: 0.25, // the paper's synthetic cut-off
        variation_policy: VariationPolicy::Multiplicative {
            count: 30,
            factor: 0.1,
        },
        bo: BoConfig {
            seed: 7,
            ..Default::default()
        },
        evals_per_dim: 10,
        ..Default::default()
    });
    let report = methodology
        .analyze(&analysis, &pairs, &baseline)
        .expect("analysis");

    println!("Top-10 sensitive variables for Group 3 (cf. paper Table II):");
    print!("{}", report.scores.top_k("G3", 10).unwrap());

    println!("\nInfluence DAG at 25% cut-off (cf. paper Figure 2):");
    println!("{}", report.graph.to_dot(0.25).unwrap());

    println!("Suggested searches:\n{}", report.plan.describe());

    // --- Phase 2: compare the suggested split against the extremes
    // (reduced budgets; paper Table III uses 10 evals/dim).
    let evals_per_dim = 5;
    let f = SyntheticFunction::new(case);
    let suggested = if case.expect_merge() {
        Strategy::Groups(vec![
            vec!["G1".into()],
            vec!["G2".into()],
            vec!["G3".into(), "G4".into()],
        ])
    } else {
        Strategy::FullyIndependent
    };
    println!(
        "{:<22} {:>14} {:>10} {:>8}",
        "Strategy", "Minimum found", "Evals", "Time(s)"
    );
    for strategy in [
        Strategy::RandomSearch {
            n_evals: 20 * evals_per_dim,
        },
        Strategy::FullyIndependent,
        suggested,
    ] {
        let r = run_strategy(
            &f,
            &pairs,
            &strategy,
            &BoConfig {
                seed: 11,
                ..Default::default()
            },
            evals_per_dim,
        )
        .expect("strategy run");
        println!(
            "{:<22} {:>14.2} {:>10} {:>8.2}",
            r.name, r.final_value, r.n_evals, r.time_s
        );
    }
}
