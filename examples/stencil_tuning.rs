//! Generality demo: apply the CETS methodology to a completely different
//! domain — a distributed 3D Jacobi stencil with a deep-halo/compute
//! trade-off — and watch it discover the Compute↔Halo interdependence and
//! plan a merged search for them.
//!
//! ```text
//! cargo run --release --example stencil_tuning
//! ```

use cets::core::{
    render_markdown, BoConfig, Methodology, MethodologyConfig, Objective, VariationPolicy,
};
use cets::stencil::{StencilApp, StencilProblem};

fn main() {
    let app = StencilApp::new(StencilProblem::benchmark());
    let default_time = app.evaluate(&app.default_config()).total;
    println!(
        "3D Jacobi, {}³ grid, {} ranks, {} steps — untuned: {:.3}s (simulated)\n",
        app.problem().n,
        app.problem().ranks,
        app.problem().steps,
        default_time
    );

    let methodology = Methodology::new(MethodologyConfig {
        cutoff: 0.06, // above the ~2-4% noise floor, below the real couplings
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Decomp".into()],
        bo: BoConfig {
            seed: 5,
            ..Default::default()
        },
        evals_per_dim: 10,
        ..Default::default()
    });

    let owners = StencilApp::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let (report, exec) = methodology
        .run(&app, &pairs, &app.default_config())
        .expect("stencil tuning");

    println!(
        "{}",
        render_markdown(&app, "3D Jacobi stencil", &report, Some(&exec))
    );
    println!(
        "tuned: {:.3}s -> {:.3}s ({:.1}% faster, {} evaluations)",
        default_time,
        exec.final_value,
        (1.0 - exec.final_value / default_time) * 100.0,
        exec.total_evals
    );
}
