//! Tune the simulated GPU-offloaded RT-TDDFT application (paper Sections
//! V-VIII): expert-constrained space, per-routine sensitivity, the Table
//! VII search plan (Iterations → MPI grid → Group 1 ∥ Group 2+3), and the
//! BO progression (Figure 6's data).
//!
//! ```text
//! cargo run --release --example tddft_tuning [1|2]
//! ```

use cets::core::{BoConfig, Methodology, MethodologyConfig, Objective, VariationPolicy};
use cets::tddft::{CaseStudy, TddftSimulator};

fn main() {
    let which: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let case = if which == 2 {
        CaseStudy::case2()
    } else {
        CaseStudy::case1()
    };
    println!("=== Tuning {} ===", case.name);
    println!(
        "{} spin(s), {} k-point(s), {} bands, {:.1}M-element FFT\n",
        case.nspin,
        case.nkpoints,
        case.nbands,
        case.fft_size as f64 / 1e6
    );

    let sim = TddftSimulator::new(case).with_expert_constraints();
    let default_time = sim.evaluate(&sim.default_config()).total;
    println!("untuned application time: {default_time:.3}s (simulated)\n");

    let methodology = Methodology::new(MethodologyConfig {
        cutoff: 0.10, // the paper's TDDFT cut-off
        max_dims: 10,
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Slater".into(), "MPI".into()],
        shared_params: TddftSimulator::shared_params(),
        bo: BoConfig {
            seed: 1,
            ..Default::default()
        },
        evals_per_dim: 10,
        parallel: true,
        ..Default::default()
    });

    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();

    let report = methodology
        .analyze(&sim, &pairs, &sim.default_config())
        .expect("analysis");

    for routine in ["G1", "G2", "G3", "Slater"] {
        println!("Top-5 sensitive parameters for {routine} (cf. paper Tables V/VI):");
        print!("{}", report.scores.top_k(routine, 5).unwrap());
        println!();
    }

    println!(
        "Search plan (cf. paper Table VII):\n{}",
        report.plan.describe()
    );

    let exec = methodology.execute(&sim, &report).expect("execution");
    println!("search progressions (cf. paper Figure 6):");
    for (name, outcome) in &exec.searches {
        let trace = &outcome.incumbent_trace;
        let milestones: Vec<String> = [0, trace.len() / 4, trace.len() / 2, trace.len() - 1]
            .iter()
            .map(|&i| format!("{:.4}@{}", trace[i], i + 1))
            .collect();
        println!(
            "  {:<10} {} evals: {}",
            name,
            outcome.n_evals,
            milestones.join(" -> ")
        );
    }

    println!(
        "\ntuned application time: {:.3}s  ({:.1}% faster, {} evaluations, {:?})",
        exec.final_value,
        (1.0 - exec.final_value / default_time) * 100.0,
        exec.total_evals,
        exec.wall_time
    );
    println!(
        "best configuration:\n  {}",
        sim.space()
            .format_config(&exec.final_config)
            .replace(", ", "\n  ")
    );
}
