//! Crash recovery: interrupt a BO search, then resume it from its JSON
//! checkpoint without repeating any application evaluation — the GPTune
//! feature the paper relied on, reproduced in CETS.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use cets::core::{BoCheckpoint, BoConfig, BoSearch, Objective};
use cets::space::Subspace;
use cets::synthetic::{SyntheticCase, SyntheticFunction};

fn main() {
    let f = SyntheticFunction::new(SyntheticCase::Case2);
    let sub = Subspace::full(f.space(), f.default_config()).expect("subspace");
    let ckpt_path = std::env::temp_dir().join("cets_crash_recovery_demo.json");

    // Phase 1: a search configured for 60 evaluations "crashes" after 20
    // (we emulate the crash by giving it a 20-eval budget; the checkpoint
    // file is written after every evaluation either way).
    println!("phase 1: running with checkpointing, interrupting after 20 evaluations...");
    let interrupted = BoSearch::new(BoConfig {
        max_evals: 20,
        seed: 2024,
        checkpoint_path: Some(ckpt_path.clone()),
        ..Default::default()
    })
    .run(&sub, |cfg| f.evaluate(cfg).total)
    .expect("phase 1");
    println!(
        "  incumbent after interruption: {:.3} ({} evals)",
        interrupted.best_value, interrupted.n_evals
    );

    // Phase 2: a fresh process would load the checkpoint and continue.
    let ckpt = BoCheckpoint::load(&ckpt_path).expect("checkpoint exists");
    println!(
        "phase 2: loaded checkpoint with {} completed evaluations, resuming to 60...",
        ckpt.n_evals()
    );
    let resumed = BoSearch::new(BoConfig {
        max_evals: 60,
        seed: 2024,
        checkpoint_path: Some(ckpt_path.clone()),
        ..Default::default()
    })
    .resume(&sub, |cfg| f.evaluate(cfg).total, &ckpt)
    .expect("phase 2");

    println!(
        "  final best: {:.3} ({} total evals, {} new)",
        resumed.best_value,
        resumed.n_evals,
        resumed.n_evals - ckpt.n_evals()
    );
    assert!(resumed.best_value <= interrupted.best_value);
    std::fs::remove_file(&ckpt_path).ok();
    println!("done: no evaluation was repeated, the incumbent only improved.");
}
