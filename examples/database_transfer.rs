//! The configuration-database workflow: tune Case Study 1, persist every
//! evaluation to a JSON database, then warm-start Case Study 2's merged
//! kernel search from it — the paper's transfer-learning setup as a
//! day-to-day workflow.
//!
//! ```text
//! cargo run --release --example database_transfer
//! ```

use cets::core::{
    BoConfig, BoSearch, Database, Methodology, MethodologyConfig, Objective, VariationPolicy,
};
use cets::space::Subspace;
use cets::tddft::{CaseStudy, TddftSimulator};

fn main() {
    let db_path = std::env::temp_dir().join("cets_cs1_database.json");

    // --- Session 1: tune Case Study 1 and persist its database.
    let cs1 = TddftSimulator::new(CaseStudy::case1()).with_expert_constraints();
    let methodology = Methodology::new(MethodologyConfig {
        cutoff: 0.10,
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Slater".into(), "MPI".into()],
        shared_params: TddftSimulator::shared_params(),
        bo: BoConfig {
            seed: 17,
            ..Default::default()
        },
        evals_per_dim: 6,
        ..Default::default()
    });
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let (_, exec) = methodology
        .run(&cs1, &pairs, &cs1.default_config())
        .expect("CS1 tuning");
    exec.database.save(&db_path).expect("persist database");
    println!(
        "session 1: tuned {} to {:.4}s with {} evaluations; database saved ({} records)",
        cs1.case().name,
        exec.final_value,
        exec.total_evals,
        exec.database.len()
    );

    // --- Session 2 (could be days later / another process): load the
    // database and warm-start Case Study 2's merged kernel search.
    let cs2 = TddftSimulator::new(CaseStudy::case2()).with_expert_constraints();
    let db = Database::load(&db_path, Some(&cs1)).expect("load database");
    println!(
        "session 2: loaded {} records; best prior total {:.4}s",
        db.len(),
        db.best().expect("non-empty").total
    );

    let kernel_params = [
        "u_pair",
        "tb_pair",
        "tb_sm_pair",
        "u_zcopy",
        "tb_zcopy",
        "tb_sm_zcopy",
        "u_dscal",
        "tb_dscal",
        "tb_sm_dscal",
        "u_zvec",
    ];
    let sub2 =
        Subspace::new(cs2.space(), &kernel_params, cs2.default_config()).expect("CS2 subspace");
    let g2g3 = |cfg: &cets::space::Config| {
        let o = cs2.evaluate(cfg);
        o.routines[1] + o.routines[2]
    };
    let seed_pool = db.to_transfer_seed();
    let warm_history = seed_pool.seed_history(&sub2, g2g3, 5);
    println!(
        "re-evaluated {} prior champions on {}",
        warm_history.len(),
        cs2.case().name
    );

    let warm = BoSearch::new(BoConfig {
        max_evals: 60,
        seed: 18,
        ..Default::default()
    })
    .run_with_history(&sub2, g2g3, warm_history)
    .expect("warm search");

    // Cold search at the same budget for reference.
    let cold = BoSearch::new(BoConfig {
        max_evals: 60,
        seed: 18,
        ..Default::default()
    })
    .run(&sub2, g2g3)
    .expect("cold search");

    println!(
        "CS2 merged kernel search (60 evals): warm {:.5}s vs cold {:.5}s",
        warm.best_value, cold.best_value
    );
    std::fs::remove_file(&db_path).ok();
}
