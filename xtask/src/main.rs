//! Workspace automation. The only task so far is `lint-src`, the
//! source-hygiene scanner:
//!
//! ```text
//! cargo run -p xtask -- lint-src                   # check against the baseline
//! cargo run -p xtask -- lint-src --update-baseline # ratchet the baseline down
//! ```
//!
//! `lint-src` counts `unwrap()` / `expect(` / `panic!(` / `todo!(` /
//! `unimplemented!(` / `unwrap_or_else(|| panic!` call sites in
//! *library* code (`crates/*/src` and the root `src/`), compares the
//! per-file counts against `xtask/lint-src-baseline.txt`, and fails if any
//! file got **worse**. Files absent from the baseline are held to zero, so
//! new code cannot introduce panic sites at all; existing debt can only
//! shrink. `--update-baseline` rewrites the file with the current counts
//! (use it after burning sites down — review the diff, it should only ever
//! decrease).
//!
//! Exemptions:
//! - `vendor/` (API stubs), `tests/`, `benches/`, `examples/` directories;
//! - everything from the first `#[cfg(test)]` line of a file onward (this
//!   workspace keeps unit-test modules at the file tail);
//! - line comments and `///` docs.
//!
//! The counting is intentionally textual: it is a ratchet against *new*
//! panic sites, not a parser. Matches inside string literals are possible
//! but rare, and a false positive simply lands in the baseline once.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unwrap_or_else(|| panic!",
];
const BASELINE: &str = "xtask/lint-src-baseline.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-src") => lint_src(args.iter().any(|a| a == "--update-baseline")),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint-src)");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint-src [--update-baseline]");
            ExitCode::from(2)
        }
    }
}

/// Workspace root = parent of the directory containing this crate's
/// Cargo.toml.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if matches!(name.as_str(), "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Count forbidden call sites in one file, skipping the `#[cfg(test)]`
/// tail and line comments.
fn count_sites(src: &str) -> usize {
    let mut n = 0;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break; // unit tests live at the file tail in this workspace
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        for p in PATTERNS {
            n += code.matches(p).count();
        }
    }
    n
}

fn scan(root: &Path) -> BTreeMap<String, usize> {
    let mut files = Vec::new();
    // Library crates: everything under crates/*/src.
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            collect_rs_files(&krate.join("src"), &mut files);
        }
    }
    // The umbrella crate's own sources (lib + binaries).
    collect_rs_files(&root.join("src"), &mut files);

    let mut counts = BTreeMap::new();
    for f in files {
        let Ok(src) = std::fs::read_to_string(&f) else {
            continue;
        };
        let n = count_sites(&src);
        if n > 0 {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            counts.insert(rel, n);
        }
    }
    counts
}

fn read_baseline(path: &Path) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let Ok(src) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, count)) = line.rsplit_once(' ') {
            if let Ok(n) = count.parse::<usize>() {
                map.insert(file.to_string(), n);
            }
        }
    }
    map
}

fn lint_src(update: bool) -> ExitCode {
    let root = workspace_root();
    let counts = scan(&root);
    let baseline_path = root.join(BASELINE);

    if update {
        let mut out = String::from(
            "# Per-file unwrap()/expect(/panic!( counts in library sources.\n\
             # Ratchet: counts may only decrease. Regenerate with\n\
             #   cargo run -p xtask -- lint-src --update-baseline\n",
        );
        for (file, n) in &counts {
            out.push_str(&format!("{file} {n}\n"));
        }
        if let Err(e) = std::fs::write(&baseline_path, out) {
            eprintln!("lint-src: cannot write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "lint-src: baseline updated ({} files, {} sites)",
            counts.len(),
            counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = read_baseline(&baseline_path);
    let mut failures = 0usize;
    for (file, &n) in &counts {
        let allowed = baseline.get(file).copied().unwrap_or(0);
        if n > allowed {
            eprintln!(
                "lint-src: {file} has {n} unwrap()/expect(/panic!( site(s), baseline allows \
                 {allowed} — return a typed error instead"
            );
            failures += 1;
        }
    }
    // Improvement hint: stale baseline entries that could ratchet down.
    for (file, &allowed) in &baseline {
        let n = counts.get(file).copied().unwrap_or(0);
        if n < allowed {
            println!("lint-src: note: {file} improved ({allowed} -> {n}); baseline can ratchet");
        }
    }
    let total: usize = counts.values().sum();
    if failures > 0 {
        eprintln!("lint-src: FAILED ({failures} file(s) worse than baseline)");
        ExitCode::FAILURE
    } else {
        println!(
            "lint-src: clean ({} files with {} grandfathered sites, none worse than baseline)",
            counts.len(),
            total
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_basic_sites() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }\n";
        assert_eq!(count_sites(src), 3);
    }

    #[test]
    fn comments_and_test_tail_exempt() {
        let src = "\
fn f() {}
// x.unwrap() in a comment
let y = 1; // trailing .expect( comment
#[cfg(test)]
mod tests {
    fn g() { x.unwrap(); panic!(\"fine in tests\"); }
}
";
        assert_eq!(count_sites(src), 0);
    }

    #[test]
    fn baseline_roundtrip_format() {
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("baseline.txt");
        std::fs::write(&p, "# comment\ncrates/a/src/lib.rs 3\nsrc/bin/cets.rs 1\n").unwrap();
        let m = read_baseline(&p);
        assert_eq!(m.get("crates/a/src/lib.rs"), Some(&3));
        assert_eq!(m.get("src/bin/cets.rs"), Some(&1));
    }
}
