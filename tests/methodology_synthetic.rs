//! Cross-crate integration: the full CETS methodology against the paper's
//! synthetic functions (small budgets — the full-budget reproduction lives
//! in `cets-bench`).

use cets_core::{
    run_strategy, BoConfig, Methodology, MethodologyConfig, Objective, Strategy, VariationPolicy,
};
use cets_synthetic::{SyntheticCase, SyntheticFunction};

fn quick_bo(seed: u64) -> BoConfig {
    BoConfig {
        n_init: 5,
        n_candidates: 48,
        n_local: 8,
        retrain_every: 10,
        seed,
        ..Default::default()
    }
}

fn methodology(cutoff: f64, seed: u64) -> Methodology {
    Methodology::new(MethodologyConfig {
        cutoff,
        max_dims: 10,
        variation_policy: VariationPolicy::Multiplicative {
            count: 15,
            factor: 0.1,
        },
        bo: quick_bo(seed),
        evals_per_dim: 4,
        ..Default::default()
    })
}

/// The paper's synthetic decision at the 25% cut-off (on the raw routine
/// scale): Cases 1-2 stay fully independent, Cases 3-5 merge G3+G4.
#[test]
fn partition_matches_paper_per_case() {
    for case in SyntheticCase::all() {
        let f = SyntheticFunction::new(case).with_noise(0.0).as_raw();
        let owners = SyntheticFunction::owners();
        let pairs = SyntheticFunction::owner_pairs(&owners);
        let baseline = f.space().decode(&[0.6; 20]).unwrap();
        let report = methodology(0.25, 1).analyze(&f, &pairs, &baseline).unwrap();
        let groups = report.partition.groups();
        if case.expect_merge() {
            assert_eq!(
                groups.len(),
                3,
                "{case:?}: expected G1, G2, G3+G4, got {groups:?}"
            );
            let merged = groups.iter().find(|g| g.routines.len() == 2).unwrap();
            assert_eq!(merged.routines, vec![2, 3], "{case:?}");
        } else {
            assert_eq!(groups.len(), 4, "{case:?}: expected 4 singletons");
        }
    }
}

/// End-to-end on Case 4 (high interdependence): the methodology's merged
/// plan finds a configuration at least as good as the same budget spent on
/// fully-independent searches, and both beat the default configuration.
#[test]
fn methodology_beats_defaults_and_handles_case4() {
    let case = SyntheticCase::Case4;
    let analysis_f = SyntheticFunction::new(case).with_noise(0.0).as_raw();
    let exec_f = SyntheticFunction::new(case).with_noise(0.0);
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let baseline = analysis_f.space().decode(&[0.6; 20]).unwrap();

    let m = methodology(0.25, 7);
    let report = m.analyze(&analysis_f, &pairs, &baseline).unwrap();
    // Execute against the log-scale objective (the paper's F).
    let exec = m.execute(&exec_f, &report).unwrap();

    let default_value = exec_f.evaluate(&exec_f.default_config()).total;
    assert!(
        exec.final_value < default_value,
        "methodology {} !< default {default_value}",
        exec.final_value
    );
    // Budget bookkeeping: 5+5 dims independent + 10 merged, 4 evals/dim.
    assert_eq!(exec.total_evals, 4 * 20);
}

/// Strategy comparison smoke test (Table III in miniature): all four
/// strategies produce finite minima; BO-based strategies use their exact
/// budgets.
#[test]
fn table3_strategies_smoke() {
    let f = SyntheticFunction::new(SyntheticCase::Case3).with_seed(11);
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let groups_strategy = Strategy::Groups(vec![
        vec!["G1".into()],
        vec!["G2".into()],
        vec!["G3".into(), "G4".into()],
    ]);
    let strategies: Vec<(Strategy, &str)> = vec![
        (Strategy::RandomSearch { n_evals: 40 }, "random"),
        (Strategy::FullyIndependent, "independent"),
        (groups_strategy, "methodology split"),
    ];
    for (s, label) in strategies {
        let r = run_strategy(&f, &pairs, &s, &quick_bo(3), 2).unwrap();
        assert!(r.final_value.is_finite(), "{label}: non-finite minimum");
        assert!(r.n_evals > 0, "{label}: no evaluations");
        assert!(f.space().is_valid(&r.final_config), "{label}: invalid best");
    }
}

/// The 20-dim joint search is far more expensive per evaluation than the
/// split searches at equal budget-per-dim (the paper's O(N³) argument): we
/// check evaluation accounting rather than wall time to stay robust on CI.
#[test]
fn joint_uses_more_evals_than_split_groups() {
    let f = SyntheticFunction::new(SyntheticCase::Case3);
    let owners = SyntheticFunction::owners();
    let pairs = SyntheticFunction::owner_pairs(&owners);
    let joint = run_strategy(&f, &pairs, &Strategy::FullyJoint, &quick_bo(5), 2).unwrap();
    let split = run_strategy(
        &f,
        &pairs,
        &Strategy::Groups(vec![
            vec!["G1".into()],
            vec!["G2".into()],
            vec!["G3".into(), "G4".into()],
        ]),
        &quick_bo(5),
        2,
    )
    .unwrap();
    // Joint: 20 dims × 2 + 1; split: (5+5+10) × 2 + 1 — equal here, but the
    // joint one is a single 40-eval GP while the split's largest GP sees
    // only 20 points. Verify the budget split.
    assert_eq!(joint.n_evals, 41);
    assert_eq!(split.n_evals, 41);
}
