//! Cross-crate integration: crash recovery (checkpoint + resume) and
//! transfer learning between the two TDDFT case studies.

use cets_core::{BoCheckpoint, BoConfig, BoSearch, Objective, TransferSeed};
use cets_space::Subspace;
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use cets_tddft::{CaseStudy, TddftSimulator};

fn quick_bo(seed: u64, max_evals: usize) -> BoConfig {
    BoConfig {
        n_init: 5,
        max_evals,
        n_candidates: 48,
        n_local: 8,
        retrain_every: 10,
        seed,
        ..Default::default()
    }
}

/// An interrupted search resumed from its checkpoint reaches a result at
/// least as good as its incumbent at interruption, with the correct total
/// evaluation count.
#[test]
fn checkpoint_resume_continues_search() {
    let f = SyntheticFunction::new(SyntheticCase::Case2).with_noise(0.0);
    let sub = Subspace::full(f.space(), f.default_config()).unwrap();
    let path = std::env::temp_dir().join(format!("cets_it_resume_{}.json", std::process::id()));

    // Phase 1: run 12 evaluations with checkpointing ("crash" after).
    let mut cfg = quick_bo(21, 12);
    cfg.checkpoint_path = Some(path.clone());
    let partial = BoSearch::new(cfg)
        .run(&sub, |c| f.evaluate(c).total)
        .unwrap();
    let ckpt = BoCheckpoint::load(&path).unwrap();
    assert_eq!(ckpt.n_evals(), 12);

    // Phase 2: resume to 30 total.
    let resumed = BoSearch::new(quick_bo(21, 30))
        .resume(&sub, |c| f.evaluate(c).total, &ckpt)
        .unwrap();
    assert_eq!(resumed.n_evals, 30);
    assert!(resumed.best_value <= partial.best_value);
    // The first 12 history entries are identical to the pre-crash run.
    for (a, b) in resumed.history[..12].iter().zip(&partial.history) {
        assert_eq!(a, b);
    }
    std::fs::remove_file(&path).ok();
}

/// Transfer learning CS1 → CS2 on the TDDFT simulator: seeding the Case
/// Study 2 search with Case Study 1's best GPU-kernel configurations gives
/// a warm start whose best initial value is no worse than a cold random
/// design of the same size.
#[test]
fn transfer_cs1_to_cs2() {
    let kernel_params = [
        "u_pair",
        "tb_pair",
        "tb_sm_pair",
        "u_dscal",
        "tb_dscal",
        "tb_sm_dscal",
    ];

    // Tune a small kernel subspace on CS1.
    let cs1 = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
    let sub1 = Subspace::new(cs1.space(), &kernel_params, cs1.default_config()).unwrap();
    let prior = BoSearch::new(quick_bo(31, 25))
        .run(&sub1, |c| {
            let o = cs1.evaluate(c);
            o.routines[1] + o.routines[2] // G2 + G3
        })
        .unwrap();
    let seed = TransferSeed::from_outcome(&sub1, &prior).unwrap();

    // CS2 task: same parameter names, different FFT size / k-points.
    let cs2 = TddftSimulator::new(CaseStudy::case2()).with_noise(0.0);
    let sub2 = Subspace::new(cs2.space(), &kernel_params, cs2.default_config()).unwrap();
    let f2 = |c: &cets_space::Config| {
        let o = cs2.evaluate(c);
        o.routines[1] + o.routines[2]
    };

    let warm_history = seed.seed_history(&sub2, f2, 5);
    assert_eq!(warm_history.len(), 5, "all seeds should project");
    let warm_best_start = warm_history
        .iter()
        .map(|(_, y)| *y)
        .fold(f64::INFINITY, f64::min);

    // Cold 5-point start for comparison.
    let cold = BoSearch::new(quick_bo(32, 5)).run(&sub2, f2).unwrap();
    // Stochastic comparison: the warm start should be in the same
    // ballpark as (typically better than) a cold start of equal size —
    // allow modest slack since neither dominates on every seed.
    assert!(
        warm_best_start <= cold.best_value * 1.2,
        "warm {warm_best_start} much worse than cold {}",
        cold.best_value
    );

    // Full warm search improves monotonically from the seeds.
    let warm = BoSearch::new(quick_bo(33, 20))
        .run_with_history(&sub2, f2, warm_history)
        .unwrap();
    assert_eq!(warm.n_evals, 20);
    assert!(warm.best_value <= warm_best_start);
}

/// The paper's infeasibility observation: a joint high-dimensional search
/// under tight constraints fails candidate generation, while the
/// methodology's lower-dimensional searches proceed. We emulate the
/// constraint wall with a tiny rejection budget.
#[test]
fn highdim_constrained_sampling_fails_gracefully() {
    use cets_space::{Sampler, SpaceError};
    use rand::SeedableRng;

    let sim = TddftSimulator::new(CaseStudy::case2());
    // Tight budget: the 20-dim space with MPI + 5 occupancy constraints has
    // low valid density when sampled blindly with few attempts.
    let sampler = Sampler::new(sim.space()).with_max_attempts(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut failures = 0;
    for _ in 0..50 {
        if matches!(
            sampler.uniform(&mut rng),
            Err(SpaceError::SamplingExhausted { .. })
        ) {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "expected some sampling failures under a tight attempt budget"
    );

    // A 3-dim subspace of the same space has a far higher valid density
    // (one occupancy rule instead of five plus the MPI rule): random
    // tb×tb_sm pairs are valid ~22% of the time, so the subspace search
    // proceeds where the joint one starves.
    let sub = Subspace::new(
        sim.space(),
        &["u_vec", "tb_vec", "tb_sm_vec"],
        sim.default_config(),
    )
    .unwrap();
    let mut ok = 0;
    for i in 0..100 {
        let mut r = rand::rngs::StdRng::seed_from_u64(i);
        let u: Vec<f64> = (0..3)
            .map(|_| rand::RngExt::random::<f64>(&mut r))
            .collect();
        if sub.is_valid_active(&u) {
            ok += 1;
        }
    }
    assert!(ok > 10, "low-dim subspace should be often valid: {ok}/100");
}
