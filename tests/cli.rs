//! End-to-end tests of the `cets` command-line front end.

use std::process::Command;

fn cets() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cets"))
}

#[test]
fn help_lists_commands() {
    let out = cets().arg("help").output().expect("run cets");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("synthetic"));
    assert!(text.contains("tddft"));
    assert!(text.contains("--cutoff"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cets().arg("frobnicate").output().expect("run cets");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"));
    assert!(text.contains("USAGE"));
}

#[test]
fn synthetic_pipeline_produces_report() {
    let out = cets()
        .args([
            "synthetic",
            "--case",
            "1",
            "--evals-per-dim",
            "2",
            "--seed",
            "3",
        ])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let md = String::from_utf8_lossy(&out.stdout);
    assert!(md.contains("# Tuning report: Case 1"));
    assert!(md.contains("## Search plan"));
    assert!(md.contains("## Results"));
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("tuned:"));
}

#[test]
fn tddft_pipeline_writes_report_and_db() {
    let dir = std::env::temp_dir();
    let report = dir.join(format!("cets_cli_report_{}.md", std::process::id()));
    let db = dir.join(format!("cets_cli_db_{}.json", std::process::id()));
    let out = cets()
        .args([
            "tddft",
            "--case",
            "1",
            "--evals-per-dim",
            "2",
            "--report",
            report.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
        ])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report_text = std::fs::read_to_string(&report).expect("report written");
    assert!(report_text.contains("## Search plan"));
    assert!(report_text.contains("G2+G3"));
    let db_text = std::fs::read_to_string(&db).expect("db written");
    assert!(db_text.contains("\"records\""));
    std::fs::remove_file(&report).ok();
    std::fs::remove_file(&db).ok();
}

#[test]
fn bad_case_number_rejected() {
    let out = cets()
        .args(["synthetic", "--case", "9"])
        .output()
        .expect("run cets");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--case must be 1..5"));
}

const EXEMPLAR: &str = "examples/plans/tddft_plan.json";
const UNSAT: &str = "crates/lint/tests/fixtures/absint/unsat.json";

#[test]
fn lint_exemplar_is_clean_under_deny_warnings() {
    let out = cets()
        .args(["lint", EXEMPLAR, "--deny-warnings"])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 error(s), 0 warning(s)"));
}

#[test]
fn analyze_exemplar_reports_contractible_bounds() {
    let out = cets()
        .args(["analyze", EXEMPLAR])
        .output()
        .expect("run cets");
    assert!(out.status.success(), "A004 is a warning, not a denial");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warning[A004]"), "{text}");
    assert!(text.contains("[32, 512]"), "{text}");
}

#[test]
fn analyze_unsat_fixture_is_denied() {
    let out = cets().args(["analyze", UNSAT]).output().expect("run cets");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[A001]"));
}

#[test]
fn analyze_emits_sarif() {
    let out = cets()
        .args(["analyze", EXEMPLAR, "--format", "sarif"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"2.1.0\""), "{text}");
    assert!(text.contains("cets-lint"), "{text}");
    assert!(text.contains("A004"), "{text}");
}

#[test]
fn lint_emits_sarif_too() {
    let out = cets()
        .args(["lint", EXEMPLAR, "--format", "sarif"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"2.1.0\""));
}

#[test]
fn analyze_contract_emits_tightened_plan_on_stdout() {
    let out = cets()
        .args(["analyze", EXEMPLAR, "--contract"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    let plan = String::from_utf8_lossy(&out.stdout);
    // The rewritten plan carries the contracted g1_tb / zc_tb bounds...
    assert!(plan.contains("\"hi\": 512"), "{plan}");
    // ...and the report moved to stderr.
    assert!(String::from_utf8_lossy(&out.stderr).contains("warning[A004]"));
}

#[test]
fn analyze_contracted_exemplar_passes_deny_warnings() {
    let out = cets()
        .args(["analyze", EXEMPLAR, "--contract"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    let dir = std::env::temp_dir();
    let path = dir.join(format!("cets_cli_contracted_{}.json", std::process::id()));
    std::fs::write(&path, &out.stdout).expect("write contracted plan");
    let again = cets()
        .args(["analyze", path.to_str().unwrap(), "--deny-warnings"])
        .output()
        .expect("run cets");
    assert!(
        again.status.success(),
        "contracted exemplar must be deny-warnings clean: {}",
        String::from_utf8_lossy(&again.stdout)
    );
    std::fs::remove_file(&path).ok();
}

const HPL: &str = "examples/plans/hpl_plan.json";
const CONG_UNSAT: &str = "crates/lint/tests/fixtures/absint/congruence_unsat.json";

#[test]
fn analyze_hpl_exemplar_reports_stride_and_dead_options() {
    let out = cets().args(["analyze", HPL]).output().expect("run cets");
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("info[A009]"), "{text}");
    assert!(text.contains("stride 64"), "{text}");
    assert!(text.contains("warning[A010]"), "{text}");
    assert!(text.contains("`Lng`"), "{text}");
}

#[test]
fn analyze_congruence_unsat_fixture_is_denied_under_product_only() {
    let out = cets()
        .args(["analyze", CONG_UNSAT])
        .output()
        .expect("run cets");
    assert_eq!(out.status.code(), Some(1), "product domain denies the plan");
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[A001]"));

    // The octagon domain alone cannot see the modular conflict.
    let oct = cets()
        .args(["analyze", CONG_UNSAT, "--domain", "octagon"])
        .output()
        .expect("run cets");
    let text = String::from_utf8_lossy(&oct.stdout);
    assert!(!text.contains("error[A001]"), "{text}");
}

#[test]
fn analyze_contract_hpl_is_idempotent() {
    let out = cets()
        .args(["analyze", HPL, "--contract"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "cets_cli_hpl_contracted_{}.json",
        std::process::id()
    ));
    std::fs::write(&path, &out.stdout).expect("write contracted plan");
    let again = cets()
        .args(["analyze", path.to_str().unwrap(), "--contract"])
        .output()
        .expect("run cets");
    assert!(again.status.success());
    assert_eq!(
        out.stdout, again.stdout,
        "--contract must be a fixpoint on its own output"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_known_code_prints_entry() {
    let out = cets()
        .args(["analyze", "--explain", "A009"])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("A009"), "{text}");
    assert!(text.contains("congruence"), "{text}");
    assert!(text.contains("remediation"), "{text}");
}

#[test]
fn explain_is_case_insensitive() {
    let out = cets()
        .args(["analyze", "--explain", "a010"])
        .output()
        .expect("run cets");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("A010"));
}

#[test]
fn explain_unknown_code_exits_2() {
    let out = cets()
        .args(["analyze", "--explain", "Z999"])
        .output()
        .expect("run cets");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("Z999"));
}

#[test]
fn analyze_missing_file_exits_2() {
    let out = cets()
        .args(["analyze", "/nonexistent/plan.json"])
        .output()
        .expect("run cets");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyze_rejects_unknown_format() {
    let out = cets()
        .args(["analyze", EXEMPLAR, "--format", "xml"])
        .output()
        .expect("run cets");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --format"));
}

// ---------------------------------------------------------------------------
// cets serve
// ---------------------------------------------------------------------------

fn serve_dirs(name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("cets_cli_serve_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::write(
        spool.join("alpha.json"),
        r#"{"id":"alpha","objective":"sphere","seed":7,"max_evals":5,"n_init":3}"#,
    )
    .unwrap();
    std::fs::write(
        spool.join("bad.json"),
        r#"{"id":"nope","objective":"warp-drive","seed":1,"max_evals":4}"#,
    )
    .unwrap();
    (root.join("data"), spool)
}

#[test]
fn serve_without_data_dir_exits_2() {
    let out = cets().arg("serve").output().expect("run cets");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
}

#[test]
fn serve_drains_spool_and_reports_campaigns() {
    let (data, spool) = serve_dirs("drain");
    let out = cets()
        .args(["serve", "--data"])
        .arg(&data)
        .arg("--spool")
        .arg(&spool)
        .args(["--fsync", "never"])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(
        summary.contains("campaign alpha phase=completed"),
        "{summary}"
    );
    assert!(summary.contains("config=fnv1a:"), "{summary}");
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("accepted 1, rejected 1"), "{log}");
    // The spool is never mutated.
    assert!(spool.join("alpha.json").exists());
    assert!(spool.join("bad.json").exists());
    std::fs::remove_dir_all(data.parent().unwrap()).ok();
}

#[test]
fn serve_kill_recover_is_bit_identical() {
    let (data, spool) = serve_dirs("killrec");
    let run = |kill: Option<&str>| {
        let mut c = cets();
        c.args(["serve", "--data"])
            .arg(&data)
            .arg("--spool")
            .arg(&spool)
            .args(["--fsync", "never"]);
        if let Some(k) = kill {
            c.args(["--sim-kill-at", k]);
        }
        c.output().expect("run cets")
    };
    // Golden run in a separate directory.
    let (golden_data, golden_spool) = serve_dirs("killrec_golden");
    let golden = {
        let out = cets()
            .args(["serve", "--data"])
            .arg(&golden_data)
            .arg("--spool")
            .arg(&golden_spool)
            .args(["--fsync", "never"])
            .output()
            .expect("run cets");
        assert!(out.status.success());
        out.stdout
    };
    // Kill mid-run with a torn write: exit code 3.
    let killed = run(Some("4:5"));
    assert_eq!(
        killed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    // Recover: repaired tail noted, summary bit-identical to golden.
    let recovered = run(None);
    assert!(
        recovered.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    let log = String::from_utf8_lossy(&recovered.stderr);
    assert!(log.contains("repaired torn tail"), "{log}");
    assert_eq!(
        String::from_utf8_lossy(&recovered.stdout),
        String::from_utf8_lossy(&golden),
        "kill+recover diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(data.parent().unwrap()).ok();
    std::fs::remove_dir_all(golden_data.parent().unwrap()).ok();
}
