//! End-to-end tests of the `cets` command-line front end.

use std::process::Command;

fn cets() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cets"))
}

#[test]
fn help_lists_commands() {
    let out = cets().arg("help").output().expect("run cets");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("synthetic"));
    assert!(text.contains("tddft"));
    assert!(text.contains("--cutoff"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cets().arg("frobnicate").output().expect("run cets");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"));
    assert!(text.contains("USAGE"));
}

#[test]
fn synthetic_pipeline_produces_report() {
    let out = cets()
        .args([
            "synthetic",
            "--case",
            "1",
            "--evals-per-dim",
            "2",
            "--seed",
            "3",
        ])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let md = String::from_utf8_lossy(&out.stdout);
    assert!(md.contains("# Tuning report: Case 1"));
    assert!(md.contains("## Search plan"));
    assert!(md.contains("## Results"));
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("tuned:"));
}

#[test]
fn tddft_pipeline_writes_report_and_db() {
    let dir = std::env::temp_dir();
    let report = dir.join(format!("cets_cli_report_{}.md", std::process::id()));
    let db = dir.join(format!("cets_cli_db_{}.json", std::process::id()));
    let out = cets()
        .args([
            "tddft",
            "--case",
            "1",
            "--evals-per-dim",
            "2",
            "--report",
            report.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
        ])
        .output()
        .expect("run cets");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report_text = std::fs::read_to_string(&report).expect("report written");
    assert!(report_text.contains("## Search plan"));
    assert!(report_text.contains("G2+G3"));
    let db_text = std::fs::read_to_string(&db).expect("db written");
    assert!(db_text.contains("\"records\""));
    std::fs::remove_file(&report).ok();
    std::fs::remove_file(&db).ok();
}

#[test]
fn bad_case_number_rejected() {
    let out = cets()
        .args(["synthetic", "--case", "9"])
        .output()
        .expect("run cets");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--case must be 1..5"));
}
