//! Cross-crate integration: the methodology against the RT-TDDFT simulator
//! — precedence routines, shared-kernel reassignment, the 10-dim cap, and
//! a small end-to-end execution (full budgets live in `cets-bench`).

use cets_core::{
    BoConfig, Methodology, MethodologyConfig, Objective, SearchTarget, VariationPolicy,
};
use cets_tddft::{CaseStudy, TddftSimulator};

fn quick_bo(seed: u64) -> BoConfig {
    BoConfig {
        n_init: 5,
        n_candidates: 48,
        n_local: 8,
        retrain_every: 10,
        seed,
        ..Default::default()
    }
}

fn tddft_methodology(seed: u64, evals_per_dim: usize) -> Methodology {
    Methodology::new(MethodologyConfig {
        cutoff: 0.10, // the paper's TDDFT cut-off
        max_dims: 10,
        variation_policy: VariationPolicy::Spread { count: 5 },
        precedence: vec!["Slater".into(), "MPI".into()],
        shared_params: TddftSimulator::shared_params(),
        bo: quick_bo(seed),
        evals_per_dim,
        parallel: true,
        ..Default::default()
    })
}

/// The analysis reproduces the structure of the paper's Table VII /
/// Figure 5: Iterations (nbatches, nstreams) and the MPI grid are
/// precedence searches; Group 1 keeps only the cuVec2Zvec parameters;
/// Groups 2+3 merge with the shared cuZcopy parameters reassigned to them.
#[test]
fn tddft_plan_matches_table7_structure() {
    let sim = TddftSimulator::new(CaseStudy::case1())
        .with_noise(0.0)
        .with_expert_constraints();
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let m = tddft_methodology(1, 3);
    let report = m.analyze(&sim, &pairs, &sim.default_config()).unwrap();

    // Stage 0: Slater (Iterations) search over nbatches + nstreams.
    let s0 = &report.plan.stages[0][0];
    assert_eq!(s0.name, "Slater");
    assert_eq!(s0.target, SearchTarget::Total);
    let mut p0 = s0.params.clone();
    p0.sort();
    assert_eq!(p0, vec!["nbatches", "nstreams"]);

    // Stage 1: MPI grid search.
    let s1 = &report.plan.stages[1][0];
    assert_eq!(s1.name, "MPI");
    let mut p1 = s1.params.clone();
    p1.sort();
    assert_eq!(p1, vec!["nkpb", "nspb", "nstb"]);

    // Final stage: G1 alone and G2+G3 merged.
    let last = report.plan.stages.last().unwrap();
    assert_eq!(last.len(), 2, "{:?}", report.plan.describe());
    let g1 = last.iter().find(|s| s.name == "G1").expect("G1 search");
    let merged = last
        .iter()
        .find(|s| s.name.contains('+'))
        .expect("merged G2/G3 search");
    assert!(
        merged.name == "G2+G3" || merged.name == "G3+G2",
        "{}",
        merged.name
    );

    // Shared cuZcopy parameters moved out of G1 into the merged search.
    for p in ["u_zcopy", "tb_zcopy", "tb_sm_zcopy"] {
        assert!(
            !g1.params.contains(&p.to_string()),
            "G1 still tunes shared {p}"
        );
        assert!(
            merged.params.contains(&p.to_string()) || merged.dropped.contains(&p.to_string()),
            "{p} missing from merged search"
        );
    }
    // G1 keeps exactly the cuVec2Zvec parameters (paper: "Group 1's
    // optimization only includes cuVec2Zvec parameters").
    let mut g1_params = g1.params.clone();
    g1_params.sort();
    assert_eq!(g1_params, vec!["tb_sm_vec", "tb_vec", "u_vec"]);

    // The merged search respects the 10-dim cap: pair(3) + zcopy(3) +
    // dscal(3) + zvec(3) = 12 -> 10 kept, 2 dropped.
    assert!(merged.dim() <= 10);
    assert_eq!(merged.dim() + merged.dropped.len(), 12);
}

/// Small end-to-end execution on Case Study 1: the tuned configuration
/// beats the default configuration.
#[test]
fn tddft_execution_improves_over_default() {
    let sim = TddftSimulator::new(CaseStudy::case1())
        .with_noise(0.0)
        .with_expert_constraints();
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let m = tddft_methodology(5, 3);
    let (report, exec) = m.run(&sim, &pairs, &sim.default_config()).unwrap();

    let default_total = sim.evaluate(&sim.default_config()).total;
    assert!(
        exec.final_value < default_total,
        "tuned {} !< default {default_total}",
        exec.final_value
    );
    assert!(sim.space().is_valid(&exec.final_config));
    // All stages executed.
    assert_eq!(exec.searches.len(), report.plan.searches().count());
}

/// Case Study 2 produces the same plan structure (the paper: "results for
/// Case Study 1 and Case Study 2 yielded similar conclusions; therefore,
/// the same search strategy is executed for both").
#[test]
fn tddft_case2_same_plan_shape() {
    let sim = TddftSimulator::new(CaseStudy::case2())
        .with_noise(0.0)
        .with_expert_constraints();
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let report = tddft_methodology(2, 3)
        .analyze(&sim, &pairs, &sim.default_config())
        .unwrap();
    assert_eq!(report.plan.stages.len(), 3);
    let last = report.plan.stages.last().unwrap();
    assert_eq!(last.len(), 2);
    assert!(last.iter().any(|s| s.name.contains('+')));
}

/// The paper's headline failure, at the strategy level: a fully-joint BO
/// search over the constrained 20-dim TDDFT space cannot even generate
/// candidates (GPTune "proved unfeasible to suggest candidates"); the
/// engine surfaces this as a sampling-exhausted error instead of hanging.
#[test]
fn joint_tddft_strategy_fails_candidate_generation() {
    use cets_core::{run_strategy, CoreError, Strategy};
    let sim = TddftSimulator::new(CaseStudy::case2());
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let err = run_strategy(&sim, &pairs, &Strategy::FullyJoint, &quick_bo(1), 2).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::Space(cets_space::SpaceError::SamplingExhausted { .. })
        ),
        "expected SamplingExhausted, got {err}"
    );
}

/// The DOT exports for Figures 2/5 render without panicking and contain
/// the cross-edges.
#[test]
fn dag_dot_exports() {
    let sim = TddftSimulator::new(CaseStudy::case1()).with_noise(0.0);
    let owners = TddftSimulator::owners();
    let pairs: Vec<(&str, &str)> = owners
        .iter()
        .map(|(p, r)| (p.as_str(), r.as_str()))
        .collect();
    let report = tddft_methodology(3, 3)
        .analyze(&sim, &pairs, &sim.default_config())
        .unwrap();
    let dot = report.graph.to_dot(0.10).unwrap();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("color=red"), "no cross-edges rendered");
    let pdot = report.partition.to_dot(&report.graph);
    assert!(pdot.contains("cluster_prec"));
}
