//! Offline vendored mini `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * range strategies over `f64` and the integer types,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * tuple strategies, [`strategy::Just`], `prop_map`, `prop_oneof!`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest: inputs are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs,
//! no regression files) and failing cases are *not* shrunk — the failing
//! case number is reported instead, and re-running deterministically
//! reproduces it.

pub mod test_runner {
    //! Execution configuration and the deterministic generator.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (e.g. the property name) so every
        /// property sees an independent, reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index of empty range");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Box a strategy (helper for `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each enclosed property over generated inputs.
///
/// Supports the `#![proptest_config(...)]` header and `name in strategy`
/// argument bindings. Inputs are drawn from a deterministic per-property
/// stream; the case index is included in panic messages via
/// `[case N/M]` markers.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // Bodies may `return Ok(())` early, matching upstream
                    // proptest whose closures return Result<(), TestCaseError>.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(__msg) = __outcome {
                        panic!("property failed: {__msg}");
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0.0..1.0f64, n in 1usize..10, s in -5i64..=5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((-5..=5).contains(&s));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0..1.0f64, 3), w in crate::collection::vec(0u64..10, 1..5)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..5).contains(&w.len()));
        }

        #[test]
        fn oneof_and_map(k in prop_oneof![Just(1usize), Just(2usize)], m in (0u32..4).prop_map(|x| x * 2)) {
            prop_assert!(k == 1 || k == 2);
            prop_assert!(m % 2 == 0 && m < 8);
        }

        #[test]
        fn tuples(pair in (0usize..8, 0usize..8)) {
            prop_assert!(pair.0 < 8 && pair.1 < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0..1.0f64, 4);
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
