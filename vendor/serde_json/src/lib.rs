//! Offline vendored `serde_json` stand-in.
//!
//! Renders and parses the vendored serde facade's [`Value`] tree as JSON
//! text. Floats are printed with Rust's shortest-roundtrip formatting
//! (`{:?}`), which preserves every bit — the `float_roundtrip` feature of
//! real serde_json is therefore always on. Non-finite floats serialize as
//! `null` (JSON has no NaN/Inf), mirroring serde_json's default.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Debug formatting is shortest-roundtrip and always keeps a
                // decimal point or exponent, so floats reparse as floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for src in ["null", "true", "false", "42", "-7", "3.25", "1e3", "\"hi\""] {
            let v = parse_value(src).unwrap();
            let back = parse_value(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "roundtrip of {src}");
        }
    }

    #[test]
    fn float_bits_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 1e-300, std::f64::consts::PI, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "bits of {f} via {s}");
        }
    }

    #[test]
    fn u64_and_i64_limits() {
        let s = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, u64::MAX);
        let s = to_string(&i64::MIN).unwrap();
        let back: i64 = from_str(&s).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v = parse_value(r#"{"a": [1, 2], "b": {"c": "x\ny"}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes() {
        let v = Value::String("quote \" slash \\ tab \t".into());
        let s = to_string(&v).unwrap();
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn nan_serializes_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
