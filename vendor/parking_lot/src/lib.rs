//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning [`Mutex`] / [`RwLock`] API surface the
//! workspace uses. Poisoning is translated into the `parking_lot`
//! semantics (the lock is still acquired; the data is returned as-is).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning like `parking_lot` does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
