//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! Only the `crossbeam::thread::scope` API used by the workspace is
//! provided. One semantic difference: where crossbeam returns `Err` from
//! `scope` when a child thread panicked, `std::thread::scope` resumes the
//! panic on join — so the `Err` branch here is unreachable in practice and
//! callers' `.expect(..)` never fires (the original panic propagates
//! instead, which is strictly more informative).

pub mod thread {
    //! Scoped threads.

    /// Handle passed to the scope closure; spawn children through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which child threads may borrow from the
    /// enclosing stack frame; all children are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u64 * 2;
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn nested_spawn_compiles() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
