//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just enough of the criterion 0.5 API surface for the
//! workspace benches to compile and run: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing model: each registered benchmark closure is run a small,
//! fixed number of iterations (after one warm-up call) and the mean
//! wall-clock time per iteration is printed. There is no statistical
//! analysis, outlier rejection, or HTML report — this harness exists
//! so `cargo bench` (and `cargo test --benches`) work in an offline
//! build environment.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Per-iteration measurement state handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up call, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style identifier.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier made from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark registry / runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finalises the group (no-op in this harness).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: usize, f: &mut F) {
    let mut b = Bencher::new(iters as u64);
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {id:<50} {per_iter:>12?}/iter ({iters} iters)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // warm-up + sample_size iterations
        assert!(ran >= DEFAULT_SAMPLE_SIZE as u64);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &v| {
            b.iter(|| total += v)
        });
        group.finish();
        assert!(total >= 21);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
