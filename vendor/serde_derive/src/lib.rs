//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implements the derive macros for the vendored serde facade without
//! `syn`/`quote`: the input item is parsed with a small hand-rolled walker
//! over `proc_macro::TokenStream` (enough for non-generic structs with
//! named fields and enums with unit/tuple/struct variants — everything the
//! workspace derives), and the impl is emitted as a string.
//!
//! Representation matches serde's externally-tagged default:
//! * struct        → `{"field": ...}`
//! * unit variant  → `"Variant"`
//! * newtype       → `{"Variant": inner}`
//! * tuple variant → `{"Variant": [..]}`
//! * struct variant→ `{"Variant": {..}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f})),"
                ));
            }
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::serialize(f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(",");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}{{{binds}}} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            items.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(v.get_field(\"{f}\"))\
                         .map_err(|e| ::serde::DeError(\
                         ::std::format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(""))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(inner)\
                         .map_err(|e| ::serde::DeError(\
                         ::std::format!(\"{name}::{vn}: {{e}}\")))?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize(&items[{i}])\
                                     .map_err(|e| ::serde::DeError(\
                                     ::std::format!(\"{name}::{vn}.{i}: {{e}}\")))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\
                                 let items = inner.as_array()?;\
                                 if items.len() != {n} {{\
                                     return ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"{name}::{vn}: expected {n} fields, \
                                     found {{}}\", items.len())));\
                                 }}\
                                 ::std::result::Result::Ok({name}::{vn}({}))\
                             }},",
                            items.join(",")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                     inner.get_field(\"{f}\"))\
                                     .map_err(|e| ::serde::DeError(\
                                     ::std::format!(\"{name}::{vn}.{f}: {{e}}\")))?,"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                            inits.join("")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::String(s) = v {{\
                     return match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown variant {{other}} of {name}\"))),\
                     }};\
                 }}\
                 let (tag, inner) = v.as_variant()?;\
                 let _ = inner;\
                 match tag {{\
                     {tagged_arms}\
                     other => ::std::result::Result::Err(::serde::DeError(\
                     ::std::format!(\"unknown variant {{other}} of {name}\"))),\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes / visibility / doc comments until `struct` or `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc. — skip (the group after pub is
                // consumed by the Group arm below on the next spin).
            }
            Some(TokenTree::Group(_)) => {} // pub(crate) payload
            Some(_) => {}
            None => panic!("derive: no struct/enum found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic types ({name})");
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde derive does not support tuple structs ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("vendored serde derive does not support unit structs ({name})")
            }
            Some(_) => {}
            None => panic!("derive: no body found for {name}"),
        }
    };
    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body))
    } else {
        Shape::Enum(parse_variants(body))
    };
    (name, shape)
}

/// Field names of a `{ a: T, pub b: U, ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'outer: loop {
        // Skip leading attributes.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        // Skip visibility.
        if matches!(&iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                &iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("derive: expected field name, got {other}"),
            None => break 'outer,
        };
        fields.push(name);
        // Skip `: Type` until a top-level comma (angle-bracket aware).
        let mut angle: i32 = 0;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break 'outer,
            }
        }
    }
    fields
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'outer: loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("derive: expected variant name, got {other}"),
            None => break 'outer,
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next top-level comma (covers discriminants).
        let mut angle: i32 = 0;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break 'outer,
            }
        }
    }
    variants
}

/// Number of comma-separated items at the top level of a token stream
/// (angle-bracket aware); 0 for an empty stream.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut items = 0usize;
    let mut saw_any = false;
    for t in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => items += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        // Trailing comma yields the same count as no trailing comma only
        // when the last item is non-empty; good enough for derive input,
        // which rustc has already validated.
        items + 1
    } else {
        0
    }
}
