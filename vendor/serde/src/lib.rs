//! Offline vendored serde facade.
//!
//! The build environment has no crates.io access, so this crate provides
//! the tiny subset of serde's surface the workspace uses: `Serialize` /
//! `Deserialize` traits (implemented via the re-exported derive macros in
//! `serde_derive`) over a JSON-shaped [`Value`] tree. The sibling
//! `serde_json` stand-in renders/parses [`Value`] as real JSON text.
//!
//! Design notes:
//! * Numbers keep their integer/float identity ([`Value::Int`],
//!   [`Value::UInt`], [`Value::Float`]) so `u64` seeds and checkpoint
//!   counters round-trip exactly.
//! * Objects preserve insertion order (`Vec<(String, Value)>`), which keeps
//!   serialized reports stable and diff-friendly.
//! * Non-finite floats serialize as `null` (JSON has no NaN/Inf) and
//!   deserialize back as `f64::NAN`, matching serde_json's lossy default.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between the derive
/// macros and the `serde_json` renderer/parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, fits `i64`).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl Value {
    /// Short name of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up an object field, yielding `Null` for absent keys (derive
    /// code paths treat missing and null alike).
    pub fn get_field(&self, name: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// View as an array slice.
    pub fn as_array(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError::expected("array", other)),
        }
    }

    /// View an externally-tagged enum value: `{"Variant": inner}`.
    pub fn as_variant(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            other => Err(DeError::expected("single-key enum object", other)),
        }
    }

    /// Numeric view accepting any number variant.
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Float(f) => Ok(*f),
            // serde_json with default float handling writes NaN as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }

    /// Integer view (rejects fractional floats).
    pub fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::UInt(u) => {
                i64::try_from(*u).map_err(|_| DeError(format!("integer {u} out of i64 range")))
            }
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            other => Err(DeError::expected("integer", other)),
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::Int(i) => {
                u64::try_from(*i).map_err(|_| DeError(format!("integer {i} out of u64 range")))
            }
            Value::UInt(u) => Ok(*u),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() && *f >= 0.0 => Ok(*f as u64),
            other => Err(DeError::expected("unsigned integer", other)),
        }
    }
}

/// Conversion into the [`Value`] interchange tree.
pub trait Serialize {
    /// Render `self` as a [`Value`].
    fn serialize(&self) -> Value;
}

/// Reconstruction from the [`Value`] interchange tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `v`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Serialize for usize {
    fn serialize(&self) -> Value {
        (*self as u64).serialize()
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64()?;
                <$t>::try_from(i).map_err(|_| {
                    DeError(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
    }
}

impl Deserialize for usize {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let u = v.as_u64()?;
        usize::try_from(u).map_err(|_| DeError(format!("{u} out of range for usize")))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != 2 {
            return Err(DeError(format!("expected 2-tuple, found {}", items.len())));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array()?;
        if items.len() != 3 {
            return Err(DeError(format!("expected 3-tuple, found {}", items.len())));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_views() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Float(3.0).as_i64().unwrap(), 3);
        assert!(Value::Float(3.5).as_i64().is_err());
        assert_eq!(Value::UInt(u64::MAX).as_u64().unwrap(), u64::MAX);
        assert!(Value::Int(-1).as_u64().is_err());
    }

    #[test]
    fn roundtrip_std_types() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let tree = v.serialize();
        let back: Vec<Option<u64>> = Deserialize::deserialize(&tree).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_field_is_null() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj.get_field("a"), &Value::Int(1));
        assert_eq!(obj.get_field("b"), &Value::Null);
    }

    #[test]
    fn variant_view() {
        let v = Value::Object(vec![("Real".into(), Value::Float(1.5))]);
        let (tag, inner) = v.as_variant().unwrap();
        assert_eq!(tag, "Real");
        assert_eq!(inner, &Value::Float(1.5));
        assert!(Value::Null.as_variant().is_err());
    }
}
