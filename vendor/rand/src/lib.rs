//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *small* subset of the `rand` API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] /
//! [`RngExt`] traits (`random`, `random_range`, `random_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is `xoshiro256++` seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed, which is all
//! the tuning engine requires (reproducible searches, not cryptography).

/// A generator seedable from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core random-number generator interface (subset of `rand::RngCore`).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distribution of values of type `Self` produced by [`RngExt::random`]
/// (stand-in for `rand::distr::StandardUniform` sampling).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range usable with [`RngExt::random_range`] (stand-in for
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (mirrors the `rand` 0.9+ method names `random` / `random_range`).
pub trait RngExt: Rng {
    /// A value drawn from `T`'s standard distribution (`f64` in `[0, 1)`,
    /// uniform bits for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngExt};

    /// In-place shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.random_range(0u64..u64::MAX);
            assert!(u < u64::MAX);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
