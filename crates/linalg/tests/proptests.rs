//! Property-based tests for the dense linear algebra substrate.

use cets_linalg::{vecops, Cholesky, Lu, Matrix, Qr, SymEigen};
use proptest::prelude::*;

/// Strategy: an n×n matrix with entries in [-5, 5].
fn square(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a symmetric positive-definite matrix A = BᵀB + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    square(n).prop_map(move |b| {
        let mut a = b.transpose().mat_mul(&b).unwrap();
        a.add_diag(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in square(4)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_transpose_identity(a in square(3), b in square(3)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let left = a.mat_mul(&b).unwrap().transpose();
        let right = b.transpose().mat_mul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matvec_matches_matmul(a in square(4), v in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let as_mat = Matrix::from_vec(4, 1, v.clone());
        let prod = a.mat_mul(&as_mat).unwrap();
        let direct = a.mat_vec(&v);
        for i in 0..4 {
            prop_assert!((prod[(i, 0)] - direct[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let llt = ch.l().mat_mul(&ch.l().transpose()).unwrap();
        // Reconstruction within jitter + rounding.
        let tol = 1e-6 * a.max_abs().max(1.0);
        prop_assert!(llt.approx_eq(&a, tol), "||LLt - A|| too big");
    }

    #[test]
    fn cholesky_solve_roundtrip(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let x = ch.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-6 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn cholesky_logdet_matches_lu(a in spd(3)) {
        let ch = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        // det > 0 for SPD; log det agrees across factorizations.
        prop_assert!(lu.det() > 0.0);
        prop_assert!((ch.log_det() - lu.det().ln()).abs() < 1e-6);
    }

    #[test]
    fn lu_solve_roundtrip(a in square(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        // Make a diagonally dominant (hence invertible).
        let mut a = a;
        for i in 0..4 {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-7 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        cols in proptest::collection::vec(-3.0..3.0f64, 12),
        b in proptest::collection::vec(-3.0..3.0f64, 6),
    ) {
        // 6x2 system; ensure full rank by adding an identity-ish bump.
        let mut a = Matrix::from_vec(6, 2, cols);
        a[(0, 0)] += 10.0;
        a[(1, 1)] += 10.0;
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Residual r = b - Ax must be orthogonal to both columns of A.
        let ax = a.mat_vec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, pi)| bi - pi).collect();
        for j in 0..2 {
            let col = a.col(j);
            prop_assert!(vecops::dot(&col, &r).abs() < 1e-7, "residual not orthogonal");
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in square(4)) {
        // Symmetrize: A = (M + Mᵀ)/2.
        let a = m.add(&m.transpose()).unwrap().scale(0.5);
        let e = SymEigen::new(&a).unwrap();
        let lam = Matrix::from_diag(e.eigenvalues());
        let v = e.eigenvectors();
        let back = v.mat_mul(&lam).unwrap().mat_mul(&v.transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())), "reconstruction failed");
        // Trace preserved.
        let trace: f64 = a.diag().iter().sum();
        let sum: f64 = e.eigenvalues().iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
    }

    #[test]
    fn eigen_of_spd_positive(a in spd(4)) {
        let e = SymEigen::new(&a).unwrap();
        prop_assert!(e.eigenvalues().iter().all(|&l| l > 0.0));
        prop_assert!(e.condition_number().is_finite());
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0..10.0f64, 5),
        b in proptest::collection::vec(-10.0..10.0f64, 5),
    ) {
        let lhs = vecops::dot(&a, &b).abs();
        let rhs = vecops::norm2(&a) * vecops::norm2(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn weighted_sq_dist_zero_iff_equal(a in proptest::collection::vec(-10.0..10.0f64, 4)) {
        let w = vec![1.0; 4];
        prop_assert_eq!(vecops::weighted_sq_dist(&a, &a, &w), 0.0);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(
        xs in proptest::collection::vec(-100.0..100.0f64, 2..20),
        shift in -50.0..50.0f64,
    ) {
        let v = vecops::variance(&xs);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((vecops::variance(&shifted) - v).abs() < 1e-6 * (1.0 + v));
    }

    #[test]
    fn argmin_is_minimal(xs in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
        let (i, v) = vecops::argmin(&xs).unwrap();
        prop_assert_eq!(xs[i], v);
        prop_assert!(xs.iter().all(|&x| x >= v));
    }

    #[test]
    fn blocked_cholesky_matches_unblocked(a in spd(24)) {
        // The blocked factorization reorganizes the loop nest but performs
        // the same arithmetic per entry; agreement should be tight.
        let unblocked = Cholesky::new_unblocked(&a).unwrap();
        let blocked = Cholesky::new_blocked(&a).unwrap();
        let tol = 1e-9 * a.max_abs().max(1.0);
        prop_assert!(
            blocked.l().approx_eq(unblocked.l(), tol),
            "blocked and unblocked factors diverge"
        );
    }

    #[test]
    fn solve_lower_multi_is_columnwise_solve_lower(
        a in spd(12),
        cols in proptest::collection::vec(-5.0..5.0f64, 12 * 7),
    ) {
        // The multi-RHS forward solve must be BIT-identical to solving each
        // column alone: the GP batch predictor's chunk invariance (and thus
        // the parallel acquisition scorer's determinism) rests on it.
        let ch = Cholesky::new_jittered(&a).unwrap();
        let mut block = Matrix::from_vec(12, 7, cols.clone());
        prop_assert!(ch.solve_lower_multi(&mut block).is_ok());
        for j in 0..7 {
            let col: Vec<f64> = (0..12).map(|i| cols[i * 7 + j]).collect();
            let single = ch.solve_lower(&col);
            for i in 0..12 {
                prop_assert_eq!(block[(i, j)], single[i], "col {} row {}", j, i);
            }
        }
    }

    #[test]
    fn inv_diag_matches_explicit_inverse(a in spd(9)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let fast = ch.inv_diag();
        let inv = ch.inverse();
        for i in 0..9 {
            let explicit = inv[(i, i)];
            prop_assert!(
                (fast[i] - explicit).abs() < 1e-9 * (1.0 + explicit.abs()),
                "diag {}: {} vs {}", i, fast[i], explicit
            );
        }
    }

    #[test]
    fn rank_desc_is_permutation_sorted(xs in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
        let order = vecops::rank_desc(&xs);
        let mut seen = order.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }
}

/// A deterministic, well-conditioned SPD matrix shaped like a GP kernel
/// Gram matrix, perturbed by `seed` so every proptest case differs.
fn kernel_like(n: usize, seed: u64) -> Matrix {
    // Squared-exponential Gram matrix (PSD by construction) plus a
    // positive diagonal; the seed varies the length-scale and the nugget.
    let scale = 6.0 + (seed % 7) as f64;
    let nugget = 0.05 + (seed % 13) as f64 / 100.0;
    Matrix::from_fn(n, n, |i, j| {
        let d = (i as f64 - j as f64) / n.max(1) as f64;
        (-scale * d * d).exp() + if i == j { nugget } else { 0.0 }
    })
}

// Determinism contract of the parallel compute layer (`cets_linalg::par`):
// every kernel is BIT-identical at any worker count. Sizes deliberately
// include dimensions below the internal chunk/block sizes (so some workers
// get nothing), just above the dispatch thresholds, and well above them.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_cholesky_is_bit_identical(seed in 0u64..1000) {
        // 5/47: scalar kernel. 97: blocked, trailing span below the spawn
        // grain. 181/230: blocked with parallel trailing updates.
        for n in [5usize, 47, 97, 181, 230] {
            let a = kernel_like(n, seed);
            let base = Cholesky::new_jittered_with(&a, 1).unwrap();
            for w in [2usize, 4] {
                let p = Cholesky::new_jittered_with(&a, w).unwrap();
                prop_assert_eq!(p.l().as_slice(), base.l().as_slice(), "n={} w={}", n, w);
                prop_assert_eq!(p.jitter(), base.jitter());
            }
        }
    }

    #[test]
    fn parallel_mat_mul_is_bit_identical(seed in 0u64..1000) {
        // (2,3,2): smaller than any chunk. (97,5,130): crosses the tile
        // dispatch with a skinny inner dimension. (130,97,40): tall-thin.
        for (n, k, m) in [(2usize, 3usize, 2usize), (97, 5, 130), (130, 97, 40)] {
            let a = Matrix::from_fn(n, k, |i, j| (((i * 31 + j * 17) as u64 ^ seed) % 23) as f64 - 11.0);
            let b = Matrix::from_fn(k, m, |i, j| (((i * 13 + j * 7) as u64 ^ seed) % 19) as f64 - 9.0);
            let base = a.mat_mul_with(&b, 1).unwrap();
            for w in [2usize, 4] {
                let p = a.mat_mul_with(&b, w).unwrap();
                prop_assert_eq!(p.as_slice(), base.as_slice(), "{}x{}x{} w={}", n, k, m, w);
            }
        }
    }

    #[test]
    fn parallel_solve_lower_multi_is_bit_identical(seed in 0u64..1000) {
        let n = 70;
        let a = kernel_like(n, seed);
        let ch = Cholesky::new_jittered_with(&a, 1).unwrap();
        // 3 columns: fewer than one cache chunk. 130/200: two to four
        // column stripes.
        for m in [3usize, 130, 200] {
            let rhs = Matrix::from_fn(n, m, |i, j| (((i * 29 + j * 11) as u64 ^ seed) % 13) as f64 - 6.0);
            let mut base = rhs.clone();
            ch.solve_lower_multi_with(&mut base, 1).unwrap();
            for w in [2usize, 4] {
                let mut p = rhs.clone();
                ch.solve_lower_multi_with(&mut p, w).unwrap();
                prop_assert_eq!(p.as_slice(), base.as_slice(), "m={} w={}", m, w);
            }
        }
    }

    #[test]
    fn parallel_aat_is_bit_identical(seed in 0u64..1000) {
        // (3,5): tiny. (48,400): the sparse-GP shape, above the spawn
        // grain. (9,2000): fewer rows than 2·workers.
        for (m, n) in [(3usize, 5usize), (48, 400), (9, 2000)] {
            let a = Matrix::from_fn(m, n, |i, j| (((i * 37 + j * 3) as u64 ^ seed) % 17) as f64 - 8.0);
            let base = a.aat_with(1);
            for w in [2usize, 4] {
                let p = a.aat_with(w);
                prop_assert_eq!(p.as_slice(), base.as_slice(), "m={} n={} w={}", m, n, w);
            }
        }
    }
}
