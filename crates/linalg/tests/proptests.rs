//! Property-based tests for the dense linear algebra substrate.

use cets_linalg::{vecops, Cholesky, Lu, Matrix, Qr, SymEigen};
use proptest::prelude::*;

/// Strategy: an n×n matrix with entries in [-5, 5].
fn square(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a symmetric positive-definite matrix A = BᵀB + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    square(n).prop_map(move |b| {
        let mut a = b.transpose().mat_mul(&b).unwrap();
        a.add_diag(n as f64);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in square(4)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_transpose_identity(a in square(3), b in square(3)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let left = a.mat_mul(&b).unwrap().transpose();
        let right = b.transpose().mat_mul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn matvec_matches_matmul(a in square(4), v in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let as_mat = Matrix::from_vec(4, 1, v.clone());
        let prod = a.mat_mul(&as_mat).unwrap();
        let direct = a.mat_vec(&v);
        for i in 0..4 {
            prop_assert!((prod[(i, 0)] - direct[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let llt = ch.l().mat_mul(&ch.l().transpose()).unwrap();
        // Reconstruction within jitter + rounding.
        let tol = 1e-6 * a.max_abs().max(1.0);
        prop_assert!(llt.approx_eq(&a, tol), "||LLt - A|| too big");
    }

    #[test]
    fn cholesky_solve_roundtrip(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let x = ch.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-6 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn cholesky_logdet_matches_lu(a in spd(3)) {
        let ch = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        // det > 0 for SPD; log det agrees across factorizations.
        prop_assert!(lu.det() > 0.0);
        prop_assert!((ch.log_det() - lu.det().ln()).abs() < 1e-6);
    }

    #[test]
    fn lu_solve_roundtrip(a in square(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        // Make a diagonally dominant (hence invertible).
        let mut a = a;
        for i in 0..4 {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (g, w) in back.iter().zip(&b) {
            prop_assert!((g - w).abs() < 1e-7 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        cols in proptest::collection::vec(-3.0..3.0f64, 12),
        b in proptest::collection::vec(-3.0..3.0f64, 6),
    ) {
        // 6x2 system; ensure full rank by adding an identity-ish bump.
        let mut a = Matrix::from_vec(6, 2, cols);
        a[(0, 0)] += 10.0;
        a[(1, 1)] += 10.0;
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Residual r = b - Ax must be orthogonal to both columns of A.
        let ax = a.mat_vec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, pi)| bi - pi).collect();
        for j in 0..2 {
            let col = a.col(j);
            prop_assert!(vecops::dot(&col, &r).abs() < 1e-7, "residual not orthogonal");
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in square(4)) {
        // Symmetrize: A = (M + Mᵀ)/2.
        let a = m.add(&m.transpose()).unwrap().scale(0.5);
        let e = SymEigen::new(&a).unwrap();
        let lam = Matrix::from_diag(e.eigenvalues());
        let v = e.eigenvectors();
        let back = v.mat_mul(&lam).unwrap().mat_mul(&v.transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())), "reconstruction failed");
        // Trace preserved.
        let trace: f64 = a.diag().iter().sum();
        let sum: f64 = e.eigenvalues().iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
    }

    #[test]
    fn eigen_of_spd_positive(a in spd(4)) {
        let e = SymEigen::new(&a).unwrap();
        prop_assert!(e.eigenvalues().iter().all(|&l| l > 0.0));
        prop_assert!(e.condition_number().is_finite());
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0..10.0f64, 5),
        b in proptest::collection::vec(-10.0..10.0f64, 5),
    ) {
        let lhs = vecops::dot(&a, &b).abs();
        let rhs = vecops::norm2(&a) * vecops::norm2(&b);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn weighted_sq_dist_zero_iff_equal(a in proptest::collection::vec(-10.0..10.0f64, 4)) {
        let w = vec![1.0; 4];
        prop_assert_eq!(vecops::weighted_sq_dist(&a, &a, &w), 0.0);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(
        xs in proptest::collection::vec(-100.0..100.0f64, 2..20),
        shift in -50.0..50.0f64,
    ) {
        let v = vecops::variance(&xs);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((vecops::variance(&shifted) - v).abs() < 1e-6 * (1.0 + v));
    }

    #[test]
    fn argmin_is_minimal(xs in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
        let (i, v) = vecops::argmin(&xs).unwrap();
        prop_assert_eq!(xs[i], v);
        prop_assert!(xs.iter().all(|&x| x >= v));
    }

    #[test]
    fn blocked_cholesky_matches_unblocked(a in spd(24)) {
        // The blocked factorization reorganizes the loop nest but performs
        // the same arithmetic per entry; agreement should be tight.
        let unblocked = Cholesky::new_unblocked(&a).unwrap();
        let blocked = Cholesky::new_blocked(&a).unwrap();
        let tol = 1e-9 * a.max_abs().max(1.0);
        prop_assert!(
            blocked.l().approx_eq(unblocked.l(), tol),
            "blocked and unblocked factors diverge"
        );
    }

    #[test]
    fn solve_lower_multi_is_columnwise_solve_lower(
        a in spd(12),
        cols in proptest::collection::vec(-5.0..5.0f64, 12 * 7),
    ) {
        // The multi-RHS forward solve must be BIT-identical to solving each
        // column alone: the GP batch predictor's chunk invariance (and thus
        // the parallel acquisition scorer's determinism) rests on it.
        let ch = Cholesky::new_jittered(&a).unwrap();
        let mut block = Matrix::from_vec(12, 7, cols.clone());
        prop_assert!(ch.solve_lower_multi(&mut block).is_ok());
        for j in 0..7 {
            let col: Vec<f64> = (0..12).map(|i| cols[i * 7 + j]).collect();
            let single = ch.solve_lower(&col);
            for i in 0..12 {
                prop_assert_eq!(block[(i, j)], single[i], "col {} row {}", j, i);
            }
        }
    }

    #[test]
    fn inv_diag_matches_explicit_inverse(a in spd(9)) {
        let ch = Cholesky::new_jittered(&a).unwrap();
        let fast = ch.inv_diag();
        let inv = ch.inverse();
        for i in 0..9 {
            let explicit = inv[(i, i)];
            prop_assert!(
                (fast[i] - explicit).abs() < 1e-9 * (1.0 + explicit.abs()),
                "diag {}: {} vs {}", i, fast[i], explicit
            );
        }
    }

    #[test]
    fn rank_desc_is_permutation_sorted(xs in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
        let order = vecops::rank_desc(&xs);
        let mut seen = order.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }
}
