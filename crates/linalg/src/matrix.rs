//! Dense row-major matrix.

use crate::{par, LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single `Vec<f64>` of length `rows * cols`; element `(i, j)`
/// lives at `data[i * cols + j]`. The type is cheap to clone for the sizes
/// used in tuning searches (N ≲ 10³).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major flat slice. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build an `n x n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when `rows == cols`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copy the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the innermost loop walks both
    /// operands row-major contiguously (see The Rust Performance Book on
    /// iteration order). Large products additionally tile the `i`/`k`/`j`
    /// loops so the working set of `other` stays cache-resident; tiles are
    /// visited in ascending `k`, so every output element accumulates its
    /// terms in exactly the same order as the untiled loop — the results
    /// are bit-identical, tiled or not.
    pub fn mat_mul(&self, other: &Matrix) -> Result<Matrix> {
        self.mat_mul_with(other, par::global_threads())
    }

    /// [`Matrix::mat_mul`] with an explicit worker count.
    ///
    /// Workers own disjoint contiguous ranges of output rows; every output
    /// element still accumulates its terms in ascending `k`, so the product
    /// is bit-identical at any worker count. `workers <= 1` (and any
    /// product small enough to skip the tiling loops) takes the sequential
    /// path.
    pub fn mat_mul_with(&self, other: &Matrix, workers: usize) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "mat_mul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // Tile edge: 96² f64 panels of `other` (~72 KiB per k×j tile pair)
        // fit comfortably in L2; small products skip the tiling loops.
        const T: usize = 96;
        let (n, kk, m) = (self.rows, self.cols, other.cols);
        if n.max(kk).max(m) <= T {
            self.mat_mul_rows(other, &mut out.data, 0, 0..n, 0..kk, 0..m);
            return Ok(out);
        }
        let w = workers.min(n);
        if w <= 1 {
            let mut kb = 0;
            while kb < kk {
                let ke = (kb + T).min(kk);
                let mut ib = 0;
                while ib < n {
                    let ie = (ib + T).min(n);
                    let mut jb = 0;
                    while jb < m {
                        let je = (jb + T).min(m);
                        self.mat_mul_rows(other, &mut out.data, 0, ib..ie, kb..ke, jb..je);
                        jb = je;
                    }
                    ib = ie;
                }
                kb = ke;
            }
            return Ok(out);
        }
        // Each worker owns a contiguous chunk of output rows and runs the
        // same k-i-j tile sweep restricted to them. `chunks_mut` hands out
        // provably disjoint output slices, so this path is entirely safe
        // code.
        let rows_per = n.div_ceil(w);
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.data.chunks_mut(rows_per * m).enumerate() {
                scope.spawn(move || {
                    let lo = ci * rows_per;
                    let hi = lo + out_chunk.len() / m;
                    let mut kb = 0;
                    while kb < kk {
                        let ke = (kb + T).min(kk);
                        let mut ib = lo;
                        while ib < hi {
                            let ie = (ib + T).min(hi);
                            let mut jb = 0;
                            while jb < m {
                                let je = (jb + T).min(m);
                                self.mat_mul_rows(other, out_chunk, lo, ib..ie, kb..ke, jb..je);
                                jb = je;
                            }
                            ib = ie;
                        }
                        kb = ke;
                    }
                });
            }
        });
        Ok(out)
    }

    /// One i-k-j tile of the product, accumulated into `out_rows` — the
    /// storage of output rows `row0..row0 + out_rows.len() / other.cols`:
    /// `out[is, js] += self[is, ks] * other[ks, js]`.
    #[inline]
    fn mat_mul_rows(
        &self,
        other: &Matrix,
        out_rows: &mut [f64],
        row0: usize,
        is: std::ops::Range<usize>,
        ks: std::ops::Range<usize>,
        js: std::ops::Range<usize>,
    ) {
        let m = other.cols;
        for i in is {
            let o0 = (i - row0) * m;
            for k in ks.clone() {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let orow = &other.data[k * m + js.start..k * m + js.end];
                let out_row = &mut out_rows[o0 + js.start..o0 + js.end];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += aik * b;
                }
            }
        }
    }

    /// Symmetric outer product `self * selfᵀ` (an `m×m` Gram matrix from an
    /// `m×n` operand).
    ///
    /// Only the lower triangle is computed; the upper triangle is mirrored
    /// afterwards, halving the flops versus `mat_mul(&self.transpose())`.
    /// Rows are register-blocked in pairs so the shared `row_j` loads feed
    /// two independent accumulator chains. Each entry still sums in
    /// ascending `k`, so results are independent of the blocking. This is
    /// the SYRK behind the sparse GP's inner factor `B = I + A Aᵀ`.
    pub fn aat(&self) -> Matrix {
        self.aat_with(par::global_threads())
    }

    /// [`Matrix::aat`] with an explicit worker count.
    ///
    /// Workers own disjoint contiguous ranges of output rows (triangularly
    /// balanced, since row `i` costs `i·n` flops); every Gram entry is one
    /// ascending-`k` dot product regardless of the partition or the pair
    /// blocking, so the result is bit-identical at any worker count.
    /// `workers <= 1` (and small Gram matrices) takes the sequential path.
    pub fn aat_with(&self, workers: usize) -> Matrix {
        let (m, n) = (self.rows, self.cols);
        let mut out = Matrix::zeros(m, m);
        // Below ~16k multiply-adds a spawn costs more than it saves.
        let w = if m * n < 16_384 {
            1
        } else {
            workers.min(m.div_ceil(2))
        };
        if w <= 1 {
            self.aat_rows(&mut out.data, 0, m);
        } else {
            let mut rest: &mut [f64] = &mut out.data;
            std::thread::scope(|scope| {
                for r in par::triangular_ranges(m, w) {
                    let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * m);
                    rest = tail;
                    scope.spawn(move || self.aat_rows(chunk, r.start, r.end));
                }
            });
        }
        for r in 0..m {
            for c in (r + 1)..m {
                out[(r, c)] = out[(c, r)];
            }
        }
        out
    }

    /// Lower-triangle rows `lo..hi` of the Gram matrix, written into
    /// `out_rows` (the storage of output rows `lo..hi`). Rows are
    /// register-blocked in pairs within the range; each entry is a single
    /// ascending-`k` dot, so the pairing does not affect results.
    fn aat_rows(&self, out_rows: &mut [f64], lo: usize, hi: usize) {
        let (m, n) = (self.rows, self.cols);
        let mut i = lo;
        while i < hi {
            if i + 1 < hi {
                let row_i0 = self.row(i);
                let row_i1 = self.row(i + 1);
                for j in 0..=i {
                    let row_j = &self.data[j * n..(j + 1) * n];
                    let (mut s0, mut s1) = (0.0, 0.0);
                    for (k, &bj) in row_j.iter().enumerate() {
                        s0 += row_i0[k] * bj;
                        s1 += row_i1[k] * bj;
                    }
                    out_rows[(i - lo) * m + j] = s0;
                    out_rows[(i + 1 - lo) * m + j] = s1;
                }
                // The (i+1, i+1) diagonal entry is not covered by the pair.
                let mut d = 0.0;
                for &v in row_i1 {
                    d += v * v;
                }
                out_rows[(i + 1 - lo) * m + i + 1] = d;
                i += 2;
            } else {
                let row_i = self.row(i);
                for j in 0..=i {
                    let row_j = &self.data[j * n..(j + 1) * n];
                    let mut s = 0.0;
                    for (a, b) in row_i.iter().zip(row_j) {
                        s += a * b;
                    }
                    out_rows[(i - lo) * m + j] = s;
                }
                i += 1;
            }
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "mat_vec: vector length {} != cols {}",
            x.len(),
            self.cols
        );
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(&a, &b)| a * b).sum::<f64>())
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn mat_t_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "mat_t_vec: vector length {} != rows {}",
            x.len(),
            self.rows
        );
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * xi;
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Add `v` to every diagonal element in place.
    pub fn add_diag(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += v;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// `true` when `|self - other|` is elementwise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` when `|self - selfᵀ|` is elementwise within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64, op: &str) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.diag(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn mat_mul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mat_mul(&b).unwrap();
        assert!(c.approx_eq(&Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn mat_mul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5, 3.0], &[0.0, 4.0, 9.0]]);
        let c = a.mat_mul(&Matrix::identity(3)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
    }

    #[test]
    fn mat_mul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mat_mul(&b), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn mat_vec_and_transposed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.mat_t_vec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert!(a
            .add(&b)
            .unwrap()
            .approx_eq(&Matrix::from_rows(&[&[4.0, 7.0]]), 0.0));
        assert!(b
            .sub(&a)
            .unwrap()
            .approx_eq(&Matrix::from_rows(&[&[2.0, 3.0]]), 0.0));
        assert!(a
            .scale(2.0)
            .approx_eq(&Matrix::from_rows(&[&[2.0, 4.0]]), 0.0));
    }

    #[test]
    fn add_diag_and_symmetry() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(a.is_symmetric(0.0));
        a.add_diag(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 1.5);
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        assert!(!ns.is_symmetric(0.5));
        assert!(ns.is_symmetric(1.1));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let m = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn aat_matches_explicit_product() {
        // Odd and even row counts exercise both the paired rows and the
        // scalar remainder.
        for (m, n) in [(1, 4), (2, 3), (5, 7), (8, 2)] {
            let a = Matrix::from_fn(m, n, |i, j| ((i * 13 + j * 5) % 9) as f64 - 4.0);
            let fast = a.aat();
            let slow = a.mat_mul(&a.transpose()).unwrap();
            assert!(fast.approx_eq(&slow, 1e-12), "m={m} n={n}");
            assert!(fast.is_symmetric(0.0));
        }
    }
}
