//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V Λ Vᵀ` of a symmetric matrix.
///
/// Used as a diagnostic in the GP layer (kernel-matrix conditioning: a
/// huge spread of eigenvalues means the surrogate is numerically fragile
/// and the jitter escalation will engage) and available to downstream
/// statistics (PCA-style analyses of evaluation databases).
///
/// The cyclic Jacobi method is `O(n³)` per sweep with quadratic
/// convergence once nearly diagonal — entirely adequate for tuning-sized
/// matrices and unbeatable for robustness.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    eigenvalues: Vec<f64>,
    /// Eigenvectors as matrix columns, matching [`SymEigen::eigenvalues`].
    eigenvectors: Matrix,
}

impl SymEigen {
    /// Decompose a symmetric matrix. Fails for non-square or (beyond
    /// `tol = 1e-8 · max|A|`) asymmetric input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let tol = a.max_abs() * 1e-8;
        if !a.is_symmetric(tol.max(1e-12)) {
            return Err(LinalgError::ShapeMismatch(
                "SymEigen requires a symmetric matrix".into(),
            ));
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut v = Matrix::identity(n);

        // Cyclic Jacobi sweeps until off-diagonal mass is negligible.
        let off = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s
        };
        let target = (a.frobenius_norm() * 1e-12).powi(2).max(1e-300);
        for _sweep in 0..100 {
            if off(&m) <= target {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    // Jacobi rotation angle.
                    let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation: rows/cols p and q.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Sort eigenpairs descending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            m[(j, j)]
                .partial_cmp(&m[(i, i)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
        Ok(SymEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvectors as columns (column `k` pairs with eigenvalue `k`).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Spectral condition number `λ_max / λ_min` (for SPD input);
    /// `+∞` when the smallest eigenvalue is ≤ 0.
    pub fn condition_number(&self) -> f64 {
        let max = self.eigenvalues.first().copied().unwrap_or(0.0);
        let min = self.eigenvalues.last().copied().unwrap_or(0.0);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = SymEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[3.0, 2.0, 1.0]);
        assert!((e.condition_number() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors().col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = SymEigen::new(&a).unwrap();
        // A = V Λ Vᵀ.
        let lam = Matrix::from_diag(e.eigenvalues());
        let v = e.eigenvectors();
        let back = v.mat_mul(&lam).unwrap().mat_mul(&v.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-8), "reconstruction failed");
        // Eigenvectors orthonormal: VᵀV = I.
        let vtv = v.transpose().mat_mul(v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let e = SymEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        let prod: f64 = e.eigenvalues().iter().product();
        assert!((sum - 6.0).abs() < 1e-10, "trace mismatch");
        assert!((prod - 1.0).abs() < 1e-10, "det mismatch"); // 5*1 - 4 = 1
    }

    #[test]
    fn indefinite_matrix_negative_eigenvalue() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = SymEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 1.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] + 1.0).abs() < 1e-10);
        assert!(e.condition_number().is_infinite());
    }

    #[test]
    fn rejects_asymmetric_and_nonsquare() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        assert!(SymEigen::new(&a).is_err());
        assert!(SymEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn larger_random_spd() {
        // B^T B + I is SPD; eigenvalues must all exceed 1 - eps.
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let mut a = b.transpose().mat_mul(&b).unwrap();
        a.add_diag(1.0);
        let e = SymEigen::new(&a).unwrap();
        assert!(e.eigenvalues().iter().all(|&l| l >= 1.0 - 1e-8));
        assert!(e.condition_number().is_finite());
        // Descending order.
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
