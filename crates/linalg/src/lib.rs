//! # cets-linalg
//!
//! Small, dependency-free dense linear algebra used by the CETS Gaussian
//! process surrogate (`cets-gp`) and the statistics toolkit (`cets-stats`).
//!
//! The crate deliberately implements only what the tuning methodology needs:
//!
//! * a dense row-major [`Matrix`] with the usual arithmetic,
//! * [`Cholesky`] factorization with automatic jitter escalation — the
//!   workhorse of Gaussian-process fitting (the `O(N^3)` cost the paper
//!   discusses comes from here),
//! * [`Lu`] (partial pivoting) for general square solves,
//! * [`Qr`] (Householder) for least-squares problems used by the
//!   statistics layer,
//! * free-function vector helpers in [`vecops`].
//!
//! Everything is `f64`; tuning problems are tiny by BLAS standards (a few
//! hundred observations), so clarity and numerical robustness are favoured
//! over cache-blocked performance. All factorizations are deterministic.
//!
//! ```
//! use cets_linalg::{Matrix, Cholesky};
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
//! let ch = Cholesky::new(&a).unwrap();
//! let x = ch.solve_vec(&[2.0, 1.0]);
//! // A * x == b
//! let b = a.mat_vec(&x);
//! assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
//! ```

// Triangular solves and factorizations are written with explicit index
// loops on purpose: the ranges (k < i, strictly-lower, etc.) mirror the
// textbook algorithms, and iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod eigen;
mod lu;
mod matrix;
pub mod par;
mod qr;
pub mod vecops;

pub use cholesky::Cholesky;
pub use eigen::SymEigen;
pub use lu::Lu;
pub use matrix::Matrix;
pub use par::{ParConfig, Threads};
pub use qr::Qr;

/// Errors produced by factorizations and shape-checked operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes; payload is a human-readable
    /// description of the mismatch.
    ShapeMismatch(String),
    /// The matrix was not positive definite even after the maximum jitter
    /// escalation; payload is the last jitter tried.
    NotPositiveDefinite { last_jitter: f64 },
    /// The matrix is singular to working precision (LU/QR).
    Singular,
    /// The operation requires a square matrix.
    NotSquare { rows: usize, cols: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::NotPositiveDefinite { last_jitter } => write!(
                f,
                "matrix not positive definite (last jitter tried: {last_jitter:e})"
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
