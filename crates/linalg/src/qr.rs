//! Householder QR factorization and least squares.

use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// `cets-stats` uses this for ordinary-least-squares fits (e.g. the linear
/// baselines behind feature-importance sanity checks) because the normal
/// equations squared condition number makes Cholesky on `AᵀA` fragile for
/// near-collinear tuning parameters (threadblock size vs threadblocks/SM in
/// the paper correlate at ~0.6).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; `R` on and above it.
    qr: Matrix,
    /// Scalar `beta` per reflector.
    betas: Vec<f64>,
}

impl Qr {
    /// Factorize `a` (`m >= n` required).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::ShapeMismatch(format!(
                "Qr::new requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1..m, k]]; beta = 2 / (vᵀv)
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            // Apply reflector to remaining columns.
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let s = beta * dot;
                qr[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store: R diagonal value, and v (normalized so v0 stays).
            qr[(k, k)] = alpha;
            // Stash v0 implicitly: scale sub-diagonal entries by 1/v0 so that
            // v = [1, stored...] and fold v0² into beta.
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
                betas.push(beta * v0 * v0);
            } else {
                betas.push(0.0);
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Least-squares solve of `min ||A x - b||₂`.
    ///
    /// Fails with [`LinalgError::Singular`] when `R` has a (near-)zero
    /// diagonal, i.e. the columns of `A` are linearly dependent.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m, "solve_least_squares: rhs length mismatch");
        let mut y = b.to_vec();
        // Apply Qᵀ: each reflector in turn.
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        // Back substitution on R.
        let tol = self.qr.max_abs() * 1e-12;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&[5.0, 10.0]).unwrap();
        let back = a.mat_vec(&x);
        assert!((back[0] - 5.0).abs() < 1e-10);
        assert!((back[1] - 10.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_regression_line() {
        // Fit y = 1 + 2t at t = 0..4 exactly.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: the LS solution beats nearby perturbations.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.0, 1.0];
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let res = |x: &[f64]| -> f64 {
            a.mat_vec(x)
                .iter()
                .zip(&b)
                .map(|(p, t)| (p - t) * (p - t))
                .sum()
        };
        let r0 = res(&x);
        for d in [[0.01, 0.0], [-0.01, 0.0], [0.0, 0.01], [0.0, -0.01]] {
            let perturbed = [x[0] + d[0], x[1] + d[1]];
            assert!(res(&perturbed) >= r0);
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let r = Qr::new(&a).unwrap().r();
        assert_eq!(r.rows(), 2);
        assert_eq!(r[(1, 0)], 0.0);
        // |R| diag nonzero for full-rank input.
        assert!(r[(0, 0)].abs() > 1e-10 && r[(1, 1)].abs() > 1e-10);
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Qr::new(&a), Err(LinalgError::ShapeMismatch(_))));
    }
}
