//! Deterministic fork-join parallel substrate.
//!
//! Every parallel kernel in the workspace is built from the helpers in
//! this module, and all of them obey one contract: **results are
//! bit-identical at any thread count**. The trick is never "parallel
//! reduction with whatever order the scheduler picks"; it is
//!
//! 1. **fixed-chunk partitioning** — the iteration space is split into
//!    contiguous, ascending ranges, each owned by exactly one worker, so
//!    every output element is written by exactly one thread;
//! 2. **unchanged per-element arithmetic** — each output element's own
//!    accumulation loop (ascending `k`, ascending panel, …) is the same
//!    instruction sequence the sequential code runs, so partitioning
//!    cannot reassociate floating point;
//! 3. **fixed-order reduction** — when a single winner must be picked
//!    from per-chunk results (multi-start optimization, argmax), the
//!    fold walks chunks in ascending index order with the same strict
//!    comparison the sequential loop uses.
//!
//! `threads == 1` short-circuits to the plain sequential loop in every
//! helper, so single-threaded runs execute the exact pre-existing code
//! paths.
//!
//! # Thread-count resolution
//!
//! The effective worker count flows from (highest to lowest precedence):
//! [`set_global_threads`] (the `cets --threads <n>` flag), the
//! `CETS_THREADS` environment variable, then
//! [`std::thread::available_parallelism`] (fail-soft to 1). Structured
//! configs ([`ParConfig`]) either pin a fixed count or defer to that
//! global resolution.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count policy carried by configuration structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Defer to the process-wide resolution (`--threads`, `CETS_THREADS`,
    /// then detected parallelism).
    Auto,
    /// Use exactly this many workers (clamped to at least 1).
    Fixed(usize),
}

/// Parallelism configuration embedded in `GpConfig` / `MethodologyConfig`
/// and handed down to the linalg kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker-count policy.
    pub threads: Threads,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: Threads::Auto,
        }
    }
}

impl ParConfig {
    /// A config pinned to exactly `n` workers.
    pub fn fixed(n: usize) -> Self {
        ParConfig {
            threads: Threads::Fixed(n.max(1)),
        }
    }

    /// Resolve to a concrete worker count (always ≥ 1).
    pub fn resolve(&self) -> usize {
        match self.threads {
            Threads::Auto => global_threads(),
            Threads::Fixed(n) => n.max(1),
        }
    }
}

/// 0 = not yet resolved; any other value is the cached/overridden count.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Detected hardware parallelism, failing soft to 1 (the same value
/// `perf_suite` records as `threads_available`).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn detect_threads() -> usize {
    match std::env::var("CETS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

/// The process-wide worker count: an explicit [`set_global_threads`]
/// override if one was made, else `CETS_THREADS`, else detected hardware
/// parallelism (fail-soft 1). The environment is read once and cached.
pub fn global_threads() -> usize {
    let cur = GLOBAL_THREADS.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let n = detect_threads();
    // A racing first call computes the same value; last store wins.
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Override the process-wide worker count (the `cets --threads <n>`
/// flag). Clamped to at least 1.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Split `0..n` into at most `workers` contiguous ascending ranges of
/// `ceil(n / workers)` elements (the last may be short). Empty when
/// `n == 0`.
pub fn chunk_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(workers.max(1));
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Split `0..n` into at most `workers` contiguous ascending ranges whose
/// *triangular* weights (row `i` costs `i + 1`) are approximately equal —
/// the right partition for lower-triangle sweeps (SYRK trailing updates,
/// Gram-matrix rows), where equal-length chunks would leave the last
/// worker with ~2× the flops. Empty when `n == 0`.
pub fn triangular_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let w = workers.max(1).min(n);
    let mut out = Vec::with_capacity(w);
    let mut lo = 0;
    for k in 1..=w {
        // Boundary at n·√(k/w): the prefix 0..b holds ~b²/2 of the n²/2
        // total weight.
        let hi = if k == w {
            n
        } else {
            ((n as f64) * (k as f64 / w as f64).sqrt()).round() as usize
        }
        .clamp(lo, n);
        if hi > lo {
            out.push(lo..hi);
            lo = hi;
        }
    }
    out
}

/// Run `body` once per range, on scoped threads when there are two or
/// more ranges and inline otherwise.
///
/// The caller guarantees that `body` touches disjoint state for disjoint
/// ranges; under that contract the result is bit-identical to the
/// sequential sweep whenever `body` performs per-element independent
/// arithmetic.
pub fn for_each_range<F>(ranges: Vec<Range<usize>>, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if ranges.len() <= 1 {
        if let Some(r) = ranges.into_iter().next() {
            body(r);
        }
        return;
    }
    std::thread::scope(|scope| {
        for r in ranges {
            let body = &body;
            scope.spawn(move || body(r));
        }
    });
}

/// Run `body(range)` over fixed equal-length chunks of `0..n`, on scoped
/// threads when `workers > 1` and inline otherwise (see
/// [`for_each_range`] for the disjointness contract).
pub fn for_each_chunk<F>(workers: usize, n: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    if workers <= 1 || n == 1 {
        body(0..n);
        return;
    }
    for_each_range(chunk_ranges(n, workers), body);
}

/// Map `task` over `0..n` and collect results in index order, running
/// fixed chunks on scoped threads when `workers > 1`.
///
/// `workers <= 1` is a plain sequential loop. Because each index owns its
/// slot and the output is assembled in ascending order, any fold the
/// caller performs over the returned `Vec` is a fixed-order reduction.
pub fn map_indexed<T, F>(workers: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(task).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers.min(n));
    std::thread::scope(|scope| {
        for (ci, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let task = &task;
            scope.spawn(move || {
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(task(ci * chunk + k));
                }
            });
        }
    });
    // Every slot is filled by construction (the chunks cover 0..n).
    slots.into_iter().flatten().collect()
}

/// A raw `*mut f64` that may cross thread boundaries.
///
/// Used by kernels whose natural partition does not map onto disjoint
/// slices (trailing Cholesky rows overlap the panel they read; solve
/// columns interleave in row-major storage) but whose *writes* are
/// provably disjoint across workers.
///
/// # Safety contract (on the user, not the constructor)
///
/// Callers must guarantee that for the duration of the scoped-thread
/// region (a) every element is written by at most one worker, and
/// (b) no worker reads an element another worker writes. All reads of
/// shared (never-written) regions are fine.
#[derive(Clone, Copy)]
pub struct SendPtr(*mut f64);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Wrap a pointer for use inside a scoped-thread region.
    pub fn new(p: *mut f64) -> Self {
        SendPtr(p)
    }

    /// The wrapped pointer. All dereferences must respect the type-level
    /// safety contract above.
    pub fn get(&self) -> *mut f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_ranges_cover_and_balance() {
        for n in [0usize, 1, 5, 48, 500] {
            for w in [1usize, 2, 4, 7] {
                let rs = triangular_ranges(n, w);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "n={n} w={w}");
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(rs.len() <= w);
            }
        }
        // Triangular weights are roughly equal: for n=500, w=4 the first
        // chunk must be much longer than the last.
        let rs = triangular_ranges(500, 4);
        assert_eq!(rs.len(), 4);
        assert!(rs[0].len() > rs[3].len());
    }

    #[test]
    fn chunk_ranges_cover_and_ascend() {
        for n in [0usize, 1, 2, 7, 48, 100] {
            for w in [1usize, 2, 3, 4, 9] {
                let rs = chunk_ranges(n, w);
                assert!(rs.len() <= w.max(1));
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "n={n} w={w}");
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for w in [1usize, 2, 3, 8] {
            let got = map_indexed(w, 10, |i| i * i);
            assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn for_each_chunk_writes_every_element_once() {
        for w in [1usize, 2, 5] {
            let n = 37;
            let mut hits = vec![0u8; n];
            let ptr = SendPtr::new(hits.as_mut_ptr() as *mut f64);
            // Reuse SendPtr machinery with a u8 buffer by going through
            // the raw address; each worker owns a disjoint range.
            let addr = ptr.get() as *mut u8;
            let shared = SendPtr::new(addr as *mut f64);
            for_each_chunk(w, n, |r| {
                let base = shared.get() as *mut u8;
                for i in r {
                    // SAFETY: ranges are disjoint, so element i is
                    // written by exactly one worker.
                    unsafe { *base.add(i) += 1 };
                }
            });
            assert!(hits.iter().all(|&h| h == 1), "w={w}");
        }
    }

    #[test]
    fn par_config_resolution() {
        assert_eq!(ParConfig::fixed(0).resolve(), 1);
        assert_eq!(ParConfig::fixed(3).resolve(), 3);
        let auto = ParConfig::default();
        assert!(auto.resolve() >= 1);
    }

    #[test]
    fn set_global_threads_overrides() {
        // Serialized against other tests touching the global by the
        // uniqueness of the value used.
        let before = global_threads();
        set_global_threads(5);
        assert_eq!(global_threads(), 5);
        assert_eq!(ParConfig::default().resolve(), 5);
        set_global_threads(before);
    }
}
