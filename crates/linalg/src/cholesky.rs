//! Cholesky factorization with automatic jitter escalation.

use crate::{par, LinalgError, Matrix, Result};

/// Panel width of the blocked factorization (and the dispatch threshold:
/// matrices below `2 * BLOCK` use the scalar kernel, whose loop overhead is
/// lower).
const BLOCK: usize = 48;
/// Micro-tile edge of the SYRK-style trailing update.
const TILE: usize = 64;

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
///
/// Gaussian-process fitting repeatedly factorizes kernel matrices that are
/// positive definite in exact arithmetic but can lose definiteness to
/// rounding when observations nearly coincide (common in tuning searches
/// where the acquisition revisits a neighbourhood). [`Cholesky::new_jittered`]
/// therefore retries with an escalating diagonal "jitter", the standard GP
/// stabilisation; the jitter actually applied is recorded in
/// [`Cholesky::jitter`].
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factorize `a` without any jitter. Fails when `a` is not (numerically)
    /// positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_jitter(a, 0.0, par::global_threads())
    }

    /// Factorize `a + jitter * I`, retrying with jitter escalated by 10x up
    /// to `1e-4 * mean(diag)` when the factorization fails.
    ///
    /// This mirrors the behaviour of mainstream GP libraries (GPy, GPyTorch,
    /// GPTune's underlying models). Starts from `initial` (use `1e-10` of the
    /// mean diagonal as a sensible default via [`Cholesky::new_jittered`]).
    pub fn new_escalating(a: &Matrix, initial: f64, max_jitter: f64) -> Result<Self> {
        Self::new_escalating_with(a, initial, max_jitter, par::global_threads())
    }

    /// [`Cholesky::new_escalating`] with an explicit worker count for the
    /// blocked kernel's trailing update. The factor is bit-identical at
    /// every worker count; `workers <= 1` takes the sequential path.
    pub fn new_escalating_with(
        a: &Matrix,
        initial: f64,
        max_jitter: f64,
        workers: usize,
    ) -> Result<Self> {
        let mut jitter = initial;
        loop {
            match Self::with_jitter(a, jitter, workers) {
                Ok(c) => return Ok(c),
                Err(_) if jitter == 0.0 => jitter = max_jitter * 1e-8,
                Err(_) if jitter < max_jitter => jitter = (jitter * 10.0).min(max_jitter),
                Err(_) => {
                    return Err(LinalgError::NotPositiveDefinite {
                        last_jitter: jitter,
                    })
                }
            }
        }
    }

    /// Factorize with the default escalation policy: start at zero jitter,
    /// escalate to at most `1e-4 * mean(|diag|)`.
    pub fn new_jittered(a: &Matrix) -> Result<Self> {
        Self::new_jittered_with(a, par::global_threads())
    }

    /// [`Cholesky::new_jittered`] with an explicit worker count (see
    /// [`Cholesky::new_escalating_with`]).
    pub fn new_jittered_with(a: &Matrix, workers: usize) -> Result<Self> {
        let n = a.rows().max(1);
        let mean_diag = a.diag().iter().map(|d| d.abs()).sum::<f64>() / n as f64;
        let max_jitter = (mean_diag * 1e-4).max(1e-12);
        Self::new_escalating_with(a, 0.0, max_jitter, workers)
    }

    fn with_jitter(a: &Matrix, jitter: f64, workers: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() >= BLOCK * 2 {
            Self::factor_blocked(a, jitter, workers)
        } else {
            Self::factor_scalar(a, jitter)
        }
    }

    /// Reference (unblocked) factorization — the oracle the blocked kernel
    /// is property-tested against. Prefer [`Cholesky::new`] /
    /// [`Cholesky::new_jittered`], which pick the faster kernel by size.
    pub fn new_unblocked(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        Self::factor_scalar(a, 0.0)
    }

    /// Cache-blocked factorization regardless of size — exposed so tests
    /// can exercise the blocked kernel on matrices below the dispatch
    /// threshold.
    pub fn new_blocked(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        Self::factor_blocked(a, 0.0, 1)
    }

    /// Classic scalar row-by-row factorization.
    fn factor_scalar(a: &Matrix, jitter: f64) -> Result<Self> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            last_jitter: jitter,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// Cache-blocked right-looking factorization: factor a `BLOCK×BLOCK`
    /// diagonal block, triangular-solve the panel below it, then apply the
    /// SYRK-style trailing update in `TILE×TILE` micro-blocks whose inner
    /// loop is a contiguous dot over the panel columns. Same flop count as
    /// the scalar kernel, but the trailing update (the `O(n³)` bulk) reads
    /// rows sequentially and reuses each panel row across a whole tile.
    ///
    /// With `workers > 1` the trailing update — the `O(n³)` bulk — is
    /// split into contiguous row ranges across scoped threads; see
    /// [`trailing_update_rows`] for why the factor stays bit-identical.
    fn factor_blocked(a: &Matrix, jitter: f64, workers: usize) -> Result<Self> {
        let n = a.rows();
        // Work in-place on the lower triangle of `a` (+ jitter).
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            let (dst, src) = (&mut l.row_mut(i)[..=i], &a.row(i)[..=i]);
            dst.copy_from_slice(src);
            dst[i] += jitter;
        }
        let mut kb = 0;
        while kb < n {
            let b = BLOCK.min(n - kb);
            // 1. Factor the diagonal block in place (columns kb..kb+b of
            //    rows kb..kb+b; earlier panels were already applied by the
            //    right-looking trailing updates).
            for jj in 0..b {
                let j = kb + jj;
                let mut d = l[(j, j)];
                for c in kb..j {
                    d -= l[(j, c)] * l[(j, c)];
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite {
                        last_jitter: jitter,
                    });
                }
                let piv = d.sqrt();
                l[(j, j)] = piv;
                for i in (j + 1)..(kb + b) {
                    let mut s = l[(i, j)];
                    for c in kb..j {
                        s -= l[(i, c)] * l[(j, c)];
                    }
                    l[(i, j)] = s / piv;
                }
            }
            // 2. Panel solve: rows below the block against the block's
            //    lower-triangular factor, register-blocked four rows at a
            //    time — the four dot products share the `row_j` loads and
            //    run as independent accumulator chains. Each row's
            //    arithmetic order (ascending `j`, ascending `c` within the
            //    dot) is unchanged, so the factor is bit-identical to the
            //    row-at-a-time form.
            {
                let (head, tail) = l.as_mut_slice().split_at_mut((kb + b) * n);
                let mut quads = tail.chunks_exact_mut(4 * n);
                for quad in &mut quads {
                    let (r0, rest) = quad.split_at_mut(n);
                    let (r1, rest) = rest.split_at_mut(n);
                    let (r2, r3) = rest.split_at_mut(n);
                    for jj in 0..b {
                        let j = kb + jj;
                        let row_j = &head[j * n + kb..j * n + j];
                        let piv = head[j * n + j];
                        let (mut s0, mut s1, mut s2, mut s3) = (r0[j], r1[j], r2[j], r3[j]);
                        for (c, &ljc) in row_j.iter().enumerate() {
                            s0 -= r0[kb + c] * ljc;
                            s1 -= r1[kb + c] * ljc;
                            s2 -= r2[kb + c] * ljc;
                            s3 -= r3[kb + c] * ljc;
                        }
                        r0[j] = s0 / piv;
                        r1[j] = s1 / piv;
                        r2[j] = s2 / piv;
                        r3[j] = s3 / piv;
                    }
                }
                for row in quads.into_remainder().chunks_exact_mut(n) {
                    for jj in 0..b {
                        let j = kb + jj;
                        let row_j = &head[j * n + kb..j * n + j];
                        let mut s = row[j];
                        for (c, &ljc) in row_j.iter().enumerate() {
                            s -= row[kb + c] * ljc;
                        }
                        row[j] = s / head[j * n + j];
                    }
                }
            }
            // 3. Trailing SYRK update, micro-tiled: A' -= P Pᵀ where P is
            //    the just-computed panel (see `trailing_update_rows` for
            //    the kernel). Trailing rows only read panel columns
            //    (< tail) — which nothing writes during this phase — and
            //    write trailing columns (>= tail) of their own row, so
            //    disjoint row ranges run on separate workers with
            //    bit-identical results. Tiles stay anchored to the `tail`
            //    grid regardless of the partition.
            let tail = kb + b;
            if tail < n {
                let span = n - tail;
                // Below two tiles of trailing rows the update is too small
                // to amortize a thread spawn.
                let w = if span < 2 * TILE { 1 } else { workers };
                let base = par::SendPtr::new(l.as_mut_slice().as_mut_ptr());
                // Row i costs (i - tail + 1)·b flops, so triangular ranges
                // balance the load where equal chunks would not.
                par::for_each_range(par::triangular_ranges(span, w), |r| {
                    // SAFETY: the ranges are disjoint, so rows
                    // [tail + r.start, tail + r.end) are written by this
                    // worker alone; panel columns are read-only for every
                    // worker.
                    unsafe {
                        trailing_update_rows(base, n, kb, b, tail, tail + r.start, tail + r.end)
                    };
                });
            }
            kb += b;
        }
        // The strict upper triangle was never written and stays zero.
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was actually added to achieve definiteness.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solve `L Y = B` in place for a row-major multi-column right-hand
    /// side (`B` is `n × m`; column `j` of the result equals
    /// [`Cholesky::solve_lower`] applied to column `j` of the input,
    /// bit-for-bit — per-column arithmetic order is identical).
    ///
    /// Columns are processed in cache-sized chunks so the `O(n² m)` sweep
    /// reuses each `L` row across a whole chunk; this is the batched
    /// kernel behind `Gp::predict_batch`.
    pub fn solve_lower_multi(&self, b: &mut Matrix) -> Result<()> {
        self.solve_lower_multi_with(b, par::global_threads())
    }

    /// [`Cholesky::solve_lower_multi`] with an explicit worker count.
    ///
    /// Workers own disjoint contiguous column stripes; since each column's
    /// forward substitution is independent and its arithmetic order does
    /// not depend on the stripe boundaries, the result is bit-identical at
    /// every worker count. `workers <= 1` takes the sequential path.
    pub fn solve_lower_multi_with(&self, b: &mut Matrix, workers: usize) -> Result<()> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_lower_multi: rhs has {} rows, factor is {n}x{n}",
                b.rows()
            )));
        }
        let m = b.cols();
        // Column chunking keeps the active window of B (n × chunk) hot;
        // per-column arithmetic is unaffected by the chunk boundaries.
        const CHUNK: usize = 64;
        // A stripe below one cache chunk per worker is not worth a spawn.
        let w = workers.min(m.div_ceil(CHUNK));
        if w <= 1 {
            let mut j0 = 0;
            while j0 < m {
                let j1 = (j0 + CHUNK).min(m);
                for i in 0..n {
                    let (done, rest) = b.as_mut_slice().split_at_mut(i * m);
                    let row_i = &mut rest[j0..j1];
                    for k in 0..i {
                        let lik = self.l[(i, k)];
                        let row_k = &done[k * m + j0..k * m + j1];
                        for (bi, &bk) in row_i.iter_mut().zip(row_k) {
                            *bi -= lik * bk;
                        }
                    }
                    let inv = self.l[(i, i)];
                    for bi in row_i.iter_mut() {
                        *bi /= inv;
                    }
                }
                j0 = j1;
            }
            return Ok(());
        }
        let l = &self.l;
        let base = par::SendPtr::new(b.as_mut_slice().as_mut_ptr());
        par::for_each_chunk(w, m, |r| {
            // Each worker reads and writes only its own column stripe
            // [r.start, r.end) of B (plus the shared read-only factor L),
            // running the same chunked sweep the sequential path runs.
            let p = base.get();
            let mut j0 = r.start;
            while j0 < r.end {
                let j1 = (j0 + CHUNK).min(r.end);
                let width = j1 - j0;
                for i in 0..n {
                    // SAFETY: column stripes are disjoint across workers;
                    // row `i` of the stripe is written only here, rows
                    // `k < i` of the stripe were written by this worker
                    // earlier in the sweep and are now read-only.
                    let row_i = unsafe { std::slice::from_raw_parts_mut(p.add(i * m + j0), width) };
                    for k in 0..i {
                        let lik = l[(i, k)];
                        // SAFETY: as above — an earlier row of this
                        // worker's own stripe.
                        let row_k = unsafe {
                            std::slice::from_raw_parts(p.add(k * m + j0) as *const f64, width)
                        };
                        for (bi, &bk) in row_i.iter_mut().zip(row_k) {
                            *bi -= lik * bk;
                        }
                    }
                    let inv = l[(i, i)];
                    for bi in row_i.iter_mut() {
                        *bi /= inv;
                    }
                }
                j0 = j1;
            }
        });
        Ok(())
    }

    /// Solve `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solve `A X = B` column by column.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_mat: rhs has {} rows, factor is {}x{}",
                b.rows(),
                self.dim(),
                self.dim()
            )));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 Σ log L_ii` — needed for the GP log marginal
    /// likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse `A⁻¹` (used sparingly; prefer the solve methods).
    ///
    /// Infallible by construction: each unit vector is solved directly, so
    /// no shape check (and no panic path) is involved.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let x = self.solve_vec(&e);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// The diagonal of `A⁻¹` without forming the inverse.
    ///
    /// Column `i` of `L⁻¹` is the forward solve `L z = e_i` (which is zero
    /// above `i`), and `diag(A⁻¹)_i = Σ_k z_k²` since
    /// `A⁻¹ = L⁻ᵀ L⁻¹`. Runs in `n³/6` flops versus the `~n³` of
    /// [`Cholesky::inverse`] — this closed form is what makes the GP's
    /// leave-one-out residuals cheap (Sundararajan & Keerthi need exactly
    /// `[K⁻¹]_ii` and `α`).
    pub fn inv_diag(&self) -> Vec<f64> {
        let n = self.dim();
        let mut out = vec![0.0; n];
        let mut z = vec![0.0; n];
        for i in 0..n {
            let zi = 1.0 / self.l[(i, i)];
            z[i] = zi;
            let mut acc = zi * zi;
            for k in (i + 1)..n {
                let row_k = &self.l.row(k)[i..k];
                let mut s = 0.0;
                for (lkc, zc) in row_k.iter().zip(&z[i..k]) {
                    s -= lkc * zc;
                }
                let zk = s / self.l[(k, k)];
                z[k] = zk;
                acc += zk * zk;
            }
            out[i] = acc;
        }
        out
    }

    /// Grow the factorization by one row/column in `O(n²)`.
    ///
    /// Given the bordered matrix `[[A, c], [cᵀ, d]]` where `A = L Lᵀ` is the
    /// already-factorized block, the new factor row is `[wᵀ, √(d − wᵀw)]`
    /// with `L w = c`. This is how a Gaussian process absorbs one new
    /// observation per BO iteration without re-paying the `O(n³)`
    /// factorization.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the bordered
    /// matrix is not positive definite (`d ≤ wᵀw`); callers should then
    /// fall back to a fresh jittered factorization.
    pub fn append(&mut self, col: &[f64], diag: f64) -> Result<()> {
        let n = self.dim();
        if col.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "append: column length {} != {n}",
                col.len()
            )));
        }
        let w = self.solve_lower(col);
        let wtw: f64 = w.iter().map(|&v| v * v).sum();
        let pivot2 = diag + self.jitter - wtw;
        if pivot2 <= 0.0 || !pivot2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                last_jitter: self.jitter,
            });
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                grown[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, &wj) in w.iter().enumerate() {
            grown[(n, j)] = wj;
        }
        grown[(n, n)] = pivot2.sqrt();
        self.l = grown;
        Ok(())
    }

    /// Rank-one update in `O(n²)`: replace the factorization of `A` with
    /// the factorization of `A + v vᵀ`.
    ///
    /// Uses the classic sequence of Givens-like plane rotations (Golub &
    /// Van Loan §6.5.4). Adding `v vᵀ` to a positive-definite matrix keeps
    /// it positive definite, so the update cannot fail for finite input;
    /// non-finite pivots (overflow, NaN in `v`) are still reported. This
    /// is the kernel behind the sparse GP's `O(m²)` absorption of one new
    /// observation: the inner factor `B = I + A Aᵀ` gains `a aᵀ` per
    /// appended point.
    pub fn rank_one_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "rank_one_update: vector length {} != {n}",
                v.len()
            )));
        }
        let mut work = v.to_vec();
        // Validate all pivots before committing any mutation, so a failed
        // update leaves the factor untouched (mirrors `append`).
        let mut trial = self.l.clone();
        for k in 0..n {
            let lkk = trial[(k, k)];
            let wk = work[k];
            let r = (lkk * lkk + wk * wk).sqrt();
            if r <= 0.0 || !r.is_finite() {
                return Err(LinalgError::NotPositiveDefinite {
                    last_jitter: self.jitter,
                });
            }
            let c = r / lkk;
            let s = wk / lkk;
            trial[(k, k)] = r;
            if s != 0.0 {
                for i in (k + 1)..n {
                    let lik = (trial[(i, k)] + s * work[i]) / c;
                    work[i] = c * work[i] - s * lik;
                    trial[(i, k)] = lik;
                }
            }
        }
        self.l = trial;
        Ok(())
    }
}

/// One worker's share of the blocked factorization's trailing SYRK
/// update: `A'[i][j] -= Σ_k P[i][k] P[j][k]` for rows `lo..hi` (all of
/// `tail..n` when sequential), where `P` is the panel `L[.., kb..kb+b]`.
///
/// Row and column tiles stay anchored to the `tail`-based `TILE` grid
/// regardless of the worker's row range, and every output element
/// receives exactly one ascending-`k` dot-product subtraction, so any
/// row partition produces a bit-identical factor.
///
/// # Safety
///
/// `base` must point to the live `n × n` factor storage, with
/// `tail == kb + b <= n` and `tail <= lo <= hi <= n`. For the duration of
/// the call no other thread may write panel columns `[kb, kb + b)` of any
/// row, and no other call may write rows `lo..hi` (this one writes only
/// their trailing columns `>= tail`).
unsafe fn trailing_update_rows(
    base: par::SendPtr,
    n: usize,
    kb: usize,
    b: usize,
    tail: usize,
    lo: usize,
    hi: usize,
) {
    let p = base.get();
    // First tail-anchored row tile overlapping the worker's range.
    let mut ib = tail + (lo - tail) / TILE * TILE;
    while ib < hi {
        let ie = (ib + TILE).min(n);
        let rlo = ib.max(lo);
        let rhi = ie.min(hi);
        let mut jb = tail;
        while jb <= ib {
            let je = (jb + TILE).min(ie);
            for i in rlo..rhi {
                // SAFETY: the panel segment of row `i` is read-only during
                // the trailing phase; the trailing segment belongs to this
                // worker alone. The two slices are disjoint (kb + b == tail).
                let pan_i = unsafe { std::slice::from_raw_parts(p.add(i * n + kb), b) };
                let tr_i = unsafe { std::slice::from_raw_parts_mut(p.add(i * n + tail), n - tail) };
                let jhi = je.min(i);
                let mut j = jb;
                // Columns register-blocked four at a time: the four dot
                // products share the `pan_i` loads and run as independent
                // accumulator chains, so the update is throughput- rather
                // than FP-latency-bound. Each accumulator still sums in
                // ascending panel order, so the result is bit-identical
                // to the unblocked-in-j form.
                while j + 4 <= jhi {
                    // SAFETY: rows `j..j+4` precede `i`; only their panel
                    // columns are read, which no worker writes.
                    let (r0, r1, r2, r3) = unsafe {
                        (
                            std::slice::from_raw_parts(p.add(j * n + kb), b),
                            std::slice::from_raw_parts(p.add((j + 1) * n + kb), b),
                            std::slice::from_raw_parts(p.add((j + 2) * n + kb), b),
                            std::slice::from_raw_parts(p.add((j + 3) * n + kb), b),
                        )
                    };
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                    for (k, &pi) in pan_i.iter().enumerate() {
                        s0 += pi * r0[k];
                        s1 += pi * r1[k];
                        s2 += pi * r2[k];
                        s3 += pi * r3[k];
                    }
                    tr_i[j - tail] -= s0;
                    tr_i[j + 1 - tail] -= s1;
                    tr_i[j + 2 - tail] -= s2;
                    tr_i[j + 3 - tail] -= s3;
                    j += 4;
                }
                while j < jhi {
                    // SAFETY: as above — panel columns of an earlier row.
                    let row_j = unsafe { std::slice::from_raw_parts(p.add(j * n + kb), b) };
                    let mut s = 0.0;
                    for (pi, pj) in pan_i.iter().zip(row_j) {
                        s += pi * pj;
                    }
                    tr_i[j - tail] -= s;
                    j += 1;
                }
                if (jb..je).contains(&i) {
                    // Diagonal element: dot of the panel row with itself.
                    let mut s = 0.0;
                    for pi in pan_i {
                        s += pi * pi;
                    }
                    tr_i[i - tail] -= s;
                }
            }
            jb += TILE;
        }
        ib += TILE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let ch = Cholesky::new(&spd3()).unwrap();
        let l = ch.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let llt = ch.l().mat_mul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_mat_identity_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn log_det_matches_known() {
        // det = (2*1*3)^2 = 36.
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-deficient Gram matrix: duplicate observation rows.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::new_jittered(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        // Solution should still be finite.
        let x = ch.solve_vec(&[1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn jitter_gives_up_on_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 10.0], &[10.0, 0.0]]);
        assert!(matches!(
            Cholesky::new_jittered(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn append_matches_full_factorization() {
        let a = spd3();
        // Factor the leading 2x2 block, then append the third row/col.
        let block = Matrix::from_fn(2, 2, |i, j| a[(i, j)]);
        let mut ch = Cholesky::new(&block).unwrap();
        ch.append(&[a[(0, 2)], a[(1, 2)]], a[(2, 2)]).unwrap();
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().approx_eq(full.l(), 1e-10));
        assert!((ch.log_det() - full.log_det()).abs() < 1e-10);
        // Solves agree too.
        let b = [1.0, -2.0, 0.5];
        let x1 = ch.solve_vec(&b);
        let x2 = full.solve_vec(&b);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn append_rejects_indefinite_border() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let mut ch = Cholesky::new(&a).unwrap();
        // Bordering with c = 2, d = 1: Schur complement 1 - 4 < 0.
        assert!(matches!(
            ch.append(&[2.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Factor unchanged after a failed append.
        assert_eq!(ch.dim(), 1);
    }

    #[test]
    fn append_shape_checked() {
        let mut ch = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            ch.append(&[1.0], 5.0),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn repeated_appends_build_large_factor() {
        // Build a 6x6 SPD matrix by appending one bordered row at a time.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-0.5 * d * d).exp() + if i == j { 0.1 } else { 0.0 }
        });
        let mut ch = Cholesky::new(&Matrix::from_rows(&[&[a[(0, 0)]]])).unwrap();
        for k in 1..n {
            let col: Vec<f64> = (0..k).map(|i| a[(i, k)]).collect();
            ch.append(&col, a[(k, k)]).unwrap();
        }
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().approx_eq(full.l(), 1e-9));
    }

    /// A well-conditioned SPD matrix shaped like a GP kernel Gram matrix.
    fn kernel_like(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64) / n as f64;
            (-8.0 * d * d).exp() + if i == j { 0.05 } else { 0.0 }
        })
    }

    #[test]
    fn blocked_matches_unblocked() {
        // Span the dispatch threshold and non-multiple-of-block sizes.
        for n in [5, 47, 96, 131] {
            let a = kernel_like(n);
            let blocked = Cholesky::new_blocked(&a).unwrap();
            let scalar = Cholesky::new_unblocked(&a).unwrap();
            assert!(
                blocked.l().approx_eq(scalar.l(), 1e-11),
                "n={n}: blocked and scalar factors diverge"
            );
            // And the dispatching front door reconstructs A.
            let ch = Cholesky::new(&a).unwrap();
            let llt = ch.l().mat_mul(&ch.l().transpose()).unwrap();
            assert!(llt.approx_eq(&a, 1e-9), "n={n}: L Lᵀ != A");
        }
    }

    #[test]
    fn blocked_rejects_indefinite() {
        let mut a = kernel_like(120);
        a[(60, 60)] = -5.0;
        assert!(matches!(
            Cholesky::new_blocked(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            Cholesky::new_blocked(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Cholesky::new_unblocked(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_lower_multi_matches_columnwise() {
        let n = 70;
        let a = kernel_like(n);
        let ch = Cholesky::new(&a).unwrap();
        // 130 columns spans two column chunks plus a ragged tail.
        let m = 130;
        let mut b = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let cols: Vec<Vec<f64>> = (0..m).map(|j| b.col(j)).collect();
        ch.solve_lower_multi(&mut b).unwrap();
        for (j, col) in cols.iter().enumerate() {
            let y = ch.solve_lower(col);
            for i in 0..n {
                // Bit-identical, not merely close.
                assert_eq!(b[(i, j)], y[i], "element ({i}, {j})");
            }
        }
        // Shape mismatch is rejected.
        let mut bad = Matrix::zeros(n + 1, 2);
        assert!(matches!(
            ch.solve_lower_multi(&mut bad),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn inv_diag_matches_inverse() {
        for n in [1, 3, 24] {
            let a = kernel_like(n);
            let ch = Cholesky::new(&a).unwrap();
            let fast = ch.inv_diag();
            let full = ch.inverse().diag();
            for (f, g) in fast.iter().zip(&full) {
                assert!((f - g).abs() <= 1e-10 * g.abs().max(1.0), "{f} vs {g}");
            }
        }
    }

    #[test]
    fn rank_one_update_matches_fresh_factorization() {
        for n in [1, 3, 24, 70] {
            let a = kernel_like(n);
            let v: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + 3) % 11) as f64 / 11.0 - 0.4)
                .collect();
            let mut ch = Cholesky::new(&a).unwrap();
            ch.rank_one_update(&v).unwrap();
            let mut updated = a.clone();
            for i in 0..n {
                for j in 0..n {
                    updated[(i, j)] += v[i] * v[j];
                }
            }
            let fresh = Cholesky::new(&updated).unwrap();
            assert!(
                ch.l().approx_eq(fresh.l(), 1e-9),
                "n={n}: rank-one update diverges from fresh factorization"
            );
        }
    }

    #[test]
    fn rank_one_update_with_zero_vector_is_identity() {
        let a = kernel_like(12);
        let mut ch = Cholesky::new(&a).unwrap();
        let before = ch.l().clone();
        ch.rank_one_update(&[0.0; 12]).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(ch.l()[(i, j)], before[(i, j)]);
            }
        }
    }

    #[test]
    fn rank_one_update_rejects_bad_input() {
        let mut ch = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            ch.rank_one_update(&[1.0]),
            Err(LinalgError::ShapeMismatch(_))
        ));
        let before = ch.l().clone();
        assert!(matches!(
            ch.rank_one_update(&[f64::NAN, 0.0, 0.0]),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Factor unchanged after a failed update.
        assert!(ch.l().approx_eq(&before, 0.0));
    }

    #[test]
    fn triangular_solves_compose() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [5.0, -1.0, 0.5];
        let y = ch.solve_lower(&b);
        // L y == b
        let back = ch.l().mat_vec(&y);
        for (g, w) in back.iter().zip(&b) {
            assert!((g - w).abs() < 1e-10);
        }
        let x = ch.solve_upper(&y);
        let back2 = ch.l().transpose().mat_vec(&x);
        for (g, w) in back2.iter().zip(&y) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
