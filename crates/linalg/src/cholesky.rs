//! Cholesky factorization with automatic jitter escalation.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
///
/// Gaussian-process fitting repeatedly factorizes kernel matrices that are
/// positive definite in exact arithmetic but can lose definiteness to
/// rounding when observations nearly coincide (common in tuning searches
/// where the acquisition revisits a neighbourhood). [`Cholesky::new_jittered`]
/// therefore retries with an escalating diagonal "jitter", the standard GP
/// stabilisation; the jitter actually applied is recorded in
/// [`Cholesky::jitter`].
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factorize `a` without any jitter. Fails when `a` is not (numerically)
    /// positive definite.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_jitter(a, 0.0)
    }

    /// Factorize `a + jitter * I`, retrying with jitter escalated by 10x up
    /// to `1e-4 * mean(diag)` when the factorization fails.
    ///
    /// This mirrors the behaviour of mainstream GP libraries (GPy, GPyTorch,
    /// GPTune's underlying models). Starts from `initial` (use `1e-10` of the
    /// mean diagonal as a sensible default via [`Cholesky::new_jittered`]).
    pub fn new_escalating(a: &Matrix, initial: f64, max_jitter: f64) -> Result<Self> {
        let mut jitter = initial;
        loop {
            match Self::with_jitter(a, jitter) {
                Ok(c) => return Ok(c),
                Err(_) if jitter == 0.0 => jitter = max_jitter * 1e-8,
                Err(_) if jitter < max_jitter => jitter = (jitter * 10.0).min(max_jitter),
                Err(_) => {
                    return Err(LinalgError::NotPositiveDefinite {
                        last_jitter: jitter,
                    })
                }
            }
        }
    }

    /// Factorize with the default escalation policy: start at zero jitter,
    /// escalate to at most `1e-4 * mean(|diag|)`.
    pub fn new_jittered(a: &Matrix) -> Result<Self> {
        let n = a.rows().max(1);
        let mean_diag = a.diag().iter().map(|d| d.abs()).sum::<f64>() / n as f64;
        let max_jitter = (mean_diag * 1e-4).max(1e-12);
        Self::new_escalating(a, 0.0, max_jitter)
    }

    fn with_jitter(a: &Matrix, jitter: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            last_jitter: jitter,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was actually added to achieve definiteness.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solve `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solve `A X = B` column by column.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_mat: rhs has {} rows, factor is {}x{}",
                b.rows(),
                self.dim(),
                self.dim()
            )));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log det(A) = 2 Σ log L_ii` — needed for the GP log marginal
    /// likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse `A⁻¹` (used sparingly; prefer the solve methods).
    ///
    /// Infallible by construction: each unit vector is solved directly, so
    /// no shape check (and no panic path) is involved.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let x = self.solve_vec(&e);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Grow the factorization by one row/column in `O(n²)`.
    ///
    /// Given the bordered matrix `[[A, c], [cᵀ, d]]` where `A = L Lᵀ` is the
    /// already-factorized block, the new factor row is `[wᵀ, √(d − wᵀw)]`
    /// with `L w = c`. This is how a Gaussian process absorbs one new
    /// observation per BO iteration without re-paying the `O(n³)`
    /// factorization.
    ///
    /// Fails with [`LinalgError::NotPositiveDefinite`] when the bordered
    /// matrix is not positive definite (`d ≤ wᵀw`); callers should then
    /// fall back to a fresh jittered factorization.
    pub fn append(&mut self, col: &[f64], diag: f64) -> Result<()> {
        let n = self.dim();
        if col.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "append: column length {} != {n}",
                col.len()
            )));
        }
        let w = self.solve_lower(col);
        let wtw: f64 = w.iter().map(|&v| v * v).sum();
        let pivot2 = diag + self.jitter - wtw;
        if pivot2 <= 0.0 || !pivot2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                last_jitter: self.jitter,
            });
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                grown[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, &wj) in w.iter().enumerate() {
            grown[(n, j)] = wj;
        }
        grown[(n, n)] = pivot2.sqrt();
        self.l = grown;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let ch = Cholesky::new(&spd3()).unwrap();
        let l = ch.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let llt = ch.l().mat_mul(&ch.l().transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve_vec(&b);
        let back = a.mat_vec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_mat_identity_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn log_det_matches_known() {
        // det = (2*1*3)^2 = 36.
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-deficient Gram matrix: duplicate observation rows.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::new_jittered(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        // Solution should still be finite.
        let x = ch.solve_vec(&[1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn jitter_gives_up_on_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 10.0], &[10.0, 0.0]]);
        assert!(matches!(
            Cholesky::new_jittered(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn append_matches_full_factorization() {
        let a = spd3();
        // Factor the leading 2x2 block, then append the third row/col.
        let block = Matrix::from_fn(2, 2, |i, j| a[(i, j)]);
        let mut ch = Cholesky::new(&block).unwrap();
        ch.append(&[a[(0, 2)], a[(1, 2)]], a[(2, 2)]).unwrap();
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().approx_eq(full.l(), 1e-10));
        assert!((ch.log_det() - full.log_det()).abs() < 1e-10);
        // Solves agree too.
        let b = [1.0, -2.0, 0.5];
        let x1 = ch.solve_vec(&b);
        let x2 = full.solve_vec(&b);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn append_rejects_indefinite_border() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let mut ch = Cholesky::new(&a).unwrap();
        // Bordering with c = 2, d = 1: Schur complement 1 - 4 < 0.
        assert!(matches!(
            ch.append(&[2.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Factor unchanged after a failed append.
        assert_eq!(ch.dim(), 1);
    }

    #[test]
    fn append_shape_checked() {
        let mut ch = Cholesky::new(&spd3()).unwrap();
        assert!(matches!(
            ch.append(&[1.0], 5.0),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn repeated_appends_build_large_factor() {
        // Build a 6x6 SPD matrix by appending one bordered row at a time.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-0.5 * d * d).exp() + if i == j { 0.1 } else { 0.0 }
        });
        let mut ch = Cholesky::new(&Matrix::from_rows(&[&[a[(0, 0)]]])).unwrap();
        for k in 1..n {
            let col: Vec<f64> = (0..k).map(|i| a[(i, k)]).collect();
            ch.append(&col, a[(k, k)]).unwrap();
        }
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().approx_eq(full.l(), 1e-9));
    }

    #[test]
    fn triangular_solves_compose() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [5.0, -1.0, 0.5];
        let y = ch.solve_lower(&b);
        // L y == b
        let back = ch.l().mat_vec(&y);
        for (g, w) in back.iter().zip(&b) {
            assert!((g - w).abs() < 1e-10);
        }
        let x = ch.solve_upper(&y);
        let back2 = ch.l().transpose().mat_vec(&x);
        for (g, w) in back2.iter().zip(&y) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
