//! Free-function helpers on `&[f64]` vectors.
//!
//! Kept as plain functions over slices (rather than a newtype) so callers can
//! use ordinary `Vec<f64>` throughout; this mirrors how GP and statistics
//! code naturally passes observation vectors around.

/// Dot product. Panics on length mismatch (programmer error, not data error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Weighted squared distance `Σ ((a_i - b_i) / w_i)²` — the anisotropic
/// (ARD) distance used by per-dimension length-scale kernels.
#[inline]
pub fn weighted_sq_dist(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "weighted_sq_dist: length mismatch");
    assert_eq!(a.len(), w.len(), "weighted_sq_dist: weight length mismatch");
    a.iter()
        .zip(b)
        .zip(w)
        .map(|((&x, &y), &wi)| {
            let d = (x - y) / wi;
            d * d
        })
        .sum()
}

/// `a + s * b`, elementwise, into a new vector.
pub fn axpy(s: f64, b: &[f64], a: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + s * y).collect()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance; 0.0 for fewer than two elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Minimum value and its index; `None` for an empty slice or all-NaN input.
pub fn argmin(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if v >= b => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Maximum value and its index; `None` for an empty slice or all-NaN input.
pub fn argmax(a: &[f64]) -> Option<(usize, f64)> {
    argmin(&a.iter().map(|&v| -v).collect::<Vec<_>>()).map(|(i, v)| (i, -v))
}

/// Indices `0..a.len()` sorted by `a` descending (NaN sorts last).
pub fn rank_desc(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| {
        a[j].partial_cmp(&a[i])
            .unwrap_or_else(|| a[i].is_nan().cmp(&a[j].is_nan()))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(weighted_sq_dist(&[0.0, 0.0], &[2.0, 4.0], &[2.0, 4.0]), 2.0);
    }

    #[test]
    fn axpy_basic() {
        assert_eq!(axpy(2.0, &[1.0, 1.0], &[0.0, 3.0]), vec![2.0, 5.0]);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn argminmax() {
        let xs = [3.0, 1.0, 4.0, 1.5];
        assert_eq!(argmin(&xs), Some((1, 1.0)));
        assert_eq!(argmax(&xs), Some((2, 4.0)));
        assert_eq!(argmin(&[]), None);
        // NaN is skipped, not propagated.
        assert_eq!(argmin(&[f64::NAN, 2.0]), Some((1, 2.0)));
    }

    #[test]
    fn ranking() {
        let xs = [0.1, 0.9, 0.5];
        assert_eq!(rank_desc(&xs), vec![1, 2, 0]);
    }
}
