//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix, Result};

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// Used for general square solves where the matrix is not symmetric positive
/// definite — e.g. the normal-equation fallbacks in `cets-stats` and
/// miscellaneous model calibration in the TDDFT simulator.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part of `L` (unit diagonal implied)
    /// and upper part `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index that ended up in
    /// position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1.0 or -1.0), for determinants.
    sign: f64,
}

impl Lu {
    /// Factorize a square matrix. Fails with [`LinalgError::Singular`] when a
    /// pivot is smaller than `1e-12 * max|A|`.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = a.max_abs() * 1e-12;

        for k in 0..n {
            // Pivot: largest |value| in column k at or below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tol || !pivot_val.is_finite() {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve_vec: length mismatch");
        // Apply permutation, then forward substitution on unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Backward substitution on U.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum / self.lu[(i, i)];
        }
        y
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        self.sign * (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>()
    }

    /// The inverse `A⁻¹` via `n` solves against identity columns.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve_vec(&e);
            e[j] = 0.0;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&[8.0, -11.0, -3.0]);
        // Known solution: x = 2, y = 3, z = -1.
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // Requires a row swap: first pivot is 0.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.mat_mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn permutation_heavy_system() {
        // Lower-triangular-with-zeros pattern that forces pivoting each step.
        let a = Matrix::from_rows(&[&[0.0, 0.0, 1.0], &[0.0, 2.0, 0.0], &[3.0, 0.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&[1.0, 2.0, 3.0]);
        let back = a.mat_vec(&x);
        for (g, w) in back.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((g - w).abs() < 1e-10);
        }
    }
}
