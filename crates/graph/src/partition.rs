//! DAG partitioning into merged tuning searches.

use crate::{GraphError, InfluenceGraph, Result, UnionFind};
use serde::{Deserialize, Serialize};

/// One merged tuning search produced by the partitioner: the routines it
/// covers and the parameters it will tune.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchGroup {
    /// Member routine indices (ascending).
    pub routines: Vec<usize>,
    /// Parameter indices to tune in this search (ascending by importance
    /// after capping, insertion order before).
    pub params: Vec<usize>,
    /// Parameters excluded by the dimension cap; tuned at defaults instead.
    pub dropped: Vec<usize>,
}

impl SearchGroup {
    /// Dimensionality of this search.
    pub fn dim(&self) -> usize {
        self.params.len()
    }
}

/// The outcome of partitioning an [`InfluenceGraph`] at a cut-off.
///
/// `precedence` lists routines the caller declared upstream (tuned first,
/// then frozen); `groups` are the remaining merged searches, independent of
/// each other and therefore runnable in parallel — exactly the paper's
/// "optimized breakdown of independent and merged searches".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    groups: Vec<SearchGroup>,
    precedence: Vec<usize>,
    cutoff: f64,
}

impl Partition {
    /// The merged search groups (excluding precedence routines).
    pub fn groups(&self) -> &[SearchGroup] {
        &self.groups
    }

    /// Mutable access for plan post-processing (shared-param reassignment).
    pub fn groups_mut(&mut self) -> &mut [SearchGroup] {
        &mut self.groups
    }

    /// Routines declared upstream.
    pub fn precedence(&self) -> &[usize] {
        &self.precedence
    }

    /// The cut-off the partition was computed with.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The group containing routine `r`, if any.
    pub fn group_of(&self, r: usize) -> Option<&SearchGroup> {
        self.groups.iter().find(|g| g.routines.contains(&r))
    }

    /// Enforce the methodology's per-search dimension cap: any group with
    /// more than `max_dims` parameters keeps only the `max_dims` most
    /// important ones (by `importance[p]`, descending; ties broken by lower
    /// parameter index for determinism) and records the rest in
    /// [`SearchGroup::dropped`].
    ///
    /// The paper uses `max_dims = 10`, "grounded in the feasibility of
    /// conducting outstanding BO searches within a manageable number of
    /// iterations".
    pub fn cap_dimensions(&mut self, max_dims: usize, importance: &[f64]) {
        for g in &mut self.groups {
            if g.params.len() <= max_dims {
                continue;
            }
            let mut ranked: Vec<usize> = g.params.clone();
            ranked.sort_by(|&a, &b| {
                importance[b]
                    .partial_cmp(&importance[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let kept: Vec<usize> = ranked[..max_dims].to_vec();
            let mut dropped: Vec<usize> = ranked[max_dims..].to_vec();
            dropped.sort_unstable();
            let mut kept_sorted = kept;
            kept_sorted.sort_unstable();
            g.params = kept_sorted;
            g.dropped.extend(dropped);
            g.dropped.sort_unstable();
            g.dropped.dedup();
        }
    }

    /// Move parameter `param` so it is tuned only in the group containing
    /// routine `keep_routine`, removing it from every other group (it is
    /// *not* added to `dropped`: the parameter is still tuned, just
    /// elsewhere). Implements methodology step 5 for shared kernels.
    pub fn assign_param_to(&mut self, param: usize, keep_routine: usize) {
        for g in &mut self.groups {
            let keeps = g.routines.contains(&keep_routine);
            let has = g.params.contains(&param);
            if keeps && !has {
                g.params.push(param);
                g.params.sort_unstable();
            } else if !keeps && has {
                g.params.retain(|&p| p != param);
            }
        }
    }
}

impl InfluenceGraph {
    /// Partition routines into merged searches at `cutoff`.
    ///
    /// * Routines in `precedence` (names) are excluded from merging — their
    ///   cross-edges express tuning *order*, not joint search (paper: the
    ///   batch size is fixed first against the Slater-determinant runtime,
    ///   then the GPU groups are tuned).
    /// * Every remaining pair of routines connected by a cross-edge with
    ///   `score >= cutoff` is merged (transitively, via union–find).
    /// * Each group's parameter set is the union of its member routines'
    ///   owned parameters.
    pub fn partition(&self, cutoff: f64, precedence: &[&str]) -> Result<Partition> {
        self.partition_with(cutoff, precedence, &[])
    }

    /// Like [`InfluenceGraph::partition`] but with `shared` parameters
    /// (names) whose cross-edges do **not** force merges: a shared
    /// parameter is used by several routines by *construction* (the
    /// paper's cuZcopy kernel called from both Group 1 and Group 3), so
    /// its cross-influence is resolved by assigning it to its
    /// highest-impact routine (methodology step 5 /
    /// [`Partition::assign_param_to`]) rather than by merging the
    /// routines.
    pub fn partition_with(
        &self,
        cutoff: f64,
        precedence: &[&str],
        shared: &[&str],
    ) -> Result<Partition> {
        if !(cutoff.is_finite() && cutoff >= 0.0) {
            return Err(GraphError::InvalidCutoff(cutoff));
        }
        let nr = self.routines().len();
        let mut prec = Vec::with_capacity(precedence.len());
        for name in precedence {
            prec.push(self.routine_index(name)?);
        }
        let mut shared_idx = Vec::with_capacity(shared.len());
        for name in shared {
            shared_idx.push(self.param_index(name)?);
        }

        let mut uf = UnionFind::new(nr);
        for e in self.cross_edges(cutoff)? {
            // cross_edges only yields owned params; an ownerless edge cannot
            // merge groups, so skip it rather than panicking.
            let Some(from) = e.from else { continue };
            if prec.contains(&from) || prec.contains(&e.to) || shared_idx.contains(&e.param) {
                continue;
            }
            uf.union(from, e.to);
        }

        let groups = uf
            .groups()
            .into_iter()
            .filter(|g| !(g.len() == 1 && prec.contains(&g[0])))
            .map(|routines| {
                let mut params: Vec<usize> =
                    routines.iter().flat_map(|&r| self.params_of(r)).collect();
                params.sort_unstable();
                SearchGroup {
                    routines,
                    params,
                    dropped: vec![],
                }
            })
            .collect();

        Ok(Partition {
            groups,
            precedence: prec,
            cutoff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four routines, one param each, G4's param also hits G3 at 0.46.
    fn case3() -> InfluenceGraph {
        let mut g = InfluenceGraph::new(
            vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()],
            vec!["x0".into(), "x5".into(), "x10".into(), "x15".into()],
        );
        for (p, r) in [("x0", "G1"), ("x5", "G2"), ("x10", "G3"), ("x15", "G4")] {
            g.set_owner(p, r).unwrap();
        }
        g.set_scores("x0", &[0.9, 0.001, 0.002, 0.001]).unwrap();
        g.set_scores("x5", &[0.0, 0.8, 0.004, 0.003]).unwrap();
        g.set_scores("x10", &[0.001, 0.0, 0.67, 0.002]).unwrap();
        g.set_scores("x15", &[0.002, 0.001, 0.46, 0.75]).unwrap();
        g
    }

    #[test]
    fn case3_merges_g3_g4() {
        let part = case3().partition(0.25, &[]).unwrap();
        let dims: Vec<usize> = part.groups().iter().map(|g| g.routines.len()).collect();
        assert_eq!(part.groups().len(), 3);
        assert_eq!(dims, vec![1, 1, 2]);
        // The merged group covers G3 (idx 2) and G4 (idx 3) and both params.
        let merged = part.group_of(2).unwrap();
        assert_eq!(merged.routines, vec![2, 3]);
        assert_eq!(merged.params, vec![2, 3]);
    }

    #[test]
    fn weak_interdependence_stays_independent() {
        // Case-1-like: cross score below cutoff.
        let mut g = case3();
        g.set_scores("x15", &[0.002, 0.001, 0.02, 0.75]).unwrap();
        let part = g.partition(0.25, &[]).unwrap();
        assert_eq!(part.groups().len(), 4);
        assert!(part.groups().iter().all(|gr| gr.routines.len() == 1));
    }

    #[test]
    fn precedence_blocks_merge() {
        // nbatches-like: an 'Iter' routine's param influences G1..G3
        // strongly, but Iter is declared upstream, so no merging happens.
        let mut g = InfluenceGraph::new(
            vec!["Iter".into(), "G1".into(), "G2".into()],
            vec!["nbatches".into(), "a".into(), "b".into()],
        );
        g.set_owner("nbatches", "Iter").unwrap();
        g.set_owner("a", "G1").unwrap();
        g.set_owner("b", "G2").unwrap();
        g.set_scores("nbatches", &[0.5, 3.5, 3.2]).unwrap();
        g.set_scores("a", &[0.0, 0.6, 0.0]).unwrap();
        g.set_scores("b", &[0.0, 0.0, 0.7]).unwrap();

        let merged = g.partition(0.1, &[]).unwrap();
        assert_eq!(merged.groups().len(), 1, "without precedence all merge");

        let part = g.partition(0.1, &["Iter"]).unwrap();
        assert_eq!(part.precedence(), &[0]);
        assert_eq!(part.groups().len(), 2);
        assert!(part.group_of(0).is_none(), "Iter not in any group");
    }

    #[test]
    fn cap_dimensions_drops_least_important() {
        let mut g = InfluenceGraph::new(
            vec!["A".into(), "B".into()],
            (0..6).map(|i| format!("p{i}")).collect(),
        );
        for i in 0..3 {
            g.set_owner(&format!("p{i}"), "A").unwrap();
        }
        for i in 3..6 {
            g.set_owner(&format!("p{i}"), "B").unwrap();
        }
        // p0 weakly influences B -> merge A+B into one 6-param group.
        g.set_scores("p0", &[0.9, 0.3]).unwrap();
        g.set_scores("p1", &[0.8, 0.0]).unwrap();
        g.set_scores("p2", &[0.1, 0.0]).unwrap();
        g.set_scores("p3", &[0.0, 0.7]).unwrap();
        g.set_scores("p4", &[0.0, 0.05]).unwrap();
        g.set_scores("p5", &[0.0, 0.6]).unwrap();
        let mut part = g.partition(0.25, &[]).unwrap();
        assert_eq!(part.groups().len(), 1);
        let importance: Vec<f64> = (0..6).map(|p| g.importance(p)).collect();
        part.cap_dimensions(4, &importance);
        let grp = &part.groups()[0];
        assert_eq!(grp.dim(), 4);
        // p2 (0.1) and p4 (0.05) are the least important.
        assert_eq!(grp.dropped, vec![2, 4]);
        assert_eq!(grp.params, vec![0, 1, 3, 5]);
    }

    #[test]
    fn cap_noop_when_under_limit() {
        let mut part = case3().partition(0.25, &[]).unwrap();
        let imp = vec![1.0; 4];
        part.cap_dimensions(10, &imp);
        assert!(part.groups().iter().all(|g| g.dropped.is_empty()));
    }

    #[test]
    fn assign_param_moves_between_groups() {
        // Shared-kernel scenario: param 0 owned by G1 but should be tuned
        // in G3's group (paper's cuZcopy case).
        let mut part = case3().partition(0.25, &[]).unwrap();
        part.assign_param_to(0, 2); // move x0 into the group holding G3
        let g1_group = part.group_of(0).unwrap();
        assert!(!g1_group.params.contains(&0));
        let g3_group = part.group_of(2).unwrap();
        assert!(g3_group.params.contains(&0));
        // Idempotent.
        let before = part.groups().to_vec();
        part.assign_param_to(0, 2);
        assert_eq!(before, part.groups());
    }

    #[test]
    fn shared_param_edges_do_not_merge() {
        // x15's cross-edge would merge G3+G4, but declaring it shared
        // suppresses the merge; assign_param_to then moves it explicitly.
        let g = case3();
        let part = g.partition_with(0.25, &[], &["x15"]).unwrap();
        assert_eq!(part.groups().len(), 4, "shared param must not merge");
        let mut part = part;
        part.assign_param_to(3, 2); // x15 -> the group holding G3
        assert!(part.group_of(2).unwrap().params.contains(&3));
        assert!(!part.group_of(3).unwrap().params.contains(&3));
    }

    #[test]
    fn unknown_shared_param_rejected() {
        assert!(matches!(
            case3().partition_with(0.25, &[], &["nope"]),
            Err(GraphError::UnknownParam(_))
        ));
    }

    #[test]
    fn invalid_cutoff() {
        assert!(case3().partition(f64::INFINITY, &[]).is_err());
        assert!(case3().partition(-1.0, &[]).is_err());
    }

    #[test]
    fn unknown_precedence_routine() {
        assert!(matches!(
            case3().partition(0.25, &["nope"]),
            Err(GraphError::UnknownRoutine(_))
        ));
    }
}
