//! Disjoint-set forest used by the partitioner.

/// Union–find with path halving and union by size.
///
/// Merging tuning searches is exactly a connected-components computation on
/// the pruned influence graph; union–find keeps it `O(α(n))` per operation,
/// which matters not for the paper's four routines but for the library's
/// stated goal of scaling to applications with many kernels.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, ..., {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group elements by component, each group sorted ascending; groups
    /// ordered by their smallest element. Deterministic output for stable
    /// search plans.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        let mut keyed: Vec<(usize, usize)> = (0..n).map(|i| (self.find(i), i)).collect();
        keyed.sort();
        for (root, i) in keyed {
            by_root.entry(root).or_default().push(i);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.groups(), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert!(uf.connected(0, 2));
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.groups(), vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        uf.union(3, 4);
        assert_eq!(uf.groups(), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn all_merged() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.union(2, 0);
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
