//! The influence graph: routines, parameters, sensitivity scores.

use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// One pruned influence edge: parameter `param` (owned by routine `from`, if
/// any) influences routine `to` with strength `score`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Parameter index.
    pub param: usize,
    /// Owning routine index (`None` for global parameters).
    pub from: Option<usize>,
    /// Influenced routine index.
    pub to: usize,
    /// Influence score (mean relative runtime variability, e.g. `0.25` for
    /// the paper's 25%).
    pub score: f64,
}

/// Routine/parameter influence scores, the output of the per-routine
/// sensitivity analysis (paper Tables II, V, VI).
///
/// `score(p, r)` is the mean relative variability that individually varying
/// parameter `p` induces in routine `r`'s runtime. Each parameter may have
/// an *owner* routine — the routine whose code it nominally tunes.
/// Parameters influencing non-owner routines above the cut-off are the
/// paper's interdependence signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfluenceGraph {
    routines: Vec<String>,
    params: Vec<String>,
    /// `owner[p]` = owning routine of parameter `p`.
    owner: Vec<Option<usize>>,
    /// `scores[p][r]` = influence of parameter `p` on routine `r`.
    scores: Vec<Vec<f64>>,
}

impl InfluenceGraph {
    /// Create a graph with the given routine and parameter names; all scores
    /// zero, no owners.
    pub fn new(routines: Vec<String>, params: Vec<String>) -> Self {
        let nr = routines.len();
        let np = params.len();
        InfluenceGraph {
            routines,
            params,
            owner: vec![None; np],
            scores: vec![vec![0.0; nr]; np],
        }
    }

    /// Routine names.
    pub fn routines(&self) -> &[String] {
        &self.routines
    }

    /// Parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Index of routine `name`.
    pub fn routine_index(&self, name: &str) -> Result<usize> {
        self.routines
            .iter()
            .position(|r| r == name)
            .ok_or_else(|| GraphError::UnknownRoutine(name.to_string()))
    }

    /// Index of parameter `name`.
    pub fn param_index(&self, name: &str) -> Result<usize> {
        self.params
            .iter()
            .position(|p| p == name)
            .ok_or_else(|| GraphError::UnknownParam(name.to_string()))
    }

    /// Declare that routine `routine` owns parameter `param`.
    pub fn set_owner(&mut self, param: &str, routine: &str) -> Result<()> {
        let p = self.param_index(param)?;
        let r = self.routine_index(routine)?;
        self.owner[p] = Some(r);
        Ok(())
    }

    /// The owner of parameter `param`, if declared.
    pub fn owner_of(&self, param: &str) -> Result<Option<usize>> {
        Ok(self.owner[self.param_index(param)?])
    }

    /// Record the influence score of `param` on `routine`.
    pub fn set_score(&mut self, param: &str, routine: &str, score: f64) -> Result<()> {
        let p = self.param_index(param)?;
        let r = self.routine_index(routine)?;
        self.scores[p][r] = score;
        Ok(())
    }

    /// Bulk-set an entire score row for `param` (one score per routine).
    pub fn set_scores(&mut self, param: &str, scores: &[f64]) -> Result<()> {
        let p = self.param_index(param)?;
        assert_eq!(
            scores.len(),
            self.routines.len(),
            "set_scores: one score per routine required"
        );
        self.scores[p].copy_from_slice(scores);
        Ok(())
    }

    /// Influence score of `param` on `routine`.
    pub fn score(&self, param: &str, routine: &str) -> Result<f64> {
        Ok(self.scores[self.param_index(param)?][self.routine_index(routine)?])
    }

    /// Score by indices (no name lookups, for hot loops).
    pub fn score_at(&self, param: usize, routine: usize) -> f64 {
        self.scores[param][routine]
    }

    /// All edges with `score >= cutoff`. Includes own-routine edges (param
    /// influencing its owner) — callers distinguish via
    /// [`Edge::from`] vs [`Edge::to`].
    pub fn edges(&self, cutoff: f64) -> Result<Vec<Edge>> {
        if !(cutoff.is_finite() && cutoff >= 0.0) {
            return Err(GraphError::InvalidCutoff(cutoff));
        }
        let mut out = Vec::new();
        for p in 0..self.params.len() {
            for r in 0..self.routines.len() {
                let s = self.scores[p][r];
                if s >= cutoff && s > 0.0 {
                    out.push(Edge {
                        param: p,
                        from: self.owner[p],
                        to: r,
                        score: s,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Cross-edges only: influences on a routine other than the owner (the
    /// paper's interdependence signal). Ownerless (global) parameters have
    /// no cross-edges — they are handled as precedence routines instead.
    pub fn cross_edges(&self, cutoff: f64) -> Result<Vec<Edge>> {
        Ok(self
            .edges(cutoff)?
            .into_iter()
            .filter(|e| e.from.is_some_and(|f| f != e.to))
            .collect())
    }

    /// The strongest influence of `param` over all routines, with the
    /// argmax routine index. Used for shared-parameter assignment (paper
    /// step 5: prioritize the kernel with highest impact).
    pub fn strongest_routine(&self, param: &str) -> Result<(usize, f64)> {
        let p = self.param_index(param)?;
        let (mut best_r, mut best_s) = (0usize, f64::NEG_INFINITY);
        for (r, &s) in self.scores[p].iter().enumerate() {
            if s > best_s {
                best_s = s;
                best_r = r;
            }
        }
        Ok((best_r, best_s))
    }

    /// Parameters owned by routine `r` (indices).
    pub fn params_of(&self, r: usize) -> Vec<usize> {
        (0..self.params.len())
            .filter(|&p| self.owner[p] == Some(r))
            .collect()
    }

    /// Global importance of a parameter: its score on its owner, or its max
    /// score when ownerless. Used by the dimension cap to rank parameters.
    pub fn importance(&self, p: usize) -> f64 {
        match self.owner[p] {
            Some(r) => self.scores[p][r],
            None => self.scores[p].iter().cloned().fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_case3() -> InfluenceGraph {
        // Mirrors paper Table II, Case 3: Group 4 vars influence Group 3
        // at ~46-85%, Group 3 vars influence themselves at ~67-87%.
        let mut g = InfluenceGraph::new(
            vec!["G1".into(), "G2".into(), "G3".into(), "G4".into()],
            vec!["x0".into(), "x5".into(), "x10".into(), "x15".into()],
        );
        g.set_owner("x0", "G1").unwrap();
        g.set_owner("x5", "G2").unwrap();
        g.set_owner("x10", "G3").unwrap();
        g.set_owner("x15", "G4").unwrap();
        g.set_scores("x0", &[0.9, 0.001, 0.002, 0.001]).unwrap();
        g.set_scores("x5", &[0.0, 0.8, 0.004, 0.003]).unwrap();
        g.set_scores("x10", &[0.001, 0.0, 0.67, 0.002]).unwrap();
        g.set_scores("x15", &[0.002, 0.001, 0.46, 0.75]).unwrap();
        g
    }

    #[test]
    fn score_roundtrip() {
        let g = synthetic_case3();
        assert_eq!(g.score("x15", "G3").unwrap(), 0.46);
        assert!(g.score("nope", "G3").is_err());
        assert!(g.score("x15", "nope").is_err());
    }

    #[test]
    fn edges_respect_cutoff() {
        let g = synthetic_case3();
        let edges = g.edges(0.25).unwrap();
        // Four own-edges + one cross-edge (x15 -> G3).
        assert_eq!(edges.len(), 5);
        let cross = g.cross_edges(0.25).unwrap();
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].param, 3);
        assert_eq!(cross[0].to, 2);
    }

    #[test]
    fn higher_cutoff_removes_cross_edge() {
        let g = synthetic_case3();
        assert!(g.cross_edges(0.5).unwrap().is_empty());
    }

    #[test]
    fn invalid_cutoff_rejected() {
        let g = synthetic_case3();
        assert!(matches!(
            g.edges(f64::NAN),
            Err(GraphError::InvalidCutoff(_))
        ));
        assert!(matches!(g.edges(-0.1), Err(GraphError::InvalidCutoff(_))));
    }

    #[test]
    fn strongest_routine_for_shared_param() {
        let g = synthetic_case3();
        let (r, s) = g.strongest_routine("x15").unwrap();
        assert_eq!(r, 3); // G4 at 0.75
        assert_eq!(s, 0.75);
    }

    #[test]
    fn params_of_and_importance() {
        let g = synthetic_case3();
        assert_eq!(g.params_of(2), vec![2]); // G3 owns x10
        assert_eq!(g.importance(2), 0.67);
    }

    #[test]
    fn ownerless_param_importance_is_max() {
        let mut g = InfluenceGraph::new(vec!["A".into(), "B".into()], vec!["nb".into()]);
        g.set_scores("nb", &[3.2, 0.9]).unwrap();
        assert_eq!(g.importance(0), 3.2);
        assert_eq!(g.owner_of("nb").unwrap(), None);
        // No cross edges for ownerless params.
        assert!(g.cross_edges(0.1).unwrap().is_empty());
    }
}
