//! # cets-graph
//!
//! Influence-graph machinery for the CETS methodology: build a directed
//! graph whose vertices are *routines* and whose edges record how strongly a
//! *parameter* owned by one routine influences the runtime of another
//! routine (the sensitivity scores of `cets-stats`); prune weak edges with a
//! cut-off; partition the survivors into merged tuning searches.
//!
//! The paper (Section IV-C) frames this as "a partitioning problem on
//! Directed Acyclic Graphs, where vertices represent routines, and their
//! edges denote how their parameters affect the runtime variability of
//! routines". Routines connected by surviving cross-edges **must be explored
//! together** (merged into one joint search); everything else stays
//! independent. Two refinements from Section IV-D are implemented here:
//!
//! * **precedence routines** — a routine (e.g. the paper's *Iterations*
//!   pseudo-routine owning `nbatches`/`nstreams`, or the MPI grid) can be
//!   declared upstream: it is tuned *first* against its own objective and
//!   frozen, so its outgoing influence edges impose an ordering instead of a
//!   merge;
//! * **shared parameters** — a parameter used by several routines that must
//!   keep one value application-wide (the paper's `cuZcopy` kernel appearing
//!   in both Group 1 and Group 3) is assigned to the routine it influences
//!   most, and excluded from the others' searches.
//!
//! Finally [`Partition::cap_dimensions`] enforces the methodology's ≤10
//! dimensions per search, dropping the least-influential parameters.
//!
//! ```
//! use cets_graph::InfluenceGraph;
//!
//! let mut g = InfluenceGraph::new(
//!     vec!["G3".into(), "G4".into()],
//!     vec!["x10".into(), "x15".into()],
//! );
//! g.set_owner("x10", "G3").unwrap();
//! g.set_owner("x15", "G4").unwrap();
//! g.set_score("x10", "G3", 0.67).unwrap();
//! g.set_score("x15", "G3", 0.46).unwrap(); // cross-influence!
//! g.set_score("x15", "G4", 0.80).unwrap();
//!
//! let part = g.partition(0.25, &[]).unwrap();
//! assert_eq!(part.groups().len(), 1); // G3 and G4 merged
//! ```

mod dot;
mod graph;
mod partition;
mod unionfind;

pub use graph::{Edge, InfluenceGraph};
pub use partition::{Partition, SearchGroup};
pub use unionfind::UnionFind;

/// Errors from graph construction and partitioning.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Unknown routine name.
    UnknownRoutine(String),
    /// Unknown parameter name.
    UnknownParam(String),
    /// A parameter had no owning routine when one was required.
    NoOwner(String),
    /// An invalid cut-off (must be finite and >= 0).
    InvalidCutoff(f64),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownRoutine(n) => write!(f, "unknown routine: {n}"),
            GraphError::UnknownParam(n) => write!(f, "unknown parameter: {n}"),
            GraphError::NoOwner(n) => write!(f, "parameter {n} has no owning routine"),
            GraphError::InvalidCutoff(c) => write!(f, "invalid cut-off: {c}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
