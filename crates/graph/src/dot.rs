//! Graphviz DOT export for influence graphs and partitions (paper Figures
//! 2 and 5 are DAG diagrams of exactly this kind).

use crate::{InfluenceGraph, Partition, Result};
use std::fmt::Write as _;

impl InfluenceGraph {
    /// Render the pruned graph as Graphviz DOT: routines as boxes,
    /// parameters as ellipses, one edge per surviving influence, labelled
    /// with the score as a percentage. Cross-edges (interdependence) are
    /// drawn bold red; own-edges gray.
    pub fn to_dot(&self, cutoff: f64) -> Result<String> {
        let mut s = String::new();
        writeln!(s, "digraph influence {{").unwrap();
        writeln!(s, "  rankdir=LR;").unwrap();
        writeln!(s, "  label=\"cut-off = {:.0}%\";", cutoff * 100.0).unwrap();
        for (r, name) in self.routines().iter().enumerate() {
            writeln!(
                s,
                "  r{r} [shape=box, style=filled, fillcolor=lightblue, label=\"{name}\"];"
            )
            .unwrap();
        }
        let edges = self.edges(cutoff)?;
        let mut used_params: Vec<usize> = edges.iter().map(|e| e.param).collect();
        used_params.sort_unstable();
        used_params.dedup();
        for p in used_params {
            writeln!(s, "  p{p} [shape=ellipse, label=\"{}\"];", self.params()[p]).unwrap();
        }
        for e in &edges {
            let cross = e.from.is_some_and(|f| f != e.to);
            let style = if cross {
                "color=red, penwidth=2.0"
            } else {
                "color=gray"
            };
            writeln!(
                s,
                "  p{} -> r{} [label=\"{:.0}%\", {style}];",
                e.param,
                e.to,
                e.score * 100.0
            )
            .unwrap();
        }
        writeln!(s, "}}").unwrap();
        Ok(s)
    }
}

impl Partition {
    /// Render the partition as DOT clusters: one subgraph per merged search,
    /// plus a `precedence` cluster for upstream routines.
    pub fn to_dot(&self, graph: &InfluenceGraph) -> String {
        let mut s = String::new();
        writeln!(s, "digraph searches {{").unwrap();
        writeln!(s, "  compound=true;").unwrap();
        for (gi, grp) in self.groups().iter().enumerate() {
            writeln!(s, "  subgraph cluster_{gi} {{").unwrap();
            let names: Vec<&str> = grp
                .routines
                .iter()
                .map(|&r| graph.routines()[r].as_str())
                .collect();
            writeln!(
                s,
                "    label=\"search {gi}: {} ({} dims)\";",
                names.join("+"),
                grp.dim()
            )
            .unwrap();
            for &r in &grp.routines {
                writeln!(
                    s,
                    "    r{r} [shape=box, label=\"{}\"];",
                    graph.routines()[r]
                )
                .unwrap();
            }
            for &p in &grp.params {
                writeln!(
                    s,
                    "    gp{gi}_{p} [shape=ellipse, label=\"{}\"];",
                    graph.params()[p]
                )
                .unwrap();
            }
            writeln!(s, "  }}").unwrap();
        }
        if !self.precedence().is_empty() {
            writeln!(s, "  subgraph cluster_prec {{").unwrap();
            writeln!(s, "    label=\"tuned first (precedence)\";").unwrap();
            for &r in self.precedence() {
                writeln!(
                    s,
                    "    r{r} [shape=box, style=dashed, label=\"{}\"];",
                    graph.routines()[r]
                )
                .unwrap();
            }
            writeln!(s, "  }}").unwrap();
        }
        writeln!(s, "}}").unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::InfluenceGraph;

    fn graph() -> InfluenceGraph {
        let mut g = InfluenceGraph::new(
            vec!["G3".into(), "G4".into()],
            vec!["x10".into(), "x15".into()],
        );
        g.set_owner("x10", "G3").unwrap();
        g.set_owner("x15", "G4").unwrap();
        g.set_score("x10", "G3", 0.67).unwrap();
        g.set_score("x15", "G3", 0.46).unwrap();
        g.set_score("x15", "G4", 0.75).unwrap();
        g
    }

    #[test]
    fn dot_contains_nodes_and_cross_edge() {
        let dot = graph().to_dot(0.25).unwrap();
        assert!(dot.contains("digraph influence"));
        assert!(dot.contains("label=\"G3\""));
        assert!(dot.contains("label=\"x15\""));
        assert!(dot.contains("color=red"), "cross-edge should be red");
        assert!(dot.contains("46%"));
    }

    #[test]
    fn dot_omits_pruned_params() {
        let g = graph();
        let dot = g.to_dot(0.7).unwrap();
        // x15->G3 at 46% pruned; only 75% own edge remains for x15.
        assert!(!dot.contains("46%"));
        assert!(dot.contains("75%"));
    }

    #[test]
    fn partition_dot_renders_clusters() {
        let g = graph();
        let part = g.partition(0.25, &[]).unwrap();
        let dot = part.to_dot(&g);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("G3+G4"));
        assert!(dot.contains("2 dims"));
    }
}
