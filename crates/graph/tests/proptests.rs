//! Property-based tests for the influence graph and its partitioner.

use cets_graph::{InfluenceGraph, UnionFind};
use proptest::prelude::*;

/// Strategy: a random influence graph with `nr` routines, one owned
/// parameter per routine, and arbitrary score matrix in [0, 1].
fn random_graph(nr: usize) -> impl Strategy<Value = InfluenceGraph> {
    proptest::collection::vec(0.0..1.0f64, nr * nr).prop_map(move |scores| {
        let routines: Vec<String> = (0..nr).map(|i| format!("R{i}")).collect();
        let params: Vec<String> = (0..nr).map(|i| format!("p{i}")).collect();
        let mut g = InfluenceGraph::new(routines.clone(), params.clone());
        for i in 0..nr {
            g.set_owner(&params[i], &routines[i]).unwrap();
            let row: Vec<f64> = scores[i * nr..(i + 1) * nr].to_vec();
            g.set_scores(&params[i], &row).unwrap();
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_find_groups_partition(ops in proptest::collection::vec((0usize..8, 0usize..8), 0..20)) {
        let mut uf = UnionFind::new(8);
        for (a, b) in ops {
            uf.union(a, b);
        }
        let groups = uf.groups();
        // Groups are disjoint and cover 0..8.
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..8).collect::<Vec<_>>());
        // Component count matches.
        prop_assert_eq!(groups.len(), uf.components());
        // Elements within a group are mutually connected.
        for g in &groups {
            for w in g.windows(2) {
                prop_assert!(uf.connected(w[0], w[1]));
            }
        }
    }

    #[test]
    fn partition_groups_cover_routines(g in random_graph(5), cutoff in 0.0..1.5f64) {
        let part = g.partition(cutoff, &[]).unwrap();
        let mut covered: Vec<usize> = part
            .groups()
            .iter()
            .flat_map(|grp| grp.routines.iter().copied())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(covered, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn partition_monotone_in_cutoff(g in random_graph(5), lo in 0.0..0.5f64, delta in 0.0..0.5f64) {
        // Raising the cut-off can only split groups (fewer merges).
        let p_lo = g.partition(lo, &[]).unwrap();
        let p_hi = g.partition(lo + delta, &[]).unwrap();
        prop_assert!(p_hi.groups().len() >= p_lo.groups().len());
    }

    #[test]
    fn partition_params_match_members(g in random_graph(5), cutoff in 0.0..1.0f64) {
        let part = g.partition(cutoff, &[]).unwrap();
        for grp in part.groups() {
            // Each group's parameter set is exactly the union of its
            // member routines' owned params (here: one each, same index).
            let mut expect: Vec<usize> = grp.routines.clone();
            expect.sort_unstable();
            prop_assert_eq!(&grp.params, &expect);
        }
    }

    #[test]
    fn cap_preserves_param_multiset(g in random_graph(6), max_dims in 1usize..6) {
        let mut part = g.partition(0.0, &[]).unwrap();
        let before: usize = part.groups().iter().map(|g| g.params.len()).sum();
        let importance: Vec<f64> = (0..6).map(|p| g.importance(p)).collect();
        part.cap_dimensions(max_dims, &importance);
        for grp in part.groups() {
            prop_assert!(grp.params.len() <= max_dims);
            // kept + dropped == original member params.
            let total = grp.params.len() + grp.dropped.len();
            prop_assert_eq!(total, grp.routines.len());
        }
        let after: usize = part
            .groups()
            .iter()
            .map(|g| g.params.len() + g.dropped.len())
            .sum();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn cap_keeps_most_important(g in random_graph(6)) {
        let mut part = g.partition(0.0, &[]).unwrap();
        let importance: Vec<f64> = (0..6).map(|p| g.importance(p)).collect();
        part.cap_dimensions(3, &importance);
        for grp in part.groups() {
            for &kept in &grp.params {
                for &dropped in &grp.dropped {
                    prop_assert!(
                        importance[kept] >= importance[dropped] - 1e-12,
                        "kept {kept} ({}) < dropped {dropped} ({})",
                        importance[kept],
                        importance[dropped]
                    );
                }
            }
        }
    }

    #[test]
    fn precedence_routines_never_in_groups(g in random_graph(5), cutoff in 0.0..1.0f64) {
        let part = g.partition(cutoff, &["R0", "R2"]).unwrap();
        for grp in part.groups() {
            prop_assert!(!grp.routines.contains(&0));
            prop_assert!(!grp.routines.contains(&2));
        }
        prop_assert_eq!(part.precedence(), &[0, 2]);
    }

    #[test]
    fn edges_never_below_cutoff(g in random_graph(4), cutoff in 0.0..1.0f64) {
        for e in g.edges(cutoff).unwrap() {
            prop_assert!(e.score >= cutoff);
        }
    }

    #[test]
    fn dot_renders_for_any_graph(g in random_graph(4), cutoff in 0.0..1.0f64) {
        let dot = g.to_dot(cutoff).unwrap();
        prop_assert!(dot.starts_with("digraph"));
        let part = g.partition(cutoff, &[]).unwrap();
        prop_assert!(part.to_dot(&g).contains("digraph"));
    }
}
