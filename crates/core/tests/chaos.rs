//! Chaos tests: the full staged methodology under deterministic fault
//! injection. A seeded [`FaultPlan`] sabotages a fraction of evaluations
//! with a mix of panics, NaN results and stalls; the fault-tolerant
//! execution layer must contain every one of them, finish the campaign,
//! and report what happened in the failure ledger.
//!
//! Everything here is deterministic: faults are seeded, stalls advance a
//! shared [`VirtualClock`] instead of wall time, and execution is
//! sequential so the clock observations attribute to the right evaluation.

use cets_core::{
    execute_plan_resilient, BoConfig, EvalError, FailurePolicy, FaultKind, FaultPlan,
    FaultyObjective, GuardPolicy, Methodology, MethodologyConfig, Objective, PlannedSearch,
    ResilienceConfig, ResilientObjective, RetryPolicy, SearchDisposition, SearchPlan, SearchTarget,
    VirtualClock,
};
use cets_space::{Config, ParamValue, SearchSpace};
use std::sync::Arc;
use std::time::Duration;

fn quiet_panics() {
    // The injected crashes are intentional; keep the default hook from
    // printing a backtrace for each one.
    std::panic::set_hook(Box::new(|_| {}));
}

/// Separable sphere with two routines: r0 = x0² + x1², r1 = x2².
struct Sphere(SearchSpace);

impl Sphere {
    fn new() -> Self {
        Sphere(
            SearchSpace::builder()
                .real("x0", 0.0, 4.0)
                .real("x1", 0.0, 4.0)
                .real("x2", 0.0, 4.0)
                .build(),
        )
    }
}

impl Objective for Sphere {
    fn space(&self) -> &SearchSpace {
        &self.0
    }
    fn routine_names(&self) -> Vec<String> {
        vec!["r0".into(), "r1".into()]
    }
    fn evaluate(&self, cfg: &Config) -> cets_core::Observation {
        let (a, b, c) = (cfg[0].as_f64(), cfg[1].as_f64(), cfg[2].as_f64());
        let (r0, r1) = (a * a + b * b, c * c);
        cets_core::Observation {
            total: r0 + r1,
            routines: vec![r0, r1],
        }
    }
    fn default_config(&self) -> Config {
        vec![
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
        ]
    }
}

fn owners() -> [(&'static str, &'static str); 3] {
    [("x0", "r0"), ("x1", "r0"), ("x2", "r1")]
}

fn quick_bo(seed: u64) -> BoConfig {
    BoConfig {
        n_init: 4,
        n_candidates: 48,
        n_local: 8,
        seed,
        ..Default::default()
    }
}

/// Resilience tuned for chaos: a watchdog that catches the injected
/// stalls, instant virtual-clock backoff, and no retries (a flaky fault
/// here is keyed on the configuration, so retrying is futile by design).
fn chaos_resilience(clock: Arc<VirtualClock>) -> ResilienceConfig {
    ResilienceConfig {
        guard: GuardPolicy {
            retry: RetryPolicy {
                max_retries: 0,
                ..Default::default()
            },
            watchdog: Some(Duration::from_secs(60)),
            ..Default::default()
        },
        failure: FailurePolicy::default(),
        clock,
    }
}

/// The headline acceptance test: 20% of evaluations sabotaged with a
/// seeded mix of panics, NaNs and hour-long stalls — the methodology still
/// completes the whole pipeline, reports a populated failure ledger, and
/// lands within tolerance of the fault-free run.
#[test]
fn methodology_completes_under_twenty_percent_mixed_faults() {
    quiet_panics();
    let obj = Sphere::new();
    let m = |resilience| {
        Methodology::new(MethodologyConfig {
            bo: quick_bo(7),
            evals_per_dim: 10,
            parallel: false,
            resilience,
            ..Default::default()
        })
    };
    // Analysis on the clean objective (the plan must exist either way),
    // then execution once clean and once under chaos.
    let clean_m = m(Some(ResilienceConfig::default()));
    let report = clean_m
        .analyze(&obj, &owners(), &obj.default_config())
        .unwrap();
    let fault_free = clean_m.execute(&obj, &report).unwrap();

    let clock = Arc::new(VirtualClock::new());
    let faulty = FaultyObjective::new(&obj, FaultPlan::flaky(0.2, 99), clock.clone());
    let chaotic = m(Some(chaos_resilience(clock.clone())))
        .execute(&faulty, &report)
        .unwrap();

    // Faults really were injected and really were contained.
    assert!(faulty.injected() > 0, "fault plan injected nothing");
    assert!(
        chaotic.ledger.total_failures() > 0,
        "ledger recorded no failures despite {} injections",
        faulty.injected()
    );
    assert!(!chaotic.ledger.entries.is_empty());
    // The run finished with a usable result: better than the untuned
    // default and in the same ballpark as the undisturbed run.
    let default_value = obj.evaluate(&obj.default_config()).total;
    assert!(
        chaotic.final_value < default_value,
        "chaotic {} !< default {default_value}",
        chaotic.final_value
    );
    assert!(
        (chaotic.final_value - fault_free.final_value).abs() < 2.0,
        "chaotic {} vs fault-free {}",
        chaotic.final_value,
        fault_free.final_value
    );
    assert!(obj.space().is_valid(&chaotic.final_config));
    // Every database record survived the screening: all finite.
    assert!(chaotic
        .database
        .training_data(&obj)
        .1
        .iter()
        .all(|y| y.is_finite()));
}

/// Region faults confined to one search's slice of the space degrade that
/// search only; the others complete and the run survives.
#[test]
fn region_fault_degrades_only_the_searches_inside_it() {
    quiet_panics();
    let obj = Sphere::new();
    // The r1 search varies x2 with x0 = x1 pinned at the 1.0 incumbent
    // (unit 0.25): a region fault over that line crashes every r1
    // evaluation but only the all-defaults incumbent of r0.
    let region = vec![(0.24, 0.26), (0.24, 0.26), (0.0, 1.0)];
    let plan = FaultPlan {
        region: Some((region, FaultKind::Panic)),
        ..Default::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let faulty = FaultyObjective::new(&obj, plan, clock.clone());
    let search_plan = SearchPlan {
        stages: vec![vec![
            PlannedSearch {
                name: "r0".into(),
                params: vec!["x0".into(), "x1".into()],
                dropped: vec![],
                target: SearchTarget::Routines(vec!["r0".into()]),
                budget: 12,
            },
            PlannedSearch {
                name: "r1".into(),
                params: vec!["x2".into()],
                dropped: vec![],
                target: SearchTarget::Routines(vec!["r1".into()]),
                budget: 10,
            },
        ]],
    };
    let exec = execute_plan_resilient(
        &faulty,
        &search_plan,
        &quick_bo(3),
        false,
        &chaos_resilience(clock),
    )
    .unwrap();
    let entry = |n: &str| exec.ledger.entries.iter().find(|e| e.search == n).unwrap();
    assert!(matches!(
        entry("r0").disposition,
        SearchDisposition::Completed
    ));
    assert!(matches!(
        entry("r1").disposition,
        SearchDisposition::Degraded(_)
    ));
    // The degraded parameter is untouched; the completed search tuned.
    assert_eq!(exec.final_config[2].as_f64(), 1.0);
    assert!(exec.final_config[0].as_f64().powi(2) + exec.final_config[1].as_f64().powi(2) < 2.0);
}

/// An injected stall trips the watchdog and is classified as a timeout —
/// instantly, because the stall advances a virtual clock, not wall time.
#[test]
fn stalls_trip_the_watchdog_as_timeouts() {
    let obj = Sphere::new();
    let clock = Arc::new(VirtualClock::new());
    let plan = FaultPlan {
        every_kth: Some((2, FaultKind::Stall)),
        stall: Duration::from_secs(3600),
        ..Default::default()
    };
    let faulty = FaultyObjective::new(&obj, plan, clock.clone());
    let guard = GuardPolicy {
        retry: RetryPolicy {
            max_retries: 0,
            ..Default::default()
        },
        watchdog: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    let clock_dyn: Arc<dyn cets_core::Clock> = clock;
    let res = ResilientObjective::new(&faulty, guard, clock_dyn);
    let cfg = obj.default_config();
    // Evaluation 1 is clean, evaluation 2 stalls.
    assert!(res.evaluate_outcome(&cfg, 0).is_ok());
    match res.evaluate_outcome(&cfg, 1) {
        cets_core::EvalOutcome::Failed(EvalError::Timeout { limit, observed }) => {
            assert_eq!(limit, Duration::from_secs(60));
            assert!(observed >= Duration::from_secs(3600));
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
}

/// Identical seeds, identical chaos: the whole campaign under fault
/// injection is reproducible run-to-run, down to the ledger.
#[test]
fn chaotic_execution_is_deterministic() {
    quiet_panics();
    let obj = Sphere::new();
    let search_plan = SearchPlan {
        stages: vec![vec![PlannedSearch {
            name: "all".into(),
            params: vec!["x0".into(), "x1".into(), "x2".into()],
            dropped: vec![],
            target: SearchTarget::Total,
            budget: 18,
        }]],
    };
    let run = || {
        let clock = Arc::new(VirtualClock::new());
        let faulty = FaultyObjective::new(&obj, FaultPlan::flaky(0.25, 11), clock.clone());
        execute_plan_resilient(
            &faulty,
            &search_plan,
            &quick_bo(5),
            false,
            &chaos_resilience(clock),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_value, b.final_value);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(a.ledger.total_failures(), b.ledger.total_failures());
    assert_eq!(a.ledger.n_degraded(), b.ledger.n_degraded());
}

/// Retry-backoff determinism: jitter draws are keyed by
/// `(retry-seed, eval_idx, retry)` — never a shared stream — so retries
/// that fired before a crash cannot perturb the trajectory of a resumed
/// run. Resuming from every prefix of a retry-heavy record stream must
/// reproduce the uninterrupted run bit-for-bit.
#[test]
fn crash_at_k_resume_is_bit_identical_with_retries_in_the_stream() {
    quiet_panics();
    let obj = Sphere::new();
    let sub = cets_space::Subspace::full(obj.space(), obj.default_config()).unwrap();
    let policy = FailurePolicy {
        max_failures: 40,
        ..Default::default()
    };
    let bo = cets_core::BoSearch::new(BoConfig {
        max_evals: 14,
        ..quick_bo(21)
    });
    let run_from = |records: Vec<cets_core::EvalRecord>| {
        let clock = Arc::new(VirtualClock::new());
        let faulty = FaultyObjective::new(&obj, FaultPlan::flaky(0.3, 4), clock.clone());
        let guard = GuardPolicy {
            retry: RetryPolicy {
                max_retries: 2,
                seed: 17,
                ..Default::default()
            },
            watchdog: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        let clock_dyn: Arc<dyn cets_core::Clock> = clock;
        let res = ResilientObjective::new(&faulty, guard, clock_dyn);
        let out = bo
            .run_resilient_with_records(&sub, |c, i| res.evaluate_outcome(c, i), &policy, records)
            .unwrap();
        (out, faulty.injected())
    };
    // Failure messages from the injector embed its process-local attempt
    // counter (which legitimately differs across a resumed process); the
    // determinism contract covers points, values and failure kinds.
    let key = |rs: &[cets_core::EvalRecord]| -> Vec<(Vec<u64>, Result<u64, String>)> {
        rs.iter()
            .map(|r| {
                (
                    r.u.iter().map(|v| v.to_bits()).collect(),
                    r.value
                        .as_ref()
                        .map(|y| y.to_bits())
                        .map_err(|f| f.kind.to_string()),
                )
            })
            .collect()
    };
    let (full, injected) = run_from(Vec::new());
    // Retries really happened: the fault plan injected more faults than
    // the record stream shows failures (each transient failure was
    // re-attempted and, being config-keyed, failed again).
    assert!(
        injected > full.n_failed,
        "{injected} injections vs {} recorded failures — no retries fired",
        full.n_failed
    );
    assert!(full.n_failed > 0, "chaos injected nothing");
    for k in 0..full.records.len() {
        let (resumed, _) = run_from(full.records[..k].to_vec());
        assert_eq!(
            key(&resumed.records),
            key(&full.records),
            "resume from prefix {k} diverged"
        );
        assert_eq!(resumed.outcome.best_value, full.outcome.best_value);
        assert_eq!(resumed.outcome.best_config, full.outcome.best_config);
    }
}
