//! Property-based tests for the tuning engine: normal helpers,
//! checkpoints, acquisition behaviour and sensitivity-driver invariants.

use cets_core::normal;
use cets_core::{
    routine_sensitivity, BoCheckpoint, BoConfig, BoSearch, EvalRecord, FailedEval, FailureKind,
    FailurePolicy, Imputation, Objective, Observation, VariationPolicy,
};
use cets_space::{Config, SearchSpace, Subspace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erf_odd_and_bounded(x in -6.0..6.0f64) {
        prop_assert!((normal::erf(x) + normal::erf(-x)).abs() < 1e-12);
        prop_assert!(normal::erf(x).abs() <= 1.0);
    }

    #[test]
    fn cdf_monotone(a in -5.0..5.0f64, d in 0.0..5.0f64) {
        prop_assert!(normal::cdf(a + d) >= normal::cdf(a) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal::cdf(a)));
    }

    #[test]
    fn cdf_complement(x in -5.0..5.0f64) {
        prop_assert!((normal::cdf(x) + normal::cdf(-x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_positive_and_symmetric(x in -6.0..6.0f64) {
        prop_assert!(normal::pdf(x) > 0.0);
        prop_assert!((normal::pdf(x) - normal::pdf(-x)).abs() < 1e-15);
    }

    #[test]
    fn checkpoint_roundtrip(
        seed in 0u64..u64::MAX,
        points in proptest::collection::vec(
            (proptest::collection::vec(0.0..1.0f64, 3), -1e6..1e6f64),
            0..20,
        ),
    ) {
        let cp = BoCheckpoint::from_history(seed, &points);
        let path = std::env::temp_dir().join(format!(
            "cets_prop_ckpt_{}_{}.json",
            std::process::id(),
            seed % 1000 // avoid collisions across cases without huge names
        ));
        cp.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded.history(), points);
        prop_assert_eq!(loaded.seed, seed);
    }

    /// Arbitrary bytes on disk: [`BoCheckpoint::load`] must return a clean
    /// error (or a valid checkpoint), never panic — checkpoints exist to
    /// recover from crashes, so a corrupt one must not cause another.
    #[test]
    fn corrupt_checkpoint_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        bytes.hash(&mut h);
        let path = std::env::temp_dir().join(format!(
            "cets_prop_corrupt_{}_{:016x}.json",
            std::process::id(),
            h.finish()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let result = BoCheckpoint::load(&path);
        std::fs::remove_file(&path).ok();
        if let Ok(cp) = result {
            // If garbage happens to parse, the invariants still hold.
            prop_assert_eq!(cp.y.len(), cp.x_unit.len());
            prop_assert_eq!(cp.failed.len(), cp.x_unit.len());
        }
    }

    /// Any strict prefix of a saved checkpoint (a truncated write) fails to
    /// load with an error, not a panic or a silently shortened history.
    #[test]
    fn truncated_checkpoint_errors_cleanly(
        seed in 0u64..1000,
        n in 1usize..12,
        cut_frac in 0.0..1.0f64,
    ) {
        let records: Vec<EvalRecord> = (0..n)
            .map(|i| {
                let u = vec![i as f64 / n as f64, 0.5];
                if i % 3 == 0 {
                    EvalRecord::failed(u, FailedEval {
                        kind: FailureKind::Crashed,
                        message: format!("boom {i}"),
                    })
                } else {
                    EvalRecord::ok(u, i as f64)
                }
            })
            .collect();
        let cp = BoCheckpoint::from_records(seed, &records);
        let path = std::env::temp_dir().join(format!(
            "cets_prop_trunc_{}_{}_{}.json",
            std::process::id(),
            seed,
            n
        ));
        cp.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let trimmed = full.trim_end();
        let cut = ((trimmed.len() as f64) * cut_frac) as usize;
        // Cut on a char boundary strictly inside the document.
        let cut = (0..=cut).rev().find(|&c| trimmed.is_char_boundary(c)).unwrap_or(0);
        std::fs::write(&path, &trimmed[..cut]).unwrap();
        let result = BoCheckpoint::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "strict prefix of {} bytes loaded", cut);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The failure policy's core guarantee: whatever mix of successes,
    /// failures, non-finite observations and poisoned coordinates the
    /// history holds, and whatever (possibly non-finite) margin is
    /// configured, the training set handed to the GP is entirely finite.
    #[test]
    fn training_data_is_always_finite(
        raw in proptest::collection::vec(
            (
                proptest::collection::vec(
                    prop_oneof![
                        (0.0..1.0f64).boxed(),
                        Just(f64::NAN).boxed(),
                        Just(f64::INFINITY).boxed(),
                        Just(f64::NEG_INFINITY).boxed(),
                    ],
                    2,
                ),
                prop_oneof![
                    (-1e12..1e12f64).boxed(),
                    Just(f64::NAN).boxed(),
                    Just(f64::INFINITY).boxed(),
                    Just(f64::NEG_INFINITY).boxed(),
                ],
                0u8..4,
            ),
            0..40,
        ),
        margin in prop_oneof![
            (-2.0..5.0f64).boxed(),
            Just(f64::NAN).boxed(),
            Just(f64::INFINITY).boxed(),
        ],
        exclude in prop_oneof![Just(true).boxed(), Just(false).boxed()],
    ) {
        let records: Vec<EvalRecord> = raw
            .into_iter()
            .map(|(u, y, sel)| match sel {
                0 => EvalRecord::ok(u, y),
                1 => EvalRecord::failed(u, FailedEval {
                    kind: FailureKind::Crashed,
                    message: "injected".into(),
                }),
                2 => EvalRecord::failed(u, FailedEval {
                    kind: FailureKind::Timeout,
                    message: "slow".into(),
                }),
                _ => EvalRecord::failed(u, FailedEval {
                    kind: FailureKind::NonFinite,
                    message: "nan".into(),
                }),
            })
            .collect();
        let policy = FailurePolicy {
            imputation: if exclude {
                Imputation::Exclude
            } else {
                Imputation::WorstPlusMargin { margin }
            },
            ..Default::default()
        };
        let (xs, ys) = policy.training_data(&records);
        prop_assert_eq!(xs.len(), ys.len());
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!(y.is_finite(), "non-finite target {y} reached training");
            prop_assert!(
                x.iter().all(|v| v.is_finite()),
                "non-finite input {x:?} reached training"
            );
        }
        // And the GP itself accepts the screened set (non-empty case):
        // nothing non-finite can reach Gp::train through this path.
        if xs.len() >= 2 {
            let gp = cets_gp::Gp::fit(
                &xs,
                &ys,
                cets_gp::Kernel::new(cets_gp::KernelKind::Matern52, 2),
                1e-4,
            );
            prop_assert!(
                !matches!(gp, Err(cets_gp::GpError::NonFinite(_))),
                "screened data rejected as non-finite"
            );
        }
        // The budget figure derived from the same records is finite too.
        prop_assert!(policy.budget_spent(&records).is_finite());
    }
}

/// A linear objective whose per-routine structure is fully known, for
/// sensitivity-driver invariants.
struct Linear {
    space: SearchSpace,
    w: Vec<f64>,
}

impl Linear {
    fn new(w: Vec<f64>) -> Self {
        let mut b = SearchSpace::builder();
        for i in 0..w.len() {
            b = b.real(format!("x{i}"), 1.0, 10.0);
        }
        Linear {
            space: b.build(),
            w,
        }
    }
}

impl Objective for Linear {
    fn space(&self) -> &SearchSpace {
        &self.space
    }
    fn routine_names(&self) -> Vec<String> {
        vec!["r".into()]
    }
    fn evaluate(&self, cfg: &Config) -> Observation {
        let v: f64 = cfg
            .iter()
            .zip(&self.w)
            .map(|(x, &wi)| wi * x.as_f64())
            .sum::<f64>()
            + 100.0;
        Observation::scalar(v)
    }
    fn default_config(&self) -> Config {
        self.space.decode(&vec![0.5; self.w.len()]).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zero_weight_parameters_have_zero_score(
        w0 in 0.5..5.0f64,
    ) {
        // Two params: one carries weight, one is dead.
        let obj = Linear::new(vec![w0, 0.0]);
        let s = routine_sensitivity(
            &obj,
            &obj.default_config(),
            &VariationPolicy::Spread { count: 5 },
        )
        .unwrap();
        prop_assert!(s.score_by_name("x0", "r").unwrap() > 0.0);
        prop_assert_eq!(s.score_by_name("x1", "r").unwrap(), 0.0);
    }

    #[test]
    fn heavier_weight_scores_higher(
        light in 0.1..1.0f64,
        ratio in 2.0..10.0f64,
    ) {
        let obj = Linear::new(vec![light * ratio, light]);
        let s = routine_sensitivity(
            &obj,
            &obj.default_config(),
            &VariationPolicy::Spread { count: 5 },
        )
        .unwrap();
        let heavy_score = s.score_by_name("x0", "r").unwrap();
        let light_score = s.score_by_name("x1", "r").unwrap();
        prop_assert!(heavy_score > light_score, "{heavy_score} !> {light_score}");
    }

    #[test]
    fn propose_parallel_matches_sequential(
        seed in 0u64..100,
        n_candidates in 8usize..64,
        workers in 2usize..6,
    ) {
        // The acquisition step's determinism contract, property-tested:
        // for any seed, pool size and worker count, the parallel
        // chunk-scored proposal is BIT-identical to the sequential one.
        use rand::{rngs::StdRng, RngExt, SeedableRng};

        let obj = Linear::new(vec![1.0, -2.0]);
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..12)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|u| u[0] - 2.0 * u[1]).collect();
        let best = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let gp = cets_gp::Surrogate::Exact(
            cets_gp::Gp::fit(
                &x,
                &y,
                cets_gp::Kernel::new(cets_gp::KernelKind::Matern52, 2),
                1e-6,
            )
            .unwrap(),
        );

        let run = |parallel: bool, n_workers: usize| {
            let search = BoSearch::new(BoConfig {
                parallel,
                n_workers,
                n_candidates,
                n_local: 4,
                ..Default::default()
            });
            let mut prng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
            search.propose(&sub, &gp, best, None, &mut prng).unwrap()
        };
        let sequential = run(false, 0);
        let parallel = run(true, workers);
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn observation_cost_formula(v in 1usize..8, d in 1usize..5) {
        let obj = Linear::new(vec![1.0; d]);
        let counted = cets_core::CountingObjective::new(&obj);
        let s = routine_sensitivity(
            &counted,
            &obj.default_config(),
            &VariationPolicy::Spread { count: v },
        )
        .unwrap();
        prop_assert_eq!(counted.count(), 1 + d * v);
        prop_assert_eq!(s.observation_cost(), 1 + d * v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constructive sampling invariant: over random coupled + disjunctive
    /// integer spaces, every successful draw satisfies every constraint,
    /// and the draw stream is bit-deterministic under a fixed seed.
    #[test]
    fn constructive_draws_are_feasible_and_deterministic(
        seed in 0u64..u64::MAX,
        lo_a in 0i64..20,
        span_a in 4i64..30,
        lo_b in 0i64..20,
        span_b in 4i64..30,
        slack in 0i64..20,
    ) {
        use cets_space::Constraint;
        use rand::SeedableRng;

        let (hi_a, hi_b) = (lo_a + span_a, lo_b + span_b);
        // Budget chosen so at least (lo_a, lo_b) is feasible.
        let cap = lo_a + lo_b + slack;
        // Disjunctive band on `a`, guaranteed to include lo_a.
        let cut_lo = lo_a + span_a / 4;
        let cut_hi = hi_a - span_a / 4;
        let space = SearchSpace::builder()
            .integer("a", lo_a, hi_a)
            .integer("b", lo_b, hi_b)
            .constraint(Constraint::new(
                "budget",
                format!("a + b <= {cap}"),
                move |s, c| s.get_i64(c, "a").unwrap() + s.get_i64(c, "b").unwrap() <= cap,
            ))
            .constraint(Constraint::new(
                "band",
                format!("a <= {cut_lo} || a >= {cut_hi}"),
                move |s, c| {
                    let a = s.get_i64(c, "a").unwrap();
                    a <= cut_lo || a >= cut_hi
                },
            ))
            .build();

        let Some(sam) = cets_core::ConstructiveSampler::new(&space) else {
            // Statically empty systems are allowed to refuse a sampler.
            return Ok(());
        };
        let draw = |s: u64| -> Vec<Option<cets_space::Config>> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            (0..30).map(|_| sam.sample(&mut rng)).collect()
        };
        for cfg in draw(seed).into_iter().flatten() {
            prop_assert!(space.is_valid(&cfg), "infeasible draw {cfg:?}");
        }
        prop_assert_eq!(draw(seed), draw(seed));
    }

    /// Stride-aware constructive sampling: for a random modulus/residue
    /// divisor constraint over a random integer box, every draw lands
    /// exactly on the congruence grid (no rejection involved), stays in
    /// bounds, and the stream is bit-deterministic under a fixed seed.
    #[test]
    fn stride_aware_draws_land_on_the_grid(
        seed in 0u64..u64::MAX,
        m in 2i64..64,
        r_raw in 0i64..64,
        lo in 0i64..1000,
        span in 200i64..20_000,
    ) {
        use cets_space::Constraint;
        use rand::SeedableRng;

        let r = r_raw % m;
        let hi = lo + span;
        // span ≥ 200 > 3·m guarantees at least one grid member in the box.
        let space = SearchSpace::builder()
            .integer("n", lo, hi)
            .constraint(Constraint::new(
                "grid",
                format!("n % {m} == {r}"),
                move |s, c| s.get_i64(c, "n").unwrap() % m == r,
            ))
            .build();

        let sam = cets_core::ConstructiveSampler::new(&space)
            .expect("a grid member exists in the box");
        let draw = |s: u64| -> Vec<Option<cets_space::Config>> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            (0..50).map(|_| sam.sample(&mut rng)).collect()
        };
        for (i, cfg) in draw(seed).into_iter().enumerate() {
            let cfg = cfg.unwrap_or_else(|| panic!("draw {i} failed"));
            let v = space.get_i64(&cfg, "n").unwrap();
            prop_assert!(v % m == r, "draw {} = {} off the grid {}ℤ+{}", i, v, m, r);
            prop_assert!((lo..=hi).contains(&v), "draw {} = {} out of bounds", i, v);
        }
        prop_assert_eq!(draw(seed), draw(seed));
    }
}

proptest! {
    // Full double-BO-runs per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tier_selection_deterministic_under_checkpoint_resume(
        seed in 0u64..20,
        threshold in 6usize..12,
        k in 5usize..12,
    ) {
        // The surrogate tier is re-derived at every retraining from the
        // policy and the training-set size. With an Auto threshold inside
        // the run's budget the search *switches tiers mid-run*; a resume
        // interrupted at any attempt k must re-derive the exact same
        // decisions and continue bit-for-bit through the switch.
        use cets_core::EvalOutcome;

        let obj = Linear::new(vec![1.0, -2.0]);
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let mut gp = cets_gp::GpConfig {
            tier: cets_gp::TierPolicy::Auto { threshold },
            ..Default::default()
        };
        gp.sparse.m_inducing = 8;
        let cfg = BoConfig {
            n_init: 4,
            max_evals: 14,
            n_candidates: 24,
            n_local: 4,
            retrain_every: 3,
            seed,
            gp,
            ..Default::default()
        };
        let policy = FailurePolicy::default();
        let search = BoSearch::new(cfg);
        let full = search
            .run_resilient(&sub, |c, _| EvalOutcome::Ok(obj.evaluate(c)), &policy)
            .unwrap();
        prop_assert!(full.records.len() >= threshold, "run never crossed the threshold");

        let k = k.min(full.records.len() - 1).max(1);
        let cp = BoCheckpoint::from_records(seed, &full.records[..k])
            .with_tier(search.config.gp.tier.tag());
        let resumed = search
            .resume_resilient(&sub, |c, _| EvalOutcome::Ok(obj.evaluate(c)), &policy, &cp)
            .unwrap();
        prop_assert_eq!(resumed.records, full.records);

        // A different tier policy must be rejected, not silently diverged.
        let mut other = search.clone();
        other.config.gp.tier = cets_gp::TierPolicy::Exact;
        prop_assert!(other
            .resume_resilient(&sub, |c, _| EvalOutcome::Ok(obj.evaluate(c)), &policy, &cp)
            .is_err());
    }

    #[test]
    fn bo_run_is_bit_identical_at_any_thread_count(seed in 0u64..30) {
        // End-to-end determinism: a full BO search — GP training (both
        // tiers, via an Auto threshold inside the budget), acquisition
        // scoring, and proposal — produces a BIT-identical trajectory at
        // every thread count.
        let obj = Linear::new(vec![1.0, -2.0]);
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let run = |threads: usize| {
            let mut gp = cets_gp::GpConfig {
                tier: cets_gp::TierPolicy::Auto { threshold: 10 },
                par: cets_gp::ParConfig::fixed(threads),
                ..Default::default()
            };
            gp.sparse.m_inducing = 8;
            let cfg = BoConfig {
                n_init: 4,
                max_evals: 14,
                n_candidates: 24,
                n_local: 4,
                retrain_every: 3,
                seed,
                gp,
                parallel: threads > 1,
                n_workers: threads,
                ..Default::default()
            };
            BoSearch::new(cfg).run(&sub, |c| obj.evaluate(c).total).unwrap()
        };
        let base = run(1);
        for t in [2usize, 4] {
            let out = run(t);
            prop_assert_eq!(&out.history, &base.history, "history diverged at t={}", t);
            prop_assert_eq!(&out.incumbent_trace, &base.incumbent_trace);
            prop_assert_eq!(&out.best_config, &base.best_config);
            prop_assert_eq!(out.best_value, base.best_value);
        }
    }
}
