//! Acceptance tests for constructive in-box sampling: on the disjunctive
//! exemplar space (`a <= 1 || a >= 9`, where blind rejection discards the
//! 7/11 ≈ 64 % of the box between the slabs) the constructive walk
//! produces *only* feasible configurations, bit-deterministically under a
//! fixed seed, and the slab-aware contraction sampler matches.

use cets_core::{contraction_aware_sampler, ConstructiveSampler};
use cets_space::{Config, Constraint, ParamValue, Sampler, SearchSpace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn disjunctive_space() -> SearchSpace {
    SearchSpace::builder()
        .integer("a", 0, 10)
        .integer("b", 0, 10)
        .constraint(Constraint::new("edge_bands", "a <= 1 || a >= 9", |s, c| {
            let a = s.get_i64(c, "a").unwrap();
            a <= 1 || a >= 9
        }))
        .build()
}

fn is_feasible(space: &SearchSpace, cfg: &Config) -> bool {
    let a = space.get_i64(cfg, "a").unwrap();
    a <= 1 || a >= 9
}

/// Raw uniform draws over the declared box, counting how many a rejection
/// sampler would have discarded.
fn rejection_discard_rate(space: &SearchSpace, n: usize) -> f64 {
    let plain = Sampler::new(space);
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let mut rejected = 0usize;
    for _ in 0..n {
        let u: Vec<f64> = (0..space.dim()).map(|_| rng.random::<f64>()).collect();
        let cfg = space.decode(&u).unwrap();
        if !space.is_valid(&cfg) {
            rejected += 1;
        }
    }
    // Sanity: the plain sampler still terminates (it retries internally).
    let mut rng2 = StdRng::seed_from_u64(1);
    assert!(plain.uniform(&mut rng2).is_ok());
    rejected as f64 / n as f64
}

#[test]
fn construction_is_always_feasible_where_rejection_discards_most_draws() {
    let space = disjunctive_space();

    // Acceptance precondition: blind rejection discards ≥ 50 % here.
    let discard = rejection_discard_rate(&space, 2000);
    assert!(
        discard >= 0.5,
        "fixture must be rejection-hostile, discard rate {discard}"
    );

    // Acceptance criterion: every constructive draw is feasible.
    let sam = ConstructiveSampler::new(&space).expect("space is analyzable");
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..1000 {
        let cfg = sam
            .sample(&mut rng)
            .unwrap_or_else(|| panic!("draw {i} failed"));
        assert!(is_feasible(&space, &cfg), "draw {i} infeasible: {cfg:?}");
    }
}

#[test]
fn construction_is_bit_deterministic_under_a_fixed_seed() {
    let space = disjunctive_space();
    let sam = ConstructiveSampler::new(&space).expect("space is analyzable");
    let draw = |seed: u64| -> Vec<Config> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..100).map(|_| sam.sample(&mut rng).unwrap()).collect()
    };
    assert_eq!(draw(7), draw(7), "same seed, same stream");
    assert_ne!(draw(7), draw(8), "different seeds explore differently");
}

#[test]
fn slab_aware_contraction_sampler_matches_on_the_same_space() {
    // The rejection-based path also benefits: its unit draws come from
    // the slab union, so every draw lands in a feasible band of `a`.
    let space = disjunctive_space();
    let sam = contraction_aware_sampler(&space);
    assert!(sam.unit_slabs().is_some(), "slab union installed");
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..500 {
        let cfg = sam.uniform(&mut rng).expect("slab draws succeed");
        assert!(is_feasible(&space, &cfg));
    }
}

#[test]
fn both_slabs_are_visited_in_measure_proportion() {
    let space = disjunctive_space();
    let sam = ConstructiveSampler::new(&space).expect("space is analyzable");
    let mut rng = StdRng::seed_from_u64(3);
    let mut low = 0usize;
    let n = 2000usize;
    for _ in 0..n {
        let cfg = sam.sample(&mut rng).unwrap();
        if space.get_i64(&cfg, "a").unwrap() <= 1 {
            low += 1;
        }
    }
    // Both slabs hold 2 of the 4 feasible values → low share ≈ 1/2.
    let share = low as f64 / n as f64;
    assert!((share - 0.5).abs() < 0.07, "low-slab share {share}");
}

fn divisor_space() -> SearchSpace {
    SearchSpace::builder()
        .integer("n", 1, 100_000)
        .constraint(Constraint::new("aligned", "n % 256 == 0", |s, c| {
            s.get_i64(c, "n").unwrap() % 256 == 0
        }))
        .build()
}

#[test]
fn divisor_constraint_defeats_rejection_but_not_construction() {
    // Acceptance criterion for the congruence domain: on `n % 256 == 0`
    // over [1, 100000] only 390 of 100000 values are feasible, so blind
    // rejection discards ≈ 99.6 % of its draws — while the stride-aware
    // constructive walk snaps every draw onto the grid.
    let space = divisor_space();

    let mut rng = StdRng::seed_from_u64(0xA11D);
    let mut rejected = 0usize;
    let n = 5000usize;
    for _ in 0..n {
        let u: Vec<f64> = (0..space.dim()).map(|_| rng.random::<f64>()).collect();
        let cfg = space.decode(&u).unwrap();
        if !space.is_valid(&cfg) {
            rejected += 1;
        }
    }
    let discard = rejected as f64 / n as f64;
    assert!(
        discard > 0.99,
        "fixture must be rejection-hostile, discard rate {discard}"
    );

    let sam = ConstructiveSampler::new(&space).expect("space is analyzable");
    let mut rng = StdRng::seed_from_u64(0x9B1D);
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for i in 0..1000 {
        let cfg = sam
            .sample(&mut rng)
            .unwrap_or_else(|| panic!("draw {i} failed"));
        let v = space.get_i64(&cfg, "n").unwrap();
        assert_eq!(v % 256, 0, "draw {i} off the grid: {v}");
        assert!((1..=100_000).contains(&v), "draw {i} out of bounds: {v}");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    // The whole grid is reachable, not just one end of it.
    assert!(lo <= 10_240, "low grid points never drawn (min {lo})");
    assert!(hi >= 89_600, "high grid points never drawn (max {hi})");
}

#[test]
fn ordinal_default_stays_ordinal_in_construction() {
    // An ordinal whose feasible values are non-contiguous in index space:
    // constructed draws must still be declared values.
    let space = SearchSpace::builder()
        .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
        .constraint(Constraint::new("ends", "u <= 1 || u >= 8", |s, c| {
            let u = s.get_f64(c, "u").unwrap();
            u <= 1.0 || u >= 8.0
        }))
        .build();
    let sam = ConstructiveSampler::new(&space).expect("space is analyzable");
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let cfg = sam.sample(&mut rng).expect("constructed draw");
        match space.get(&cfg, "u").unwrap() {
            ParamValue::Real(v) => assert!(v == 1.0 || v == 8.0, "u = {v}"),
            other => panic!("unexpected value {other:?}"),
        }
    }
}
