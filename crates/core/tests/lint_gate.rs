//! Property: the lint gate in `Methodology::run` is exactly as strict as
//! the report says — a zero-Error analysis is never rejected by the
//! default policy, and an Error-level analysis always is.

use cets_core::{CoreError, LintPolicy, Methodology, MethodologyConfig, Objective, Observation};
use cets_space::{Config, ParamValue, SearchSpace};
use proptest::prelude::*;

/// A cheap separable objective with two routines (mirrors the in-crate
/// SplitSphere test helper, which is not exported).
struct TwoSpheres(SearchSpace);

impl TwoSpheres {
    fn new() -> Self {
        TwoSpheres(
            SearchSpace::builder()
                .real("x0", -1.0, 1.0)
                .real("x1", -1.0, 1.0)
                .real("x2", -1.0, 1.0)
                .build(),
        )
    }
}

impl Objective for TwoSpheres {
    fn space(&self) -> &SearchSpace {
        &self.0
    }
    fn routine_names(&self) -> Vec<String> {
        vec!["r0".into(), "r1".into()]
    }
    fn evaluate(&self, cfg: &Config) -> Observation {
        let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
        let r0 = x[0] * x[0] + x[1] * x[1];
        let r1 = x[2] * x[2];
        Observation {
            total: r0 + r1 + 0.01,
            routines: vec![r0 + 0.005, r1 + 0.005],
        }
    }
    fn default_config(&self) -> Config {
        vec![
            ParamValue::Real(0.8),
            ParamValue::Real(-0.7),
            ParamValue::Real(0.9),
        ]
    }
}

fn owners() -> Vec<(&'static str, &'static str)> {
    vec![("x0", "r0"), ("x1", "r0"), ("x2", "r1")]
}

fn quick(cfg: MethodologyConfig) -> Methodology {
    let mut cfg = cfg;
    cfg.bo.n_init = 3;
    cfg.bo.n_candidates = 24;
    cfg.bo.n_local = 4;
    cfg.evals_per_dim = 3;
    Methodology::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gate_matches_report_exactly(
        cutoff in 0.05..0.9f64,
        max_dims in 0usize..5,
        noise_exp in -8i32..-2,
    ) {
        let obj = TwoSpheres::new();
        let mut cfg = MethodologyConfig {
            cutoff,
            max_dims,
            ..Default::default()
        };
        cfg.bo.gp.noise_floor = 10f64.powi(noise_exp);
        let m = quick(cfg);
        let baseline = obj.default_config();
        let Ok(report) = m.analyze(&obj, &owners(), &baseline) else {
            return Ok(()); // analysis failure is not the gate's business
        };
        let lint = m.lint_report(&obj, &report, &baseline);
        let run = m.run(&obj, &owners(), &baseline);
        if lint.errors() == 0 {
            // A zero-Error plan must never be rejected *by the gate*.
            prop_assert!(
                !matches!(run, Err(CoreError::Lint(_))),
                "clean plan rejected: {:?}",
                lint.diagnostics
            );
        } else {
            prop_assert!(
                matches!(run, Err(CoreError::Lint(_))),
                "error-level plan passed the gate: {:?}",
                lint.diagnostics
            );
        }
    }
}

#[test]
fn off_policy_never_gates() {
    let obj = TwoSpheres::new();
    let m = quick(MethodologyConfig {
        max_dims: 0, // G003 error under the default policy
        lint: LintPolicy::Off,
        ..Default::default()
    });
    let baseline = obj.default_config();
    assert!(m.run(&obj, &owners(), &baseline).is_ok());
}
