//! Contraction-aware sampling: feed `cets-lint`'s statically contracted
//! box into the default sampling paths.
//!
//! The abstract-interpretation engine ([`cets_lint::analyze_space`]) proves
//! which slice of each parameter's declared domain can possibly satisfy the
//! constraint conjunction. Rejection samplers that draw from the *full*
//! box waste almost every attempt on heavily constrained spaces (the
//! paper's RT-TDDFT space accepts ~0.0005 % of blind draws); drawing from
//! the contracted box instead raises the hit rate without excluding any
//! feasible configuration, because the contraction is sound.
//!
//! This module maps contracted domain intervals into the **unit-cube
//! coordinates** the samplers actually draw in (see
//! [`cets_space::Sampler::with_unit_box`]) and wires the result into:
//!
//! * [`crate::BoSearch`]'s candidate rejection loop (`sample_valid_unit`),
//! * [`crate::random_search()`] and [`crate::gather_insights`]'s fallback
//!   samplers — the default path behind [`crate::Objective::sample_valid`].
//!
//! All mappings round **outward**, so a box is never narrower than the
//! proof allows; unconstrained (or unanalyzable) spaces yield the full
//! cube, which is bit-identical to the pre-contraction sampling behavior.

use cets_lint::{analyze_space, Interval, PlanBundle};
use cets_space::{ParamDef, Sampler, SearchSpace, Subspace};

/// The unit-coordinate sub-box proved to contain every feasible
/// configuration of `space`, when the static analysis narrows anything.
///
/// Returns `None` when the bundle is unanalyzable, the constraint
/// conjunction is proved empty (callers keep their normal exhaustion
/// behavior — an empty box has nothing better to offer), or no parameter
/// narrows; callers then sample the full cube exactly as before.
pub fn contracted_unit_box(space: &SearchSpace) -> Option<Vec<(f64, f64)>> {
    let analysis = analyze_space(&space_bundle(space));
    if !analysis.analyzed || analysis.proved_empty || !analysis.any_narrowed() {
        return None;
    }
    let bounds: Vec<(f64, f64)> = analysis
        .params
        .iter()
        .zip(space.defs())
        .map(|(p, def)| unit_bounds(def, &p.contracted))
        .collect();
    Some(bounds)
}

/// The data mirror of `space` the static analysis runs over.
pub(crate) fn space_bundle(space: &SearchSpace) -> PlanBundle {
    PlanBundle {
        params: space
            .names()
            .iter()
            .zip(space.defs())
            .map(|(name, def)| cets_lint::ParamSpec {
                name: name.clone(),
                def: def.clone(),
                default: None,
            })
            .collect(),
        constraints: space
            .constraints()
            .iter()
            .map(|c| cets_lint::ConstraintSpec {
                name: c.name().to_string(),
                expr: c.description().to_string(),
            })
            .collect(),
        ..Default::default()
    }
}

/// The per-dimension unit-coordinate *slab unions* proved to contain
/// every feasible configuration, when disjunctive branch-and-prune found
/// genuinely disjoint structure (some parameter's feasible set is a union
/// of ≥ 2 slabs — e.g. `a <= 1 || a >= 9`) or the finite-set pass proved
/// some declared ordinal/categorical choices dead (the surviving bins
/// form the union, holes and all).
///
/// Returns `None` when the analysis is unavailable, the system is proved
/// empty, or every parameter's feasible set is a single interval with no
/// finite-set pruning — the plain [`contracted_unit_box`] hull path
/// already covers those, and keeping that case on the box path keeps the
/// default sampling behavior bit-identical.
pub fn contracted_unit_slabs(space: &SearchSpace) -> Option<Vec<Vec<(f64, f64)>>> {
    let analysis = analyze_space(&space_bundle(space));
    if !analysis.analyzed || analysis.proved_empty {
        return None;
    }
    let pruned = |p: &cets_lint::absint::ParamInterval, def: &ParamDef| {
        p.kept
            .as_ref()
            .zip(def.cardinality())
            .is_some_and(|(idx, n)| !idx.is_empty() && idx.len() < n)
    };
    if !analysis
        .params
        .iter()
        .zip(space.defs())
        .any(|(p, def)| p.slabs.len() > 1 || pruned(p, def))
    {
        return None;
    }
    let dims: Vec<Vec<(f64, f64)>> = analysis
        .params
        .iter()
        .zip(space.defs())
        .map(|(p, def)| {
            // Finite-set facts are exact: the surviving choices' unit
            // bins (contiguous runs merged) are the tightest sound union.
            if pruned(p, def) {
                if let Some(bins) = kept_unit_bins(def, p.kept.as_deref().unwrap_or(&[])) {
                    return bins;
                }
            }
            let slabs: Vec<(f64, f64)> = p.slabs.iter().map(|iv| unit_bounds(def, iv)).collect();
            // `unit_bounds` answers the full `(0, 1)` cube both for "spans
            // everything" and for "not expressible in this domain kind";
            // either way the union degenerates, so fall back to the sound
            // hull for that dimension.
            if slabs.is_empty() || slabs.contains(&(0.0, 1.0)) {
                vec![unit_bounds(def, &p.contracted)]
            } else {
                slabs
            }
        })
        .collect();
    Some(dims)
}

/// The unit bins of the surviving choice indices, with contiguous runs
/// merged into one slab. `None` for non-finite kinds or an empty set.
fn kept_unit_bins(def: &ParamDef, kept: &[usize]) -> Option<Vec<(f64, f64)>> {
    let mut out: Vec<(f64, f64)> = Vec::new();
    for &k in kept {
        let (lo, hi) = def.unit_bin(k)?;
        match out.last_mut() {
            Some(last) if (last.1 - lo).abs() < 1e-12 => last.1 = hi,
            _ => out.push((lo, hi)),
        }
    }
    (!out.is_empty()).then_some(out)
}

/// Map a contracted domain interval into the unit bin coordinates of
/// [`ParamDef::decode`], rounding outward (soundness over tightness).
fn unit_bounds(def: &ParamDef, iv: &Interval) -> (f64, f64) {
    const FULL: (f64, f64) = (0.0, 1.0);
    if iv.is_empty_range() || !iv.lo.is_finite() || !iv.hi.is_finite() {
        return FULL;
    }
    let (lo, hi) = match def {
        // decode: v = lo + u (hi − lo), linear and exact to invert.
        ParamDef::Real { lo, hi } => {
            if hi <= lo {
                return FULL;
            }
            ((iv.lo - lo) / (hi - lo), (iv.hi - lo) / (hi - lo))
        }
        // decode: v = lo + ⌊u n⌋ with n bins; integer v keeps the whole
        // bin [k/n, (k+1)/n) with k = v − lo.
        ParamDef::Integer { lo, hi } => {
            let n = (hi - lo + 1) as f64;
            let k_lo = (iv.lo.ceil() - *lo as f64).max(0.0);
            let k_hi = (iv.hi.floor() - *lo as f64).min(n - 1.0);
            if k_hi < k_lo {
                return FULL; // no representable value: leave untouched
            }
            (k_lo / n, (k_hi + 1.0) / n)
        }
        // Equal index bins over the (declaration-ordered) value list; only
        // a contiguous surviving run maps to one unit interval.
        ParamDef::Ordinal { values } => {
            let kept: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| iv.contains(**v))
                .map(|(k, _)| k)
                .collect();
            match (kept.first(), kept.last()) {
                (Some(&a), Some(&b)) if b - a + 1 == kept.len() => {
                    let n = values.len() as f64;
                    (a as f64 / n, (b + 1) as f64 / n)
                }
                _ => return FULL,
            }
        }
        // Slicing the option list would renumber constraint-referenced
        // indices; categorical axes always keep the full bin range.
        ParamDef::Categorical { .. } => return FULL,
    };
    (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))
}

/// A [`Sampler`] over `space` that draws from the contracted unit box —
/// or, when branch-and-prune recovered disjoint feasible slabs, from the
/// slab *union* — the contraction-aware default path used by
/// [`crate::random_search()`] and [`crate::gather_insights`].
pub fn contraction_aware_sampler(space: &SearchSpace) -> Sampler<'_> {
    if let Some(slabs) = contracted_unit_slabs(space) {
        return Sampler::new(space).with_unit_slabs(slabs);
    }
    match contracted_unit_box(space) {
        Some(bounds) => Sampler::new(space).with_unit_box(bounds),
        None => Sampler::new(space),
    }
}

/// Per-active-dimension unit bounds for a subspace — what the BO rejection
/// loop draws from. Dimensions of an un-narrowed (or unanalyzable) space
/// get the full `(0, 1)` interval, which maps draws identically to the
/// un-contracted path.
pub fn active_unit_box(subspace: &Subspace) -> Vec<(f64, f64)> {
    match contracted_unit_box(subspace.space()) {
        Some(bounds) => subspace
            .active_indices()
            .iter()
            .map(|&i| bounds[i])
            .collect(),
        None => vec![(0.0, 1.0); subspace.dim()],
    }
}

/// Per-active-dimension unit slab unions — the disjunction-aware
/// generalization of [`active_unit_box`] the BO loop draws from. Every
/// dimension without disjoint structure carries exactly one slab equal to
/// its [`active_unit_box`] interval, so drawing via
/// [`cets_space::map_slabs`] is bit-identical to the box path there.
pub fn active_unit_slabs(subspace: &Subspace) -> Vec<Vec<(f64, f64)>> {
    match contracted_unit_slabs(subspace.space()) {
        Some(dims) => subspace
            .active_indices()
            .iter()
            .map(|&i| dims[i].clone())
            .collect(),
        None => active_unit_box(subspace)
            .into_iter()
            .map(|b| vec![b])
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_space::{Constraint, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn constrained_space() -> SearchSpace {
        SearchSpace::builder()
            .real("x", 0.0, 100.0)
            .integer("tb", 0, 99)
            .constraint(Constraint::new("xcap", "x <= 25", |s, c| {
                s.get_f64(c, "x").unwrap() <= 25.0
            }))
            .constraint(Constraint::new("tbcap", "tb <= 24", |s, c| {
                s.get_i64(c, "tb").unwrap() <= 24
            }))
            .build()
    }

    #[test]
    fn contracted_box_matches_analysis() {
        let s = constrained_space();
        let b = contracted_unit_box(&s).expect("both axes narrow");
        // x ∈ [0, 25] of [0, 100] → unit [0, 0.25].
        assert!((b[0].0 - 0.0).abs() < 1e-12 && (b[0].1 - 0.25).abs() < 1e-12);
        // tb ∈ {0..24} of {0..99} → unit [0, 25/100).
        assert!((b[1].0 - 0.0).abs() < 1e-12 && (b[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_space_has_no_box() {
        let s = SearchSpace::builder().real("x", 0.0, 1.0).build();
        assert!(contracted_unit_box(&s).is_none());
    }

    #[test]
    fn sampler_draws_land_in_contraction() {
        let s = constrained_space();
        let sam = contraction_aware_sampler(&s);
        assert!(sam.unit_box().is_some());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let cfg = sam.uniform(&mut rng).expect("narrowed box samples fast");
            assert!(s.get_f64(&cfg, "x").unwrap() <= 25.0);
            assert!(s.get_i64(&cfg, "tb").unwrap() <= 24);
        }
    }

    #[test]
    fn active_box_projects_to_active_dims() {
        let s = constrained_space();
        let defaults = vec![ParamValue::Real(1.0), ParamValue::Int(1)];
        let sub = Subspace::new(&s, &["tb"], defaults).unwrap();
        let b = active_unit_box(&sub);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 0.25).abs() < 1e-12, "tb axis bound: {:?}", b[0]);
    }

    #[test]
    fn full_cube_for_unconstrained_subspace() {
        let s = SearchSpace::builder()
            .real("a", 0.0, 1.0)
            .real("b", 0.0, 1.0)
            .build();
        let sub = Subspace::full(&s, vec![ParamValue::Real(0.5), ParamValue::Real(0.5)]).unwrap();
        assert_eq!(active_unit_box(&sub), vec![(0.0, 1.0); 2]);
    }

    #[test]
    fn integer_bounds_round_outward() {
        // tb ∈ [3.2, 7.9] over {0..9} keeps bins 4..=7 → [0.4, 0.8).
        let def = ParamDef::Integer { lo: 0, hi: 9 };
        let (lo, hi) = unit_bounds(&def, &Interval::new(3.2, 7.9));
        assert!((lo - 0.4).abs() < 1e-12 && (hi - 0.8).abs() < 1e-12);
        // Every kept bin decodes inside the interval.
        for v in [0.4, 0.5, 0.79] {
            match def.decode(v) {
                ParamValue::Int(k) => assert!((4..=7).contains(&k)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn disjunctive_space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 10)
            .real("x", 0.0, 1.0)
            .constraint(Constraint::new("slab", "a <= 1 || a >= 9", |s, c| {
                let a = s.get_i64(c, "a").unwrap();
                a <= 1 || a >= 9
            }))
            .build()
    }

    #[test]
    fn disjunctive_constraint_yields_two_slabs() {
        let s = disjunctive_space();
        let dims = contracted_unit_slabs(&s).expect("branch-and-prune finds two slabs");
        // a ∈ {0, 1} ∪ {9, 10} over {0..10} → bins [0, 2/11] ∪ [9/11, 1].
        assert_eq!(dims[0].len(), 2, "a slabs: {:?}", dims[0]);
        assert!((dims[0][0].0 - 0.0).abs() < 1e-12);
        assert!((dims[0][0].1 - 2.0 / 11.0).abs() < 1e-12);
        assert!((dims[0][1].0 - 9.0 / 11.0).abs() < 1e-12);
        assert!((dims[0][1].1 - 1.0).abs() < 1e-12);
        // x is unconstrained: exactly one full slab.
        assert_eq!(dims[1], vec![(0.0, 1.0)]);
    }

    #[test]
    fn dead_categorical_options_become_slab_holes() {
        // `mode != 1` punches a hole in the option bins: the slab union
        // is [0, 1/3) ∪ [2/3, 1) and the sampler never draws option 1.
        let s = SearchSpace::builder()
            .categorical("mode", vec!["row".into(), "col".into(), "tile".into()])
            .constraint(Constraint::new("hole", "mode != 1", |s, c| {
                s.get_f64(c, "mode").unwrap() as usize != 1
            }))
            .build();
        let dims = contracted_unit_slabs(&s).expect("finite-set facts yield slabs");
        assert_eq!(dims[0].len(), 2, "{:?}", dims[0]);
        assert!((dims[0][0].0 - 0.0).abs() < 1e-12);
        assert!((dims[0][0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((dims[0][1].0 - 2.0 / 3.0).abs() < 1e-12);
        let sam = contraction_aware_sampler(&s);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let cfg = sam.uniform(&mut rng).expect("holes sample fine");
            let mode = s.get_f64(&cfg, "mode").unwrap() as usize;
            assert_ne!(mode, 1, "dead option drawn");
        }
    }

    #[test]
    fn single_interval_spaces_stay_on_the_box_path() {
        // Blast-radius control: no disjoint structure → no slab table, so
        // the established box path (and its bit-exact draw stream) is used.
        assert!(contracted_unit_slabs(&constrained_space()).is_none());
    }

    #[test]
    fn slab_sampler_always_lands_in_a_feasible_slab() {
        let s = disjunctive_space();
        let sam = contraction_aware_sampler(&s);
        assert!(sam.unit_slabs().is_some(), "sampler should carry slabs");
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let cfg = sam.uniform(&mut rng).expect("slab draws are feasible");
            let a = s.get_i64(&cfg, "a").unwrap();
            assert!(a <= 1 || a >= 9, "infeasible draw a = {a}");
        }
    }

    #[test]
    fn active_slabs_project_and_fall_back() {
        let s = disjunctive_space();
        let defaults = vec![ParamValue::Int(0), ParamValue::Real(0.5)];
        let sub = Subspace::new(&s, &["a"], defaults.clone()).unwrap();
        let slabs = active_unit_slabs(&sub);
        assert_eq!(slabs.len(), 1);
        assert_eq!(slabs[0].len(), 2);
        // Without disjoint structure the fallback wraps the box, one slab
        // per dimension.
        let plain = constrained_space();
        let sub2 = Subspace::full(&plain, vec![ParamValue::Real(1.0), ParamValue::Int(1)]).unwrap();
        let slabs2 = active_unit_slabs(&sub2);
        let box2 = active_unit_box(&sub2);
        assert_eq!(
            slabs2,
            box2.into_iter().map(|b| vec![b]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn degenerate_intervals_fall_back_to_full() {
        let def = ParamDef::Integer { lo: 0, hi: 9 };
        // No representable integer inside (5.2, 5.8).
        assert_eq!(unit_bounds(&def, &Interval::new(5.2, 5.8)), (0.0, 1.0));
        let real = ParamDef::Real { lo: 0.0, hi: 1.0 };
        assert_eq!(
            unit_bounds(&real, &Interval::new(f64::NEG_INFINITY, 0.5)),
            (0.0, 1.0)
        );
    }
}
