//! Contraction-aware sampling: feed `cets-lint`'s statically contracted
//! box into the default sampling paths.
//!
//! The abstract-interpretation engine ([`cets_lint::analyze_space`]) proves
//! which slice of each parameter's declared domain can possibly satisfy the
//! constraint conjunction. Rejection samplers that draw from the *full*
//! box waste almost every attempt on heavily constrained spaces (the
//! paper's RT-TDDFT space accepts ~0.0005 % of blind draws); drawing from
//! the contracted box instead raises the hit rate without excluding any
//! feasible configuration, because the contraction is sound.
//!
//! This module maps contracted domain intervals into the **unit-cube
//! coordinates** the samplers actually draw in (see
//! [`cets_space::Sampler::with_unit_box`]) and wires the result into:
//!
//! * [`crate::BoSearch`]'s candidate rejection loop (`sample_valid_unit`),
//! * [`crate::random_search()`] and [`crate::gather_insights`]'s fallback
//!   samplers — the default path behind [`crate::Objective::sample_valid`].
//!
//! All mappings round **outward**, so a box is never narrower than the
//! proof allows; unconstrained (or unanalyzable) spaces yield the full
//! cube, which is bit-identical to the pre-contraction sampling behavior.

use cets_lint::{analyze_space, Interval, PlanBundle};
use cets_space::{ParamDef, Sampler, SearchSpace, Subspace};

/// The unit-coordinate sub-box proved to contain every feasible
/// configuration of `space`, when the static analysis narrows anything.
///
/// Returns `None` when the bundle is unanalyzable, the constraint
/// conjunction is proved empty (callers keep their normal exhaustion
/// behavior — an empty box has nothing better to offer), or no parameter
/// narrows; callers then sample the full cube exactly as before.
pub fn contracted_unit_box(space: &SearchSpace) -> Option<Vec<(f64, f64)>> {
    let bundle = PlanBundle {
        params: space
            .names()
            .iter()
            .zip(space.defs())
            .map(|(name, def)| cets_lint::ParamSpec {
                name: name.clone(),
                def: def.clone(),
                default: None,
            })
            .collect(),
        constraints: space
            .constraints()
            .iter()
            .map(|c| cets_lint::ConstraintSpec {
                name: c.name().to_string(),
                expr: c.description().to_string(),
            })
            .collect(),
        ..Default::default()
    };
    let analysis = analyze_space(&bundle);
    if !analysis.analyzed || analysis.proved_empty || !analysis.any_narrowed() {
        return None;
    }
    let bounds: Vec<(f64, f64)> = analysis
        .params
        .iter()
        .zip(space.defs())
        .map(|(p, def)| unit_bounds(def, &p.contracted))
        .collect();
    Some(bounds)
}

/// Map a contracted domain interval into the unit bin coordinates of
/// [`ParamDef::decode`], rounding outward (soundness over tightness).
fn unit_bounds(def: &ParamDef, iv: &Interval) -> (f64, f64) {
    const FULL: (f64, f64) = (0.0, 1.0);
    if iv.is_empty_range() || !iv.lo.is_finite() || !iv.hi.is_finite() {
        return FULL;
    }
    let (lo, hi) = match def {
        // decode: v = lo + u (hi − lo), linear and exact to invert.
        ParamDef::Real { lo, hi } => {
            if hi <= lo {
                return FULL;
            }
            ((iv.lo - lo) / (hi - lo), (iv.hi - lo) / (hi - lo))
        }
        // decode: v = lo + ⌊u n⌋ with n bins; integer v keeps the whole
        // bin [k/n, (k+1)/n) with k = v − lo.
        ParamDef::Integer { lo, hi } => {
            let n = (hi - lo + 1) as f64;
            let k_lo = (iv.lo.ceil() - *lo as f64).max(0.0);
            let k_hi = (iv.hi.floor() - *lo as f64).min(n - 1.0);
            if k_hi < k_lo {
                return FULL; // no representable value: leave untouched
            }
            (k_lo / n, (k_hi + 1.0) / n)
        }
        // Equal index bins over the (declaration-ordered) value list; only
        // a contiguous surviving run maps to one unit interval.
        ParamDef::Ordinal { values } => {
            let kept: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| iv.contains(**v))
                .map(|(k, _)| k)
                .collect();
            match (kept.first(), kept.last()) {
                (Some(&a), Some(&b)) if b - a + 1 == kept.len() => {
                    let n = values.len() as f64;
                    (a as f64 / n, (b + 1) as f64 / n)
                }
                _ => return FULL,
            }
        }
        // Slicing the option list would renumber constraint-referenced
        // indices; categorical axes always keep the full bin range.
        ParamDef::Categorical { .. } => return FULL,
    };
    (lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0))
}

/// A [`Sampler`] over `space` that draws from the contracted unit box when
/// the static analysis narrows one — the contraction-aware default path
/// used by [`crate::random_search()`] and [`crate::gather_insights`].
pub fn contraction_aware_sampler(space: &SearchSpace) -> Sampler<'_> {
    match contracted_unit_box(space) {
        Some(bounds) => Sampler::new(space).with_unit_box(bounds),
        None => Sampler::new(space),
    }
}

/// Per-active-dimension unit bounds for a subspace — what the BO rejection
/// loop draws from. Dimensions of an un-narrowed (or unanalyzable) space
/// get the full `(0, 1)` interval, which maps draws identically to the
/// un-contracted path.
pub fn active_unit_box(subspace: &Subspace) -> Vec<(f64, f64)> {
    match contracted_unit_box(subspace.space()) {
        Some(bounds) => subspace
            .active_indices()
            .iter()
            .map(|&i| bounds[i])
            .collect(),
        None => vec![(0.0, 1.0); subspace.dim()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_space::{Constraint, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn constrained_space() -> SearchSpace {
        SearchSpace::builder()
            .real("x", 0.0, 100.0)
            .integer("tb", 0, 99)
            .constraint(Constraint::new("xcap", "x <= 25", |s, c| {
                s.get_f64(c, "x").unwrap() <= 25.0
            }))
            .constraint(Constraint::new("tbcap", "tb <= 24", |s, c| {
                s.get_i64(c, "tb").unwrap() <= 24
            }))
            .build()
    }

    #[test]
    fn contracted_box_matches_analysis() {
        let s = constrained_space();
        let b = contracted_unit_box(&s).expect("both axes narrow");
        // x ∈ [0, 25] of [0, 100] → unit [0, 0.25].
        assert!((b[0].0 - 0.0).abs() < 1e-12 && (b[0].1 - 0.25).abs() < 1e-12);
        // tb ∈ {0..24} of {0..99} → unit [0, 25/100).
        assert!((b[1].0 - 0.0).abs() < 1e-12 && (b[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_space_has_no_box() {
        let s = SearchSpace::builder().real("x", 0.0, 1.0).build();
        assert!(contracted_unit_box(&s).is_none());
    }

    #[test]
    fn sampler_draws_land_in_contraction() {
        let s = constrained_space();
        let sam = contraction_aware_sampler(&s);
        assert!(sam.unit_box().is_some());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let cfg = sam.uniform(&mut rng).expect("narrowed box samples fast");
            assert!(s.get_f64(&cfg, "x").unwrap() <= 25.0);
            assert!(s.get_i64(&cfg, "tb").unwrap() <= 24);
        }
    }

    #[test]
    fn active_box_projects_to_active_dims() {
        let s = constrained_space();
        let defaults = vec![ParamValue::Real(1.0), ParamValue::Int(1)];
        let sub = Subspace::new(&s, &["tb"], defaults).unwrap();
        let b = active_unit_box(&sub);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 0.25).abs() < 1e-12, "tb axis bound: {:?}", b[0]);
    }

    #[test]
    fn full_cube_for_unconstrained_subspace() {
        let s = SearchSpace::builder()
            .real("a", 0.0, 1.0)
            .real("b", 0.0, 1.0)
            .build();
        let sub = Subspace::full(&s, vec![ParamValue::Real(0.5), ParamValue::Real(0.5)]).unwrap();
        assert_eq!(active_unit_box(&sub), vec![(0.0, 1.0); 2]);
    }

    #[test]
    fn integer_bounds_round_outward() {
        // tb ∈ [3.2, 7.9] over {0..9} keeps bins 4..=7 → [0.4, 0.8).
        let def = ParamDef::Integer { lo: 0, hi: 9 };
        let (lo, hi) = unit_bounds(&def, &Interval::new(3.2, 7.9));
        assert!((lo - 0.4).abs() < 1e-12 && (hi - 0.8).abs() < 1e-12);
        // Every kept bin decodes inside the interval.
        for v in [0.4, 0.5, 0.79] {
            match def.decode(v) {
                ParamValue::Int(k) => assert!((4..=7).contains(&k)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_intervals_fall_back_to_full() {
        let def = ParamDef::Integer { lo: 0, hi: 9 };
        // No representable integer inside (5.2, 5.8).
        assert_eq!(unit_bounds(&def, &Interval::new(5.2, 5.8)), (0.0, 1.0));
        let real = ParamDef::Real { lo: 0.0, hi: 1.0 };
        assert_eq!(
            unit_bounds(&real, &Interval::new(f64::NEG_INFINITY, 0.5)),
            (0.0, 1.0)
        );
    }
}
