//! The tuning objective abstraction: an application with observable
//! per-routine runtimes.

use cets_space::{Config, SearchSpace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One application evaluation: the total objective (usually wall time, to
/// be minimized) plus each routine's individual contribution.
///
/// Per-routine observability is what makes the paper's cheap
/// interdependence analysis possible — instrumenting routine-level timers
/// is standard practice in HPC (the paper reads QBox's per-kernel timings),
/// so the methodology assumes it rather than re-deriving routine costs from
/// totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The value the tuner minimizes.
    pub total: f64,
    /// Per-routine values, in [`Objective::routine_names`] order.
    pub routines: Vec<f64>,
}

impl Observation {
    /// A single-routine observation (routine value == total).
    pub fn scalar(total: f64) -> Self {
        Observation {
            total,
            routines: vec![total],
        }
    }
}

/// A tunable application.
///
/// Implementations must be [`Sync`]: the methodology runs independent
/// searches in parallel threads, each calling [`Objective::evaluate`]
/// concurrently. Stochastic objectives (runtime noise) should derive their
/// randomness from the configuration and an internal seed so repeated runs
/// of the whole pipeline are reproducible.
pub trait Objective: Sync {
    /// The parameter space (with constraints).
    fn space(&self) -> &SearchSpace;

    /// Names of the observable routines, fixing the order of
    /// [`Observation::routines`].
    fn routine_names(&self) -> Vec<String>;

    /// Evaluate one configuration. Implementations may assume `cfg` is
    /// valid for [`Objective::space`].
    fn evaluate(&self, cfg: &Config) -> Observation;

    /// A reasonable default configuration (the paper's "default tuning
    /// values" that discarded parameters fall back to).
    fn default_config(&self) -> Config;

    /// Optional **constructive** sampler for heavily constrained spaces.
    ///
    /// Blind rejection sampling of a joint high-dimensional constrained
    /// space can fail outright — the paper's RT-TDDFT space is valid for
    /// only ~0.0005% of blind draws (five per-kernel occupancy rules plus
    /// the MPI product rule compound), which is precisely why its joint
    /// 20-dim GPTune search could not generate candidates. Applications
    /// that know their constraint structure can supply a sampler that
    /// builds valid configurations directly (e.g. draw `tb` first, then
    /// `tb_sm ≤ max_threads / tb`); full-space consumers
    /// ([`crate::insights::gather_insights`], [`crate::random_search()`])
    /// use it when present. Decomposed subspace searches don't need it.
    ///
    /// The default path (this method returning `None`) is not blind: the
    /// consumers fall back to
    /// [`crate::contraction::contraction_aware_sampler`], whose rejection
    /// draws come from the statically contracted box when `cets-lint`'s
    /// interval analysis proves one — so even without a constructive
    /// sampler, declared constraints narrow where candidates are drawn.
    fn sample_valid(&self, _rng: &mut dyn rand::Rng) -> Option<Config> {
        None
    }
}

/// Wrapper that counts evaluations — the methodology's currency.
///
/// The paper compares approaches by *observations required*; wrapping an
/// objective in this type makes the accounting automatic and thread-safe.
pub struct CountingObjective<'a, O: Objective + ?Sized> {
    inner: &'a O,
    count: AtomicUsize,
}

impl<'a, O: Objective + ?Sized> CountingObjective<'a, O> {
    /// Wrap an objective, starting the counter at zero.
    pub fn new(inner: &'a O) -> Self {
        CountingObjective {
            inner,
            count: AtomicUsize::new(0),
        }
    }

    /// Evaluations performed so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset the counter (e.g. between methodology phases).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
}

impl<'a, O: Objective + ?Sized> Objective for CountingObjective<'a, O> {
    fn space(&self) -> &SearchSpace {
        self.inner.space()
    }

    fn routine_names(&self) -> Vec<String> {
        self.inner.routine_names()
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate(cfg)
    }

    fn default_config(&self) -> Config {
        self.inner.default_config()
    }

    fn sample_valid(&self, rng: &mut dyn rand::Rng) -> Option<Config> {
        self.inner.sample_valid(rng)
    }
}

/// Wrapper that substitutes a *statically contracted* search space for the
/// inner objective's declared one.
///
/// Built by the methodology's `contract_bounds` pre-pass (see
/// [`crate::methodology::MethodologyConfig::contract_bounds`]): the
/// abstract-interpretation engine in `cets-lint` proves which fraction of
/// each parameter's declared domain can possibly satisfy the constraints,
/// and searching the narrowed box raises the density of valid candidates
/// without losing any feasible point — the contraction is sound, so every
/// configuration the constraints accept is still inside the new bounds.
///
/// Everything except [`Objective::space`] delegates to the inner
/// objective; evaluation semantics are untouched.
pub struct ContractedObjective<'a, O: Objective + ?Sized> {
    inner: &'a O,
    space: SearchSpace,
}

impl<'a, O: Objective + ?Sized> ContractedObjective<'a, O> {
    /// Wrap `inner`, answering [`Objective::space`] with `space`.
    ///
    /// `space` must declare the same parameters in the same order as
    /// `inner.space()` (the methodology builds it that way); only the
    /// domains may differ.
    pub fn new(inner: &'a O, space: SearchSpace) -> Self {
        debug_assert_eq!(inner.space().names(), space.names());
        ContractedObjective { inner, space }
    }

    /// The narrowed space (same as [`Objective::space`], but owned here).
    pub fn contracted_space(&self) -> &SearchSpace {
        &self.space
    }
}

impl<'a, O: Objective + ?Sized> Objective for ContractedObjective<'a, O> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn routine_names(&self) -> Vec<String> {
        self.inner.routine_names()
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        self.inner.evaluate(cfg)
    }

    fn default_config(&self) -> Config {
        self.inner.default_config()
    }

    fn sample_valid(&self, rng: &mut dyn rand::Rng) -> Option<Config> {
        self.inner.sample_valid(rng)
    }
}

#[cfg(test)]
pub(crate) mod test_objectives {
    use super::*;
    use cets_space::ParamValue;

    /// Sphere function split into two "routines": r0 = x0²+x1², r1 = x2².
    /// Total = r0 + r1. Minimum 0 at the origin.
    pub struct SplitSphere {
        space: SearchSpace,
    }

    impl SplitSphere {
        pub fn new() -> Self {
            SplitSphere {
                space: SearchSpace::builder()
                    .real("x0", -5.0, 5.0)
                    .real("x1", -5.0, 5.0)
                    .real("x2", -5.0, 5.0)
                    .build(),
            }
        }
    }

    impl Objective for SplitSphere {
        fn space(&self) -> &SearchSpace {
            &self.space
        }

        fn routine_names(&self) -> Vec<String> {
            vec!["r0".into(), "r1".into()]
        }

        fn evaluate(&self, cfg: &Config) -> Observation {
            let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
            let r0 = x[0] * x[0] + x[1] * x[1];
            let r1 = x[2] * x[2];
            Observation {
                total: r0 + r1,
                routines: vec![r0, r1],
            }
        }

        fn default_config(&self) -> Config {
            vec![
                ParamValue::Real(1.0),
                ParamValue::Real(1.0),
                ParamValue::Real(1.0),
            ]
        }
    }

    /// Coupled variant: routine 1 is influenced by x1 as well (x1·x2)², so
    /// x1 cross-influences routine r1 — a miniature of the paper's
    /// Group 3/Group 4 interdependence.
    pub struct CoupledSphere {
        space: SearchSpace,
    }

    impl CoupledSphere {
        pub fn new() -> Self {
            CoupledSphere {
                space: SearchSpace::builder()
                    .real("x0", -5.0, 5.0)
                    .real("x1", -5.0, 5.0)
                    .real("x2", -5.0, 5.0)
                    .build(),
            }
        }
    }

    impl Objective for CoupledSphere {
        fn space(&self) -> &SearchSpace {
            &self.space
        }

        fn routine_names(&self) -> Vec<String> {
            vec!["r0".into(), "r1".into()]
        }

        fn evaluate(&self, cfg: &Config) -> Observation {
            let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
            let r0 = x[0] * x[0];
            let r1 = x[2] * x[2] + (x[1] * x[2]).powi(2) + 0.5 * x[1] * x[1];
            Observation {
                total: r0 + r1,
                routines: vec![r0, r1],
            }
        }

        fn default_config(&self) -> Config {
            vec![
                ParamValue::Real(1.0),
                ParamValue::Real(1.0),
                ParamValue::Real(1.0),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_objectives::SplitSphere;
    use super::*;

    #[test]
    fn observation_scalar() {
        let o = Observation::scalar(3.0);
        assert_eq!(o.total, 3.0);
        assert_eq!(o.routines, vec![3.0]);
    }

    #[test]
    fn counting_objective_counts() {
        let obj = SplitSphere::new();
        let counted = CountingObjective::new(&obj);
        assert_eq!(counted.count(), 0);
        let cfg = counted.default_config();
        let o = counted.evaluate(&cfg);
        assert_eq!(o.total, 3.0);
        assert_eq!(counted.count(), 1);
        counted.evaluate(&cfg);
        assert_eq!(counted.count(), 2);
        counted.reset();
        assert_eq!(counted.count(), 0);
    }

    #[test]
    fn counting_is_thread_safe() {
        let obj = SplitSphere::new();
        let counted = CountingObjective::new(&obj);
        let cfg = counted.default_config();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        counted.evaluate(&cfg);
                    }
                });
            }
        });
        assert_eq!(counted.count(), 100);
    }
}
