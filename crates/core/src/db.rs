//! Evaluation database: persistent storage of every configuration the
//! tuner has ever run, à la GPTune's historic database.
//!
//! The paper leans on two GPTune features this module provides: results
//! survive crashes/sessions (JSON on disk), and a related task can reuse
//! a prior task's "configuration database" for transfer learning (Case
//! Study 1 → Case Study 2). A [`Database`] stores full observations
//! (total + per-routine values), so it can also replay the insights phase
//! without re-running the application.

use crate::objective::{Objective, Observation};
use crate::transfer::TransferSeed;
use crate::{CoreError, Result};
use cets_space::{Config, ParamValue};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One recorded evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The evaluated configuration (natural values, space order).
    pub config: Config,
    /// Total objective value.
    pub total: f64,
    /// Per-routine values.
    pub routines: Vec<f64>,
    /// Free-form tag (search name, phase, ...).
    pub tag: String,
}

/// A persistent collection of evaluations for one task.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Database {
    /// Task identifier (e.g. the case-study name).
    pub task: String,
    /// Parameter names, fixing the config layout. Guards against loading a
    /// database into a mismatched space.
    pub param_names: Vec<String>,
    /// Routine names, fixing the routines layout.
    pub routine_names: Vec<String>,
    records: Vec<Record>,
}

impl Database {
    /// An empty database bound to an objective's layout.
    pub fn for_objective<O: Objective + ?Sized>(task: impl Into<String>, objective: &O) -> Self {
        Database {
            task: task.into(),
            param_names: objective.space().names().to_vec(),
            routine_names: objective.routine_names(),
            records: Vec::new(),
        }
    }

    /// Number of stored evaluations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no evaluations are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, insertion-ordered.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Record one evaluation.
    pub fn push(&mut self, config: Config, obs: &Observation, tag: impl Into<String>) {
        self.records.push(Record {
            config,
            total: obs.total,
            routines: obs.routines.clone(),
            tag: tag.into(),
        });
    }

    /// Evaluate through an objective and record in one step.
    pub fn evaluate_and_record<O: Objective + ?Sized>(
        &mut self,
        objective: &O,
        config: &Config,
        tag: impl Into<String>,
    ) -> Observation {
        let obs = objective.evaluate(config);
        self.push(config.clone(), &obs, tag);
        obs
    }

    /// The best (lowest-total) record, if any.
    pub fn best(&self) -> Option<&Record> {
        self.records.iter().min_by(|a, b| {
            a.total
                .partial_cmp(&b.total)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The `k` best records by total, ascending.
    pub fn top_k(&self, k: usize) -> Vec<&Record> {
        let mut sorted: Vec<&Record> = self.records.iter().collect();
        sorted.sort_by(|a, b| {
            a.total
                .partial_cmp(&b.total)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted.truncate(k);
        sorted
    }

    /// Records whose tag matches exactly.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Record> + 'a {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Convert into a transfer-learning seed pool (prior config, prior
    /// total).
    pub fn to_transfer_seed(&self) -> TransferSeed {
        TransferSeed {
            points: self
                .records
                .iter()
                .map(|r| (r.config.clone(), r.total))
                .collect(),
        }
    }

    /// Merge another database for the same layout (appends its records).
    pub fn merge(&mut self, other: Database) -> Result<()> {
        if other.param_names != self.param_names || other.routine_names != self.routine_names {
            return Err(CoreError::BadConfig(format!(
                "database layout mismatch: {:?} vs {:?}",
                other.param_names, self.param_names
            )));
        }
        self.records.extend(other.records);
        Ok(())
    }

    /// Save as pretty JSON (atomically, via a temp file + rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Checkpoint(format!("serialize database: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)
            .map_err(|e| CoreError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CoreError::Checkpoint(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    /// Load and validate against the expected parameter layout of
    /// `objective` (pass `None` to skip validation).
    pub fn load<O: Objective + ?Sized>(path: &Path, objective: Option<&O>) -> Result<Self> {
        let data = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Checkpoint(format!("read {}: {e}", path.display())))?;
        let db: Database = serde_json::from_str(&data)
            .map_err(|e| CoreError::Checkpoint(format!("parse {}: {e}", path.display())))?;
        if let Some(obj) = objective {
            if db.param_names != obj.space().names() {
                return Err(CoreError::BadConfig(
                    "database parameter layout does not match objective".into(),
                ));
            }
        }
        for r in &db.records {
            if r.config.len() != db.param_names.len() {
                return Err(CoreError::Checkpoint("corrupt record arity".into()));
            }
        }
        Ok(db)
    }

    /// Summary statistics of the stored totals (None when empty).
    pub fn summary(&self) -> Option<cets_stats::Summary> {
        let totals: Vec<f64> = self.records.iter().map(|r| r.total).collect();
        cets_stats::Summary::new(&totals).ok()
    }

    /// Extract `(features, totals)` matrices for model fitting — features
    /// are the unit-cube encodings under `objective`'s space. Records with
    /// out-of-domain configs (space definition drift) are skipped.
    pub fn training_data<O: Objective + ?Sized>(&self, objective: &O) -> (Vec<Vec<f64>>, Vec<f64>) {
        let space = objective.space();
        let mut xs = Vec::with_capacity(self.records.len());
        let mut ys = Vec::with_capacity(self.records.len());
        for r in &self.records {
            if let Ok(u) = space.encode(&r.config) {
                xs.push(u);
                ys.push(r.total);
            }
        }
        (xs, ys)
    }
}

/// Convenience: round-trip a config's numeric view (used by tests/tools).
pub fn config_values(cfg: &Config) -> Vec<f64> {
    cfg.iter().map(ParamValue::as_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cets_db_{}_{name}.json", std::process::id()))
    }

    #[test]
    fn record_query_roundtrip() {
        let obj = SplitSphere::new();
        let mut db = Database::for_objective("sphere", &obj);
        assert!(db.is_empty());
        for i in 0..5 {
            let u = vec![i as f64 / 4.0; 3];
            let cfg = obj.space().decode(&u).unwrap();
            db.evaluate_and_record(&obj, &cfg, if i < 3 { "init" } else { "bo" });
        }
        assert_eq!(db.len(), 5);
        assert_eq!(db.with_tag("init").count(), 3);
        // Best is the config closest to the origin... u=0.5 -> x=0.
        let best = db.best().unwrap();
        assert!(best.total <= db.records()[0].total);
        let top2 = db.top_k(2);
        assert!(top2[0].total <= top2[1].total);
    }

    #[test]
    fn save_load_validates_layout() {
        let obj = SplitSphere::new();
        let mut db = Database::for_objective("sphere", &obj);
        let cfg = obj.default_config();
        db.evaluate_and_record(&obj, &cfg, "x");
        let path = tmp("layout");
        db.save(&path).unwrap();
        let loaded = Database::load(&path, Some(&obj)).unwrap();
        assert_eq!(loaded, db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_space() {
        let obj = SplitSphere::new();
        let mut db = Database::for_objective("sphere", &obj);
        db.evaluate_and_record(&obj, &obj.default_config(), "t");
        db.param_names = vec!["zzz".into()];
        let path = tmp("wrong");
        db.save(&path).unwrap();
        assert!(Database::load(&path, Some(&obj)).is_err());
        // Without validation it loads (but record arity still checked).
        assert!(Database::load::<SplitSphere>(&path, None).is_err()); // arity 3 != 1
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_checks_layout() {
        let obj = SplitSphere::new();
        let mut a = Database::for_objective("a", &obj);
        let mut b = Database::for_objective("b", &obj);
        b.evaluate_and_record(&obj, &obj.default_config(), "t");
        a.merge(b).unwrap();
        assert_eq!(a.len(), 1);
        let mut c = Database::for_objective("c", &obj);
        c.param_names.push("extra".into());
        assert!(a.merge(c).is_err());
    }

    #[test]
    fn transfer_seed_and_training_data() {
        let obj = SplitSphere::new();
        let mut db = Database::for_objective("sphere", &obj);
        for i in 0..4 {
            let u = vec![i as f64 / 3.0; 3];
            let cfg = obj.space().decode(&u).unwrap();
            db.evaluate_and_record(&obj, &cfg, "t");
        }
        let seed = db.to_transfer_seed();
        assert_eq!(seed.points.len(), 4);
        let (xs, ys) = db.training_data(&obj);
        assert_eq!(xs.len(), 4);
        assert_eq!(ys.len(), 4);
        assert!(xs.iter().all(|u| u.len() == 3));
        assert!(db.summary().unwrap().n == 4);
    }
}
