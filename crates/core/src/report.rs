//! Human-readable tuning reports.
//!
//! A tuning campaign produces a lot of structured evidence — sensitivity
//! scores, the influence DAG, the search plan, per-search traces, the
//! final configuration. [`render_markdown`] assembles it into one markdown
//! document a performance engineer can attach to a PR or ticket, which is
//! how tuning results actually circulate in practice.

use crate::methodology::{MethodologyReport, PlanExecution};
use crate::objective::Objective;
use std::fmt::Write as _;

/// Render a full campaign report (analysis + execution) as markdown.
pub fn render_markdown<O: Objective + ?Sized>(
    objective: &O,
    title: &str,
    report: &MethodologyReport,
    exec: Option<&PlanExecution>,
) -> String {
    let mut md = String::new();
    let space = objective.space();
    writeln!(md, "# Tuning report: {title}\n").unwrap();
    writeln!(
        md,
        "- **Search space**: {} parameters, {} constraints",
        space.dim(),
        space.constraints().len()
    )
    .unwrap();
    writeln!(
        md,
        "- **Routines**: {}",
        objective.routine_names().join(", ")
    )
    .unwrap();
    writeln!(
        md,
        "- **Sensitivity cost**: {} evaluations ({} variations/parameter)",
        report.scores.observation_cost(),
        report.scores.variations()
    )
    .unwrap();
    writeln!(
        md,
        "- **Cut-off**: {:.0}%\n",
        report.partition.cutoff() * 100.0
    )
    .unwrap();

    writeln!(md, "## Search space\n").unwrap();
    writeln!(md, "{}", space.describe_markdown()).unwrap();

    // Top sensitivities per routine.
    writeln!(md, "## Sensitivity analysis\n").unwrap();
    for routine in objective.routine_names() {
        if let Some(table) = report.scores.top_k(&routine, 5) {
            writeln!(md, "**{routine}** (top 5):\n").unwrap();
            writeln!(md, "| Parameter | Variability |").unwrap();
            writeln!(md, "|---|---|").unwrap();
            for (name, v) in &table.rows {
                writeln!(md, "| {name} | {:.1}% |", v * 100.0).unwrap();
            }
            writeln!(md).unwrap();
        }
    }

    // Interdependencies that survived the cut-off.
    writeln!(md, "## Detected interdependencies\n").unwrap();
    let cross = report
        .graph
        .cross_edges(report.partition.cutoff())
        .unwrap_or_default();
    if cross.is_empty() {
        writeln!(
            md,
            "None above the cut-off — all routines tune independently.\n"
        )
        .unwrap();
    } else {
        writeln!(md, "| Parameter | From | Influences | Score |").unwrap();
        writeln!(md, "|---|---|---|---|").unwrap();
        for e in &cross {
            writeln!(
                md,
                "| {} | {} | {} | {:.0}% |",
                report.graph.params()[e.param],
                e.from
                    .map(|r| report.graph.routines()[r].as_str())
                    .unwrap_or("-"),
                report.graph.routines()[e.to],
                e.score * 100.0
            )
            .unwrap();
        }
        writeln!(md).unwrap();
    }

    // The plan.
    writeln!(md, "## Search plan\n").unwrap();
    writeln!(md, "```text\n{}```\n", report.plan.describe()).unwrap();
    writeln!(
        md,
        "Total budget: **{} evaluations** across {} searches.\n",
        report.plan.total_budget(),
        report.plan.searches().count()
    )
    .unwrap();

    // Execution results.
    if let Some(exec) = exec {
        writeln!(md, "## Results\n").unwrap();
        writeln!(md, "| Search | Evals | Best value | Wall time |").unwrap();
        writeln!(md, "|---|---|---|---|").unwrap();
        for (name, o) in &exec.searches {
            writeln!(
                md,
                "| {name} | {} | {:.6} | {:.2?} |",
                o.n_evals, o.best_value, o.wall_time
            )
            .unwrap();
        }
        writeln!(md).unwrap();
        writeln!(
            md,
            "**Final objective: {:.6}** after {} evaluations ({:.2?}).\n",
            exec.final_value, exec.total_evals, exec.wall_time
        )
        .unwrap();
        writeln!(md, "### Final configuration\n").unwrap();
        writeln!(md, "```text").unwrap();
        for part in space.format_config(&exec.final_config).split(", ") {
            writeln!(md, "{part}").unwrap();
        }
        writeln!(md, "```").unwrap();
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bo::BoConfig;
    use crate::methodology::{Methodology, MethodologyConfig};
    use crate::objective::test_objectives::CoupledSphere;
    use crate::sensitivity::VariationPolicy;

    #[test]
    fn report_contains_all_sections() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            cutoff: 0.10,
            variation_policy: VariationPolicy::Spread { count: 4 },
            bo: BoConfig {
                n_init: 4,
                n_candidates: 32,
                n_local: 4,
                seed: 1,
                ..Default::default()
            },
            evals_per_dim: 4,
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let (report, exec) = m.run(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "coupled sphere", &report, Some(&exec));
        for needle in [
            "# Tuning report: coupled sphere",
            "## Search space",
            "## Sensitivity analysis",
            "## Detected interdependencies",
            "## Search plan",
            "## Results",
            "Final configuration",
            "| x1 |", // the cross-influencing parameter appears
        ] {
            assert!(md.contains(needle), "missing section: {needle}\n{md}");
        }
    }

    #[test]
    fn report_without_execution_omits_results() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            variation_policy: VariationPolicy::Spread { count: 3 },
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let report = m.analyze(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "analysis only", &report, None);
        assert!(md.contains("## Search plan"));
        assert!(!md.contains("## Results"));
    }

    #[test]
    fn independent_case_reports_no_interdependencies() {
        use crate::objective::test_objectives::SplitSphere;
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            variation_policy: VariationPolicy::Spread { count: 3 },
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let report = m.analyze(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "split", &report, None);
        assert!(md.contains("None above the cut-off"));
    }
}
