//! Human-readable tuning reports.
//!
//! A tuning campaign produces a lot of structured evidence — sensitivity
//! scores, the influence DAG, the search plan, per-search traces, the
//! final configuration. [`render_markdown`] assembles it into one markdown
//! document a performance engineer can attach to a PR or ticket, which is
//! how tuning results actually circulate in practice.

use crate::methodology::{MethodologyReport, PlanExecution, SearchDisposition};
use crate::objective::Objective;
use std::fmt::Write as _;

// `write!` into a `String` is infallible; `let _ =` states that without a
// reachable-in-theory panic path at every call site.

/// Render a full campaign report (analysis + execution) as markdown.
pub fn render_markdown<O: Objective + ?Sized>(
    objective: &O,
    title: &str,
    report: &MethodologyReport,
    exec: Option<&PlanExecution>,
) -> String {
    let mut md = String::new();
    let space = objective.space();
    let _ = writeln!(md, "# Tuning report: {title}\n");
    let _ = writeln!(
        md,
        "- **Search space**: {} parameters, {} constraints",
        space.dim(),
        space.constraints().len()
    );
    let _ = writeln!(
        md,
        "- **Routines**: {}",
        objective.routine_names().join(", ")
    );
    let _ = writeln!(
        md,
        "- **Sensitivity cost**: {} evaluations ({} variations/parameter)",
        report.scores.observation_cost(),
        report.scores.variations()
    );
    let _ = writeln!(
        md,
        "- **Cut-off**: {:.0}%\n",
        report.partition.cutoff() * 100.0
    );

    let _ = writeln!(md, "## Search space\n");
    let _ = writeln!(md, "{}", space.describe_markdown());

    // Top sensitivities per routine.
    let _ = writeln!(md, "## Sensitivity analysis\n");
    for routine in objective.routine_names() {
        if let Some(table) = report.scores.top_k(&routine, 5) {
            let _ = writeln!(md, "**{routine}** (top 5):\n");
            let _ = writeln!(md, "| Parameter | Variability |");
            let _ = writeln!(md, "|---|---|");
            for (name, v) in &table.rows {
                let _ = writeln!(md, "| {name} | {:.1}% |", v * 100.0);
            }
            let _ = writeln!(md);
        }
    }

    // Interdependencies that survived the cut-off.
    let _ = writeln!(md, "## Detected interdependencies\n");
    let cross = report
        .graph
        .cross_edges(report.partition.cutoff())
        .unwrap_or_default();
    if cross.is_empty() {
        let _ = writeln!(
            md,
            "None above the cut-off — all routines tune independently.\n"
        );
    } else {
        let _ = writeln!(md, "| Parameter | From | Influences | Score |");
        let _ = writeln!(md, "|---|---|---|---|");
        for e in &cross {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {:.0}% |",
                report.graph.params()[e.param],
                e.from
                    .map(|r| report.graph.routines()[r].as_str())
                    .unwrap_or("-"),
                report.graph.routines()[e.to],
                e.score * 100.0
            );
        }
        let _ = writeln!(md);
    }

    // The plan.
    let _ = writeln!(md, "## Search plan\n");
    let _ = writeln!(md, "```text\n{}```\n", report.plan.describe());
    let _ = writeln!(
        md,
        "Total budget: **{} evaluations** across {} searches.\n",
        report.plan.total_budget(),
        report.plan.searches().count()
    );

    // Execution results.
    if let Some(exec) = exec {
        let _ = writeln!(md, "## Results\n");
        let _ = writeln!(md, "| Search | Evals | Best value | Wall time |");
        let _ = writeln!(md, "|---|---|---|---|");
        for (name, o) in &exec.searches {
            let _ = writeln!(
                md,
                "| {name} | {} | {:.6} | {:.2?} |",
                o.n_evals, o.best_value, o.wall_time
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "**Final objective: {:.6}** after {} evaluations ({:.2?}).\n",
            exec.final_value, exec.total_evals, exec.wall_time
        );

        // Failure ledger (resilient executions only). A clean resilient run
        // still lists its per-search entries — "nothing failed" is evidence
        // worth recording, not an absence of information.
        if !exec.ledger.entries.is_empty() {
            let _ = writeln!(md, "### Failure ledger\n");
            let _ = writeln!(
                md,
                "{} of {} searches degraded; {} failed evaluations in total.\n",
                exec.ledger.n_degraded(),
                exec.ledger.entries.len(),
                exec.ledger.total_failures()
            );
            let _ = writeln!(
                md,
                "| Search | Stage | Ok | Failed | Budget | Disposition |"
            );
            let _ = writeln!(md, "|---|---|---|---|---|---|");
            for e in &exec.ledger.entries {
                let disposition = match &e.disposition {
                    SearchDisposition::Completed => "completed".to_string(),
                    SearchDisposition::Degraded(reason) => format!("degraded: {reason}"),
                };
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} | {:.2} | {} |",
                    e.search, e.stage, e.n_ok, e.n_failed, e.budget_spent, disposition
                );
            }
            let _ = writeln!(md);
        }

        let _ = writeln!(md, "### Final configuration\n");
        let _ = writeln!(md, "```text");
        for part in space.format_config(&exec.final_config).split(", ") {
            let _ = writeln!(md, "{part}");
        }
        let _ = writeln!(md, "```");
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bo::BoConfig;
    use crate::methodology::{Methodology, MethodologyConfig};
    use crate::objective::test_objectives::CoupledSphere;
    use crate::sensitivity::VariationPolicy;

    #[test]
    fn report_contains_all_sections() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            cutoff: 0.10,
            variation_policy: VariationPolicy::Spread { count: 4 },
            bo: BoConfig {
                n_init: 4,
                n_candidates: 32,
                n_local: 4,
                seed: 1,
                ..Default::default()
            },
            evals_per_dim: 4,
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let (report, exec) = m.run(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "coupled sphere", &report, Some(&exec));
        for needle in [
            "# Tuning report: coupled sphere",
            "## Search space",
            "## Sensitivity analysis",
            "## Detected interdependencies",
            "## Search plan",
            "## Results",
            "Final configuration",
            "| x1 |", // the cross-influencing parameter appears
        ] {
            assert!(md.contains(needle), "missing section: {needle}\n{md}");
        }
        // The legacy executor keeps no ledger; the section is omitted.
        assert!(!md.contains("Failure ledger"));
    }

    #[test]
    fn report_without_execution_omits_results() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            variation_policy: VariationPolicy::Spread { count: 3 },
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let report = m.analyze(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "analysis only", &report, None);
        assert!(md.contains("## Search plan"));
        assert!(!md.contains("## Results"));
    }

    #[test]
    fn independent_case_reports_no_interdependencies() {
        use crate::objective::test_objectives::SplitSphere;
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            variation_policy: VariationPolicy::Spread { count: 3 },
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let report = m.analyze(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "split", &report, None);
        assert!(md.contains("None above the cut-off"));
    }

    #[test]
    fn resilient_run_report_includes_failure_ledger() {
        use crate::objective::test_objectives::SplitSphere;
        use crate::resilience::ResilienceConfig;
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            variation_policy: VariationPolicy::Spread { count: 4 },
            bo: BoConfig {
                n_init: 4,
                n_candidates: 32,
                n_local: 4,
                seed: 1,
                ..Default::default()
            },
            evals_per_dim: 4,
            resilience: Some(ResilienceConfig::default()),
            ..Default::default()
        });
        let owners = [("x0", "r0"), ("x1", "r0"), ("x2", "r1")];
        let (report, exec) = m.run(&obj, &owners, &obj.default_config()).unwrap();
        let md = render_markdown(&obj, "resilient split", &report, Some(&exec));
        assert!(md.contains("### Failure ledger"), "{md}");
        assert!(md.contains("| final |"), "{md}");
        assert!(md.contains("0 of"), "clean run: zero degraded\n{md}");
    }
}
