//! Grid-search baseline.
//!
//! The paper's related work cites grid search (with random search) as the
//! traditional-but-inferior alternative to BO in massive spaces; it is
//! provided for completeness and for small exhaustive sweeps (e.g. the
//! paper's MPI-grid exploration, whose expert-constrained candidate set is
//! small enough to enumerate — "the narrowed set of final possibilities
//! ... allows obtaining the MPI-grid optimal partition without incurring
//! the overhead of a guided BO search").

use crate::bo::SearchOutcome;
use crate::objective::Objective;
use crate::{CoreError, Result};
use cets_space::Subspace;
use std::time::Instant;

/// Exhaustively evaluate an axis-aligned grid over a [`Subspace`],
/// `levels` points per dimension (bin centers), skipping invalid
/// configurations. Evaluation stops at `max_evals` grid points.
///
/// The grid has `levels^dim` points — the exponential growth that makes
/// this baseline unusable beyond a handful of dimensions is exactly why
/// the paper moves to guided search.
pub fn grid_search<O: Objective + ?Sized>(
    objective: &O,
    subspace: &Subspace,
    levels: usize,
    max_evals: usize,
) -> Result<SearchOutcome> {
    if levels == 0 || max_evals == 0 {
        return Err(CoreError::BadConfig(
            "grid_search: levels and max_evals must be > 0".into(),
        ));
    }
    let d = subspace.dim();
    let total = (levels as f64).powi(d as i32);
    let start = Instant::now();

    let mut history: Vec<(Vec<f64>, f64)> = Vec::new();
    let mut idx = vec![0usize; d];
    let mut exhausted = false;
    while !exhausted && history.len() < max_evals {
        let u: Vec<f64> = idx
            .iter()
            .map(|&k| (k as f64 + 0.5) / levels as f64)
            .collect();
        if subspace.is_valid_active(&u) {
            let cfg = subspace.lift(&u)?;
            let y = objective.evaluate(&cfg).total;
            history.push((u, y));
        }
        // Odometer increment.
        exhausted = true;
        for k in idx.iter_mut() {
            *k += 1;
            if *k < levels {
                exhausted = false;
                break;
            }
            *k = 0;
        }
    }
    if history.is_empty() {
        return Err(CoreError::SearchStalled(format!(
            "grid of {total} points contained no valid configuration"
        )));
    }

    let mut best = f64::INFINITY;
    let mut best_idx = 0;
    let mut trace = Vec::with_capacity(history.len());
    for (i, (_, y)) in history.iter().enumerate() {
        if *y < best {
            best = *y;
            best_idx = i;
        }
        trace.push(best);
    }
    Ok(SearchOutcome {
        best_config: subspace.lift(&history[best_idx].0)?,
        best_value: best,
        n_evals: history.len(),
        incumbent_trace: trace,
        history,
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;
    use crate::objective::CountingObjective;
    use cets_space::{Constraint, SearchSpace, Subspace};

    #[test]
    fn finds_grid_optimum() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        // 5 levels/dim on [-5,5]: bin centers at -4,-2,0,2,4 → optimum 0.
        let out = grid_search(&obj, &sub, 5, 1000).unwrap();
        assert_eq!(out.n_evals, 125);
        assert!(out.best_value.abs() < 1e-9, "best {}", out.best_value);
    }

    #[test]
    fn respects_eval_cap() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let counted = CountingObjective::new(&obj);
        let out = grid_search(&counted, &sub, 10, 50).unwrap();
        assert_eq!(out.n_evals, 50);
        assert_eq!(counted.count(), 50);
    }

    #[test]
    fn skips_invalid_points() {
        struct Half(SearchSpace);
        impl Objective for Half {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &cets_space::Config) -> crate::Observation {
                crate::Observation::scalar(cfg[0].as_f64())
            }
            fn default_config(&self) -> cets_space::Config {
                self.0.config_from_pairs(&[("x", 0.9)]).unwrap()
            }
        }
        let space = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .constraint(Constraint::new("hi", "x >= 0.5", |s, c| {
                s.get_f64(c, "x").unwrap() >= 0.5
            }))
            .build();
        let obj = Half(space);
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let out = grid_search(&obj, &sub, 10, 100).unwrap();
        assert_eq!(out.n_evals, 5, "only upper-half bin centers are valid");
        assert!(out.best_value >= 0.5);
    }

    #[test]
    fn empty_grid_errors() {
        let space = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .constraint(Constraint::new("never", "false", |_, _| false))
            .build();
        struct O(SearchSpace);
        impl Objective for O {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, _: &cets_space::Config) -> crate::Observation {
                crate::Observation::scalar(0.0)
            }
            fn default_config(&self) -> cets_space::Config {
                vec![cets_space::ParamValue::Real(0.5)]
            }
        }
        let obj = O(space);
        // Subspace construction itself rejects invalid defaults, so build
        // the subspace on an unconstrained twin space... simplest: expect
        // Subspace::full to fail here, which is also a correct outcome.
        let sub = Subspace::full(obj.space(), obj.default_config());
        assert!(sub.is_err());
    }

    #[test]
    fn bad_args_rejected() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        assert!(matches!(
            grid_search(&obj, &sub, 0, 10),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            grid_search(&obj, &sub, 3, 0),
            Err(CoreError::BadConfig(_))
        ));
    }
}
