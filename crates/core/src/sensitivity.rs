//! Sensitivity-analysis driver: varies each parameter individually on a
//! live [`Objective`] and distills [`SensitivityScores`].
//!
//! Two variation policies cover the paper's two settings:
//!
//! * [`VariationPolicy::Multiplicative`] — "100 individual variations ...
//!   each variation involved increasing the variable value by 10% relative
//!   to the preceding iteration" (synthetic functions, Section IV-B);
//! * [`VariationPolicy::Spread`] — a handful of values spread across the
//!   parameter's domain, standing in for the expert-suggested variations
//!   used on RT-TDDFT ("we set a random baseline and incorporate five
//!   individual variations per parameter").
//!
//! Observation cost is exactly `1 + D × V` objective evaluations — the
//! quantity the methodology minimizes relative to full orthogonality
//! analyses.

use crate::objective::Objective;
use crate::{CoreError, Result};
use cets_space::{Config, ParamDef, ParamValue, SearchSpace};
use cets_stats::SensitivityScores;

/// How variation values are chosen for each parameter.
#[derive(Debug, Clone)]
pub enum VariationPolicy {
    /// Geometric ramp: `value_k = baseline · (1 + factor)^k`, snapped into
    /// the parameter's domain. `count` variations per parameter.
    Multiplicative {
        /// Number of variations per parameter (the paper's `V`, 100 for the
        /// synthetic study).
        count: usize,
        /// Relative step (0.10 = +10% per variation).
        factor: f64,
    },
    /// `count` values spread evenly across the parameter's domain,
    /// preferring values different from the baseline.
    Spread {
        /// Number of variations per parameter (5 in the paper's RT-TDDFT
        /// study).
        count: usize,
    },
}

impl VariationPolicy {
    fn count(&self) -> usize {
        match self {
            VariationPolicy::Multiplicative { count, .. } => *count,
            VariationPolicy::Spread { count } => *count,
        }
    }

    /// Candidate values for one parameter, in preference order. May return
    /// more candidates than `count`; the driver keeps the first `count`
    /// that produce *valid* configurations.
    fn candidates(&self, def: &ParamDef, baseline: &ParamValue) -> Vec<ParamValue> {
        match self {
            VariationPolicy::Multiplicative { count, factor } => {
                let base = baseline.as_f64();
                // A zero baseline would never move; nudge it onto the
                // domain's scale first.
                let start = if base.abs() < 1e-12 {
                    domain_scale(def) * 0.01
                } else {
                    base
                };
                (1..=*count)
                    .map(|k| snap(def, start * (1.0 + factor).powi(k as i32)))
                    .collect()
            }
            VariationPolicy::Spread { count } => {
                // Bin centers across the unit interval, then a second pass
                // offset by half a bin as spares for validity rejections.
                let n = *count;
                let mut cands: Vec<ParamValue> = (0..n)
                    .map(|k| def.decode((k as f64 + 0.5) / n as f64))
                    .collect();
                cands.extend((0..n).map(|k| def.decode(k as f64 / n as f64)));
                // Prefer values that actually differ from the baseline.
                cands.sort_by_key(|v| v == baseline);
                cands
            }
        }
    }
}

/// Typical magnitude of a parameter's domain, for zero-baseline nudges.
fn domain_scale(def: &ParamDef) -> f64 {
    match def {
        ParamDef::Real { lo, hi } => (hi - lo).abs(),
        ParamDef::Integer { lo, hi } => (hi - lo) as f64,
        ParamDef::Ordinal { values } => values
            .iter()
            .cloned()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1.0),
        ParamDef::Categorical { options } => options.len() as f64,
    }
}

/// Snap a raw numeric target into the parameter's domain.
fn snap(def: &ParamDef, target: f64) -> ParamValue {
    match def {
        ParamDef::Real { lo, hi } => ParamValue::Real(target.clamp(*lo, *hi)),
        ParamDef::Integer { lo, hi } => ParamValue::Int((target.round() as i64).clamp(*lo, *hi)),
        ParamDef::Ordinal { values } => {
            let nearest = values
                .iter()
                .cloned()
                .min_by(|a, b| {
                    (a - target)
                        .abs()
                        .partial_cmp(&(b - target).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                // An empty ordinal domain has nothing to snap to; keep the
                // raw target and let validity checks reject it downstream.
                .unwrap_or(target);
            ParamValue::Real(nearest)
        }
        ParamDef::Categorical { options } => {
            ParamValue::Index((target.round().max(0.0) as usize).min(options.len() - 1))
        }
    }
}

/// Generate up to `count` *valid* single-parameter variations of
/// `baseline`, padding with the last valid one (or the baseline itself)
/// when constraints reject too many candidates — a padded variation
/// changes nothing and so contributes zero variability, which conservatively
/// under-reports rather than inventing influence.
fn valid_variations(
    space: &SearchSpace,
    baseline: &Config,
    param_idx: usize,
    policy: &VariationPolicy,
) -> Vec<Config> {
    let count = policy.count();
    let def = &space.defs()[param_idx];
    let mut out: Vec<Config> = Vec::with_capacity(count);
    for v in policy.candidates(def, &baseline[param_idx]) {
        if out.len() >= count {
            break;
        }
        let mut cfg = baseline.clone();
        cfg[param_idx] = v;
        if space.is_valid(&cfg) {
            out.push(cfg);
        }
    }
    let pad = out.last().cloned().unwrap_or_else(|| baseline.clone());
    while out.len() < count {
        out.push(pad.clone());
    }
    out
}

/// Run the full per-routine sensitivity analysis.
///
/// The returned scores cover every routine of `objective` **plus a final
/// pseudo-routine `"total"`** scoring influence on the overall objective —
/// so one pass serves both the paper's "insights about parameters"
/// (overall-runtime sensitivity) and "inferring independent routines"
/// (per-routine sensitivity).
pub fn routine_sensitivity<O: Objective + ?Sized>(
    objective: &O,
    baseline: &Config,
    policy: &VariationPolicy,
) -> Result<SensitivityScores> {
    let space = objective.space();
    let param_names = space.names().to_vec();
    let mut routine_names = objective.routine_names();
    routine_names.push("total".to_string());

    let observe = |cfg: &Config| -> Vec<f64> {
        let obs = objective.evaluate(cfg);
        let mut row = obs.routines;
        row.push(obs.total);
        row
    };

    let base_out = observe(baseline);
    if base_out.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::SearchStalled(
            "baseline evaluation produced a non-finite value; \
             sensitivity analysis needs a runnable baseline"
                .into(),
        ));
    }
    let mut varied: Vec<Vec<Vec<f64>>> = Vec::with_capacity(param_names.len());
    for p in 0..param_names.len() {
        let rows: Vec<Vec<f64>> = valid_variations(space, baseline, p, policy)
            .iter()
            .map(|cfg| {
                let row = observe(cfg);
                // A crashed or non-finite variation is substituted with the
                // baseline row: it contributes zero variability,
                // conservatively under-reporting influence instead of
                // letting a NaN poison every downstream score.
                if row.iter().any(|v| !v.is_finite()) {
                    base_out.clone()
                } else {
                    row
                }
            })
            .collect();
        varied.push(rows);
    }
    Ok(SensitivityScores::from_observations(
        &param_names,
        &routine_names,
        &base_out,
        &varied,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::{CoupledSphere, SplitSphere};
    use crate::objective::CountingObjective;

    fn baseline3() -> Config {
        vec![
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
        ]
    }

    #[test]
    fn detects_ownership_structure() {
        let obj = SplitSphere::new();
        let s =
            routine_sensitivity(&obj, &baseline3(), &VariationPolicy::Spread { count: 5 }).unwrap();
        // x0 influences r0, not r1.
        assert!(s.score_by_name("x0", "r0").unwrap() > 0.5);
        assert_eq!(s.score_by_name("x0", "r1").unwrap(), 0.0);
        // x2 influences r1, not r0.
        assert!(s.score_by_name("x2", "r1").unwrap() > 0.5);
        assert_eq!(s.score_by_name("x2", "r0").unwrap(), 0.0);
        // Everything influences the total.
        assert!(s.score_by_name("x1", "total").unwrap() > 0.0);
    }

    #[test]
    fn detects_cross_influence() {
        let obj = CoupledSphere::new();
        let s =
            routine_sensitivity(&obj, &baseline3(), &VariationPolicy::Spread { count: 5 }).unwrap();
        // x1 cross-influences r1 (the (x1·x2)² term).
        assert!(
            s.score_by_name("x1", "r1").unwrap() > 0.1,
            "cross influence missed: {:?}",
            s.score_by_name("x1", "r1")
        );
        // x0 still doesn't touch r1.
        assert_eq!(s.score_by_name("x0", "r1").unwrap(), 0.0);
    }

    #[test]
    fn observation_cost_is_one_plus_dv() {
        let obj = SplitSphere::new();
        let counted = CountingObjective::new(&obj);
        let s = routine_sensitivity(
            &counted,
            &baseline3(),
            &VariationPolicy::Spread { count: 4 },
        )
        .unwrap();
        assert_eq!(counted.count(), 1 + 3 * 4);
        assert_eq!(s.observation_cost(), 1 + 3 * 4);
    }

    #[test]
    fn multiplicative_policy_moves_values() {
        let obj = SplitSphere::new();
        let s = routine_sensitivity(
            &obj,
            &baseline3(),
            &VariationPolicy::Multiplicative {
                count: 10,
                factor: 0.1,
            },
        )
        .unwrap();
        // x0 at 1.0 ramped by 10% steps: clearly influences r0.
        assert!(s.score_by_name("x0", "r0").unwrap() > 0.2);
        assert_eq!(s.variations(), 10);
    }

    #[test]
    fn multiplicative_zero_baseline_nudges() {
        let obj = SplitSphere::new();
        let zero = vec![
            ParamValue::Real(0.0),
            ParamValue::Real(0.0),
            ParamValue::Real(1.0),
        ];
        // Baseline r0 = 0 would be degenerate; use a baseline where totals
        // are nonzero but x0 itself is zero.
        let s = routine_sensitivity(
            &obj,
            &zero,
            &VariationPolicy::Multiplicative {
                count: 20,
                factor: 0.1,
            },
        );
        // r0 is 0 at baseline -> degenerate zero-baseline error is the
        // correct, explicit outcome.
        assert!(s.is_err());
    }

    #[test]
    fn non_finite_variation_rows_fall_back_to_baseline() {
        use crate::objective::Observation;
        use cets_space::SearchSpace;
        // r0 blows up (NaN) whenever x0 leaves [0, 2]; the spread variations
        // for x0 land mostly outside that band.
        struct Spiky(SearchSpace);
        impl Objective for Spiky {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r0".into(), "r1".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                let (a, b) = (cfg[0].as_f64(), cfg[1].as_f64());
                let r0 = if (0.0..=2.0).contains(&a) {
                    a * a
                } else {
                    f64::NAN
                };
                Observation {
                    total: r0 + b * b,
                    routines: vec![r0, b * b],
                }
            }
            fn default_config(&self) -> Config {
                vec![ParamValue::Real(1.0), ParamValue::Real(1.0)]
            }
        }
        let obj = Spiky(
            SearchSpace::builder()
                .real("x0", 0.0, 10.0)
                .real("x1", 0.0, 10.0)
                .build(),
        );
        let s = routine_sensitivity(
            &obj,
            &obj.default_config(),
            &VariationPolicy::Spread { count: 5 },
        )
        .unwrap();
        // Every score stays finite despite the NaN region...
        for p in ["x0", "x1"] {
            for r in ["r0", "r1", "total"] {
                let v = s.score_by_name(p, r).unwrap();
                assert!(v.is_finite(), "score({p}, {r}) = {v}");
            }
        }
        // ...and the clean parameter's influence is still detected.
        assert!(s.score_by_name("x1", "r1").unwrap() > 0.5);
    }

    #[test]
    fn non_finite_baseline_is_an_error() {
        use crate::objective::Observation;
        use cets_space::SearchSpace;
        struct NanAtBaseline(SearchSpace);
        impl Objective for NanAtBaseline {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                let x = cfg[0].as_f64();
                if x == 1.0 {
                    Observation::scalar(f64::NAN)
                } else {
                    Observation::scalar(x)
                }
            }
            fn default_config(&self) -> Config {
                vec![ParamValue::Real(1.0)]
            }
        }
        let obj = NanAtBaseline(SearchSpace::builder().real("x", 0.0, 10.0).build());
        let err = routine_sensitivity(
            &obj,
            &obj.default_config(),
            &VariationPolicy::Spread { count: 3 },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SearchStalled(_)), "{err}");
    }

    #[test]
    fn spread_candidates_cover_domain() {
        let def = ParamDef::Integer { lo: 0, hi: 9 };
        let pol = VariationPolicy::Spread { count: 5 };
        let cands = pol.candidates(&def, &ParamValue::Int(3));
        // First 5 candidates (bin centers) span the range.
        let vals: Vec<i64> = cands.iter().take(5).map(|v| v.as_i64()).collect();
        assert!(vals.iter().max().unwrap() - vals.iter().min().unwrap() >= 6);
    }

    #[test]
    fn snap_respects_domains() {
        assert_eq!(
            snap(&ParamDef::Real { lo: 0.0, hi: 1.0 }, 5.0),
            ParamValue::Real(1.0)
        );
        assert_eq!(
            snap(&ParamDef::Integer { lo: 1, hi: 8 }, 3.4),
            ParamValue::Int(3)
        );
        assert_eq!(
            snap(
                &ParamDef::Ordinal {
                    values: vec![1.0, 2.0, 4.0, 8.0]
                },
                5.5
            ),
            ParamValue::Real(4.0)
        );
    }
}
