//! The "insights about parameters" phase (paper Section IV-B): sample the
//! objective, then run feature importance, Pearson correlation and
//! distribution summaries over the data.

use crate::objective::Objective;
use crate::Result;
use cets_space::Config;
use cets_stats::{
    one_in_ten_ok, pearson::correlated_pairs, RandomForest, RandomForestConfig, Summary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`gather_insights`].
#[derive(Debug, Clone)]
pub struct InsightsConfig {
    /// Number of sampled application evaluations (the paper uses 100 per
    /// case study, then 100 more for the modelling analyses).
    pub n_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Random-forest configuration for feature importance.
    pub forest: RandomForestConfig,
    /// Report parameter pairs with `|pearson| >=` this threshold (the paper
    /// flags the tb/tb_sm pair at ~0.6).
    pub correlation_threshold: f64,
}

impl Default for InsightsConfig {
    fn default() -> Self {
        InsightsConfig {
            n_samples: 100,
            seed: 0,
            forest: RandomForestConfig::default(),
            correlation_threshold: 0.5,
        }
    }
}

/// Data-driven insights about the tuning problem.
#[derive(Debug, Clone)]
pub struct FeatureInsights {
    /// Parameter names, fixing the order of [`FeatureInsights::importance`].
    pub param_names: Vec<String>,
    /// Normalized random-forest feature importances for the total runtime.
    pub importance: Vec<f64>,
    /// Correlated parameter pairs `(a, b, r)` above the threshold, by |r|
    /// descending. Correlation here is measured across *valid* sampled
    /// configurations, so constraint-induced couplings (like the paper's
    /// occupancy rule tying threadblock size to blocks-per-SM) show up even
    /// though sampling is otherwise independent.
    pub correlated: Vec<(String, String, f64)>,
    /// Whether the sample satisfies the one-in-ten rule for this
    /// dimensionality.
    pub one_in_ten: bool,
    /// Distribution of the sampled total runtimes.
    pub runtime_summary: Summary,
    /// Out-of-bag R² of the importance model (`None` if unavailable);
    /// gauge of how much to trust the importances.
    pub model_r2: Option<f64>,
    /// The raw sample, reusable by later phases. Contains only finite
    /// observations; crashed or non-finite evaluations are counted in
    /// [`FeatureInsights::n_non_finite`] instead.
    pub samples: Vec<(Config, f64)>,
    /// Sampled evaluations discarded because the objective returned a NaN
    /// or infinite total. A non-zero count is itself an insight: part of
    /// the space fails to run.
    pub n_non_finite: usize,
}

impl FeatureInsights {
    /// Parameters ranked by importance (descending), as `(name, score)`.
    pub fn ranked_importance(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .param_names
            .iter()
            .cloned()
            .zip(self.importance.iter().cloned())
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// Sample `objective` and compute the insight battery.
pub fn gather_insights<O: Objective + ?Sized>(
    objective: &O,
    cfg: &InsightsConfig,
) -> Result<FeatureInsights> {
    let space = objective.space();
    // Contraction-aware fallback sampler (see [`crate::contraction`]).
    let sampler = crate::contraction::contraction_aware_sampler(space);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut samples: Vec<(Config, f64)> = Vec::with_capacity(cfg.n_samples);
    let mut features: Vec<Vec<f64>> = Vec::with_capacity(cfg.n_samples);
    let mut targets: Vec<f64> = Vec::with_capacity(cfg.n_samples);
    let mut n_non_finite = 0usize;
    for _ in 0..cfg.n_samples {
        // Prefer the objective's constructive sampler (heavily constrained
        // spaces defeat blind rejection); fall back to rejection sampling.
        let config = match objective.sample_valid(&mut rng) {
            Some(c) => c,
            None => sampler.uniform(&mut rng)?,
        };
        let y = objective.evaluate(&config).total;
        // A NaN total would propagate silently through both the Pearson
        // sums and the forest's variance splits; screen it out and count it.
        if !y.is_finite() {
            n_non_finite += 1;
            continue;
        }
        features.push(space.encode(&config)?);
        targets.push(y);
        samples.push((config, y));
    }
    if samples.is_empty() {
        return Err(crate::CoreError::SearchStalled(format!(
            "all {} sampled evaluations were non-finite; nothing to analyze",
            cfg.n_samples
        )));
    }

    let forest = RandomForest::fit(&features, &targets, &cfg.forest)?;
    let importance = forest.feature_importances().to_vec();
    let model_r2 = forest.oob_r2(&features, &targets);

    // Column-wise features for correlation.
    let d = space.dim();
    let columns: Vec<Vec<f64>> = (0..d)
        .map(|j| features.iter().map(|row| row[j]).collect())
        .collect();
    let correlated = correlated_pairs(&columns, cfg.correlation_threshold)?
        .into_iter()
        .map(|(i, j, r)| (space.names()[i].clone(), space.names()[j].clone(), r))
        .collect();

    Ok(FeatureInsights {
        param_names: space.names().to_vec(),
        importance,
        correlated,
        one_in_ten: one_in_ten_ok(cfg.n_samples, d),
        runtime_summary: Summary::new(&targets)?,
        model_r2,
        samples,
        n_non_finite,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;
    use crate::objective::{CountingObjective, Objective, Observation};
    use cets_space::{Constraint, SearchSpace};

    #[test]
    fn importance_finds_dominant_parameter() {
        // Weight x0 heavily so it dominates the total.
        struct Weighted(SearchSpace);
        impl Objective for Weighted {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                let x: Vec<f64> = cfg.iter().map(|v| v.as_f64()).collect();
                Observation::scalar(100.0 * x[0] * x[0] + x[1] * x[1])
            }
            fn default_config(&self) -> Config {
                self.0.decode(&[0.5, 0.5]).unwrap()
            }
        }
        let obj = Weighted(
            SearchSpace::builder()
                .real("big", -1.0, 1.0)
                .real("small", -1.0, 1.0)
                .build(),
        );
        let ins = gather_insights(
            &obj,
            &InsightsConfig {
                n_samples: 150,
                ..Default::default()
            },
        )
        .unwrap();
        let ranked = ins.ranked_importance();
        assert_eq!(ranked[0].0, "big");
        assert!(ranked[0].1 > 0.8);
        assert!(ins.one_in_ten);
    }

    #[test]
    fn constraint_induced_correlation_detected() {
        // a + b <= 10 over integers: valid samples have negatively
        // correlated a and b near the boundary... use a tight constraint.
        struct Constrained(SearchSpace);
        impl Objective for Constrained {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                Observation::scalar(1.0 + cfg[0].as_f64())
            }
            fn default_config(&self) -> Config {
                self.0.config_from_pairs(&[("a", 1.0), ("b", 1.0)]).unwrap()
            }
        }
        let space = SearchSpace::builder()
            .integer("a", 0, 10)
            .integer("b", 0, 10)
            .constraint(Constraint::new("tight", "9 <= a+b <= 11", |s, c| {
                let sum = s.get_i64(c, "a").unwrap() + s.get_i64(c, "b").unwrap();
                (9..=11).contains(&sum)
            }))
            .build();
        let obj = Constrained(space);
        let ins = gather_insights(
            &obj,
            &InsightsConfig {
                n_samples: 120,
                correlation_threshold: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ins.correlated.len(), 1, "{:?}", ins.correlated);
        assert!(ins.correlated[0].2 < -0.5);
    }

    #[test]
    fn sample_count_and_summary() {
        let obj = SplitSphere::new();
        let counted = CountingObjective::new(&obj);
        let ins = gather_insights(
            &counted,
            &InsightsConfig {
                n_samples: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(counted.count(), 50);
        assert_eq!(ins.samples.len(), 50);
        assert_eq!(ins.runtime_summary.n, 50);
        // 50 samples for 3 dims satisfies 10×3.
        assert!(ins.one_in_ten);
    }

    #[test]
    fn non_finite_observations_are_screened_and_counted() {
        // NaN over half the domain: the analysis must survive on the finite
        // half and report how much was dropped.
        struct HalfBroken(SearchSpace);
        impl Objective for HalfBroken {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                let x = cfg[0].as_f64();
                if x > 0.0 {
                    Observation::scalar(f64::NAN)
                } else {
                    Observation::scalar(100.0 * x * x + cfg[1].as_f64().powi(2))
                }
            }
            fn default_config(&self) -> Config {
                self.0.decode(&[0.25, 0.5]).unwrap()
            }
        }
        let obj = HalfBroken(
            SearchSpace::builder()
                .real("big", -1.0, 1.0)
                .real("small", -1.0, 1.0)
                .build(),
        );
        let ins = gather_insights(
            &obj,
            &InsightsConfig {
                n_samples: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ins.n_non_finite > 50, "n_non_finite {}", ins.n_non_finite);
        assert_eq!(ins.samples.len() + ins.n_non_finite, 200);
        assert!(ins.samples.iter().all(|(_, y)| y.is_finite()));
        assert!(ins.runtime_summary.n == ins.samples.len());
        // The importances are still meaningful on the surviving half.
        assert_eq!(ins.ranked_importance()[0].0, "big");
        assert!(ins.importance.iter().all(|v| v.is_finite()));
        assert!(ins.correlated.iter().all(|(_, _, r)| r.is_finite()));
    }

    #[test]
    fn fully_non_finite_objective_errors_cleanly() {
        struct AllNan(SearchSpace);
        impl Objective for AllNan {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, _cfg: &Config) -> Observation {
                Observation::scalar(f64::NAN)
            }
            fn default_config(&self) -> Config {
                self.0.decode(&[0.5]).unwrap()
            }
        }
        let obj = AllNan(SearchSpace::builder().real("x", 0.0, 1.0).build());
        let err = gather_insights(
            &obj,
            &InsightsConfig {
                n_samples: 10,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, crate::CoreError::SearchStalled(_)));
    }

    #[test]
    fn one_in_ten_flags_small_samples() {
        let obj = SplitSphere::new();
        let ins = gather_insights(
            &obj,
            &InsightsConfig {
                n_samples: 20,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ins.one_in_ten);
    }
}
