//! High-dimensional BO strategies from the paper's Related Work —
//! implemented as comparison baselines.
//!
//! Section II surveys three families the methodology competes with:
//!
//! * **Random embeddings** (Wang et al. IJCAI'13 "REMBO"; Letham et al.
//!   NeurIPS'20): optimize a random `d`-dimensional linear subspace of the
//!   `D`-dimensional space — "these projections can create distortions
//!   when evaluating the objective function";
//! * **Dropout BO** (Li et al. IJCAI'17): per iteration, optimize only
//!   `d` randomly chosen of the `D` dimensions, filling the rest from the
//!   incumbent — "which leads, in general, to slower convergence rate";
//! * **Additive decompositions** (Kandasamy et al. ICML'15) — the
//!   expensive orthogonality analysis the methodology's sensitivity pass
//!   replaces (see [`crate::interaction`] for the cost comparison).
//!
//! [`rembo`] and [`dropout_bo`] implement the first two faithfully enough
//! for shape comparisons (`exp_related_work`): both reuse the same GP,
//! acquisition and budget machinery as the main engine, so differences in
//! outcome reflect the *strategy*, not the implementation.

use crate::bo::{BoConfig, BoSearch, SearchOutcome};
use crate::normal;
use crate::objective::Objective;
use crate::{CoreError, Result};
use cets_gp::Gp;
use cets_space::Subspace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// REMBO-style random-embedding BO: minimize over `y ∈ [-√d, √d]^d`
/// mapped into the full unit cube by `u = clamp(0.5 + A·y, 0, 1)` with a
/// random Gaussian `D×d` matrix `A`.
///
/// The clamping is exactly the distortion the paper's related-work section
/// warns about: large regions of the embedding map onto the cube's faces,
/// so the effective objective has flat plateaus and duplicated optima.
pub fn rembo<O: Objective + ?Sized>(
    objective: &O,
    embed_dim: usize,
    bo: &BoConfig,
) -> Result<SearchOutcome> {
    let space = objective.space();
    let d_full = space.dim();
    let d = embed_dim.clamp(1, d_full);
    if bo.max_evals == 0 {
        return Err(CoreError::BadConfig("max_evals must be > 0".into()));
    }
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(bo.seed ^ 0xE3B0_C442_98FC_1C14);

    // Random embedding matrix A (D x d), entries ~ N(0, 1/d) so the image
    // roughly covers the cube.
    let a: Vec<Vec<f64>> = (0..d_full)
        .map(|_| {
            (0..d)
                .map(|_| normal::sample(&mut rng, 0.0, 1.0 / (d as f64).sqrt()))
                .collect()
        })
        .collect();
    let y_half_width = (d as f64).sqrt();
    let lift = |y: &[f64]| -> Vec<f64> {
        a.iter()
            .map(|row| {
                let dot: f64 = row.iter().zip(y).map(|(&w, &v)| w * v).sum();
                (0.5 + dot).clamp(0.0, 1.0)
            })
            .collect()
    };

    // The embedded objective: decode y -> full config; invalid configs get
    // a death penalty (the standard REMBO treatment of constraints).
    let subspace = Subspace::full(space, objective.default_config())?;
    let worst_guess = objective.evaluate(&objective.default_config()).total;
    let penalty = worst_guess.abs() * 100.0 + 1e6;
    let eval_y = |y: &[f64]| -> f64 {
        let u = lift(y);
        match subspace.lift(&u) {
            Ok(cfg) if space.is_valid(&cfg) => objective.evaluate(&cfg).total,
            _ => penalty,
        }
    };

    // Plain BO loop in y-space (box [-√d, √d]^d scaled to the unit cube).
    let y_of_unit =
        |uy: &[f64]| -> Vec<f64> { uy.iter().map(|&v| (v * 2.0 - 1.0) * y_half_width).collect() };
    let mut history: Vec<(Vec<f64>, f64)> = Vec::new();
    for _ in 0..bo.n_init.min(bo.max_evals) {
        let uy: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        let v = eval_y(&y_of_unit(&uy));
        history.push((uy, v));
    }
    let mut kernel_cache: Option<(cets_gp::Kernel, f64)> = None;
    while history.len() < bo.max_evals {
        let xs: Vec<Vec<f64>> = history.iter().map(|(u, _)| u.clone()).collect();
        let ys: Vec<f64> = history.iter().map(|(_, y)| *y).collect();
        // Same economy as the main loop: full hyperparameter retraining
        // every `retrain_every` evaluations, cheap refit otherwise.
        let retrain = history.len().is_multiple_of(bo.retrain_every.max(1));
        let gp = match kernel_cache.clone() {
            Some((k, n)) if !retrain => Gp::fit(&xs, &ys, k, n)?,
            _ => {
                let mut gp_cfg = bo.gp.clone();
                gp_cfg.seed = bo.seed.wrapping_add(history.len() as u64);
                let g = Gp::train(&xs, &ys, &gp_cfg)?;
                kernel_cache = Some((g.kernel().clone(), g.noise()));
                g
            }
        };
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // Candidate scoring with the configured acquisition.
        let mut best_u: Option<(Vec<f64>, f64)> = None;
        for _ in 0..bo.n_candidates {
            let uy: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
            let (m, v) = gp.predict(&uy);
            let s = bo.acquisition.score_public(m, v, best);
            if best_u.as_ref().is_none_or(|(_, bs)| s > *bs) {
                best_u = Some((uy, s));
            }
        }
        let Some((uy, _)) = best_u else {
            return Err(CoreError::SearchStalled("no candidates".into()));
        };
        let v = eval_y(&y_of_unit(&uy));
        history.push((uy, v));
    }

    // Report in full space: re-lift the best y.
    let Some((best_uy, best_val)) = history
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .cloned()
    else {
        return Err(CoreError::SearchStalled("no evaluations recorded".into()));
    };
    let mut trace = Vec::with_capacity(history.len());
    let mut inc = f64::INFINITY;
    for (_, v) in &history {
        inc = inc.min(*v);
        trace.push(inc);
    }
    let best_config = subspace.lift(&lift(&y_of_unit(&best_uy)))?;
    Ok(SearchOutcome {
        best_config,
        best_value: best_val,
        n_evals: history.len(),
        history,
        incumbent_trace: trace,
        wall_time: start.elapsed(),
    })
}

/// Dropout BO: each iteration trains the GP on `d` randomly selected
/// dimensions of the full history and proposes moves in those dimensions
/// only, filling the remaining `D − d` from the incumbent configuration
/// (the "fill-in with best value" variant of Li et al.).
pub fn dropout_bo<O: Objective + ?Sized>(
    objective: &O,
    active_dims: usize,
    bo: &BoConfig,
) -> Result<SearchOutcome> {
    let space = objective.space();
    let d_full = space.dim();
    let d = active_dims.clamp(1, d_full);
    if bo.max_evals == 0 {
        return Err(CoreError::BadConfig("max_evals must be > 0".into()));
    }
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(bo.seed ^ 0x9B05_688C_2B3E_6C1F);
    let subspace = Subspace::full(space, objective.default_config())?;

    // Initial design: constructive sampler if present, else rejection.
    let mut history: Vec<(Vec<f64>, f64)> = Vec::new();
    let sampler = crate::contraction::contraction_aware_sampler(space);
    for _ in 0..bo.n_init.min(bo.max_evals) {
        let cfg = match objective.sample_valid(&mut rng) {
            Some(c) => c,
            None => sampler.uniform(&mut rng).map_err(CoreError::Space)?,
        };
        let y = objective.evaluate(&cfg).total;
        history.push((subspace.project(&cfg)?, y));
    }

    while history.len() < bo.max_evals {
        // Incumbent.
        let Some((inc_u, _)) = history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
        else {
            return Err(CoreError::SearchStalled("no evaluations recorded".into()));
        };
        // Random dimension subset.
        let mut dims: Vec<usize> = (0..d_full).collect();
        for k in 0..d {
            let j = rng.random_range(k..d_full);
            dims.swap(k, j);
        }
        let dims = &dims[..d];

        // GP over the selected coordinates of the full history. The
        // dimension subset changes every iteration, so hyperparameters
        // cannot be cached across iterations (an inherent cost of the
        // dropout strategy); a reduced Nelder-Mead budget keeps the
        // comparison tractable.
        let xs: Vec<Vec<f64>> = history
            .iter()
            .map(|(u, _)| dims.iter().map(|&j| u[j]).collect())
            .collect();
        let ys: Vec<f64> = history.iter().map(|(_, y)| *y).collect();
        let mut gp_cfg = bo.gp.clone();
        gp_cfg.seed = bo.seed.wrapping_add(history.len() as u64);
        gp_cfg.n_restarts = 1;
        gp_cfg.nm.max_evals = gp_cfg.nm.max_evals.min(120);
        let gp = Gp::train(&xs, &ys, &gp_cfg)?;
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        // Propose in the subset; fill the rest from the incumbent.
        let mut best_cand: Option<(Vec<f64>, f64)> = None;
        for _ in 0..bo.n_candidates {
            let mut u = inc_u.clone();
            for &j in dims {
                u[j] = rng.random::<f64>();
            }
            if !subspace.is_valid_active(&u) {
                continue;
            }
            let proj: Vec<f64> = dims.iter().map(|&j| u[j]).collect();
            let (m, v) = gp.predict(&proj);
            let s = bo.acquisition.score_public(m, v, best);
            if best_cand.as_ref().is_none_or(|(_, bs)| s > *bs) {
                best_cand = Some((u, s));
            }
        }
        let Some((u_next, _)) = best_cand else {
            // All candidates invalid this round: re-draw a fresh point.
            let cfg = match objective.sample_valid(&mut rng) {
                Some(c) => c,
                None => sampler.uniform(&mut rng).map_err(CoreError::Space)?,
            };
            let y = objective.evaluate(&cfg).total;
            history.push((subspace.project(&cfg)?, y));
            continue;
        };
        let cfg = subspace.lift(&u_next)?;
        let y = objective.evaluate(&cfg).total;
        history.push((u_next, y));
    }

    let mut trace = Vec::with_capacity(history.len());
    let mut inc = f64::INFINITY;
    let mut best_idx = 0;
    for (i, (_, v)) in history.iter().enumerate() {
        if *v < inc {
            inc = *v;
            best_idx = i;
        }
        trace.push(inc);
    }
    Ok(SearchOutcome {
        best_config: subspace.lift(&history[best_idx].0)?,
        best_value: trace[trace.len() - 1],
        n_evals: history.len(),
        incumbent_trace: trace,
        history,
        wall_time: start.elapsed(),
    })
}

/// A convenience wrapper so related-work baselines can reuse the main
/// engine's `BoSearch` for a *plain* full-space search when needed.
pub fn full_space_bo<O: Objective + ?Sized>(objective: &O, bo: &BoConfig) -> Result<SearchOutcome> {
    let subspace = Subspace::full(objective.space(), objective.default_config())?;
    BoSearch::new(bo.clone()).run(&subspace, |cfg| objective.evaluate(cfg).total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;

    fn quick(seed: u64, max_evals: usize) -> BoConfig {
        BoConfig {
            n_init: 5,
            max_evals,
            n_candidates: 48,
            n_local: 8,
            retrain_every: 10,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn rembo_improves_and_respects_budget() {
        let obj = SplitSphere::new();
        let out = rembo(&obj, 2, &quick(3, 30)).unwrap();
        assert_eq!(out.n_evals, 30);
        assert!(obj.space().is_valid(&out.best_config));
        // Should beat the mean random value (~25) easily even embedded.
        assert!(out.best_value < 15.0, "rembo best {}", out.best_value);
        for w in out.incumbent_trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn dropout_improves_and_respects_budget() {
        let obj = SplitSphere::new();
        let out = dropout_bo(&obj, 2, &quick(4, 30)).unwrap();
        assert_eq!(out.n_evals, 30);
        assert!(obj.space().is_valid(&out.best_config));
        assert!(out.best_value < 10.0, "dropout best {}", out.best_value);
    }

    #[test]
    fn degenerate_dims_clamped() {
        let obj = SplitSphere::new();
        // embed_dim / active_dims larger than D are clamped, zero raised to 1.
        assert!(rembo(&obj, 99, &quick(5, 10)).is_ok());
        assert!(dropout_bo(&obj, 0, &quick(5, 10)).is_ok());
    }

    #[test]
    fn zero_budget_rejected() {
        let obj = SplitSphere::new();
        let mut cfg = quick(1, 10);
        cfg.max_evals = 0;
        assert!(rembo(&obj, 2, &cfg).is_err());
        assert!(dropout_bo(&obj, 2, &cfg).is_err());
    }
}
