//! Standard-normal helpers for acquisition functions and noise generation.

use rand::Rng;
use rand::RngExt;

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7 — far below what acquisition ranking needs).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal probability density.
pub fn pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution.
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// One standard-normal draw via Box–Muller (implemented here to avoid a
/// `rand_distr` dependency; see DESIGN.md §5).
pub fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A Gaussian draw with the given mean and standard deviation.
pub fn sample<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_standard(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!(erf(1e-12).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((cdf(-1.96) - 0.025).abs() < 1e-3);
        // Symmetry.
        assert!((cdf(0.7) + cdf(-0.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn samples_match_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
