//! The Bayesian-optimization search loop (the role GPTune plays in the
//! paper).
//!
//! A [`BoSearch`] minimizes a scalar objective over a [`Subspace`]: start
//! from a small Latin-hypercube design (the paper uses 5 random initial
//! configurations), then repeatedly (a) fit a Gaussian process to all
//! observations, (b) optimize an acquisition function over valid candidates,
//! (c) evaluate the suggested configuration. The incumbent trace (best value
//! after each evaluation) is recorded — it is exactly what the paper's
//! Figure 6 plots.

use crate::checkpoint::BoCheckpoint;
use crate::normal;
use crate::resilience::{splitmix64, EvalError, EvalOutcome, EvalRecord, FailedEval};
use crate::{CoreError, Result};
use cets_gp::{GpConfig, Surrogate};
use cets_space::{Config, SpaceError, Subspace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;

/// A prior-mean function over the active unit cube (difference-GP
/// transfer learning).
pub type PriorMean<'a> = &'a (dyn Fn(&[f64]) -> f64 + Sync);
use std::time::{Duration, Instant};

/// Acquisition functions for minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent (with exploration margin
    /// `xi`); the BO default.
    ExpectedImprovement {
        /// Exploration margin added to the incumbent.
        xi: f64,
    },
    /// Lower confidence bound `mean − beta·sigma` (minimized).
    LowerConfidenceBound {
        /// Exploration weight on the predictive standard deviation.
        beta: f64,
    },
    /// Probability of improving on the incumbent by at least `xi`.
    ProbabilityOfImprovement {
        /// Required improvement margin.
        xi: f64,
    },
}

impl Default for Acquisition {
    fn default() -> Self {
        Acquisition::ExpectedImprovement { xi: 0.01 }
    }
}

impl Acquisition {
    /// Score a candidate (higher is better) given the GP posterior mean,
    /// variance and the incumbent value. Public so alternative search
    /// loops (the related-work baselines in [`crate::highdim`]) can reuse
    /// the exact same acquisition arithmetic.
    pub fn score_public(&self, mean: f64, var: f64, best: f64) -> f64 {
        self.score(mean, var, best)
    }

    /// Score a candidate (higher is better) given the GP posterior and the
    /// incumbent value.
    fn score(&self, mean: f64, var: f64, best: f64) -> f64 {
        let sigma = var.max(0.0).sqrt();
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                if sigma < 1e-12 {
                    return (best - mean - xi).max(0.0);
                }
                let z = (best - mean - xi) / sigma;
                (best - mean - xi) * normal::cdf(z) + sigma * normal::pdf(z)
            }
            Acquisition::LowerConfidenceBound { beta } => -(mean - beta * sigma),
            Acquisition::ProbabilityOfImprovement { xi } => {
                if sigma < 1e-12 {
                    return if mean < best - xi { 1.0 } else { 0.0 };
                }
                normal::cdf((best - mean - xi) / sigma)
            }
        }
    }
}

/// Configuration of one BO search.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Initial (Latin-hypercube) design size. Paper: 5.
    pub n_init: usize,
    /// Total evaluation budget including the initial design. Paper:
    /// `10 × num_parameters`.
    pub max_evals: usize,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// GP training configuration.
    pub gp: GpConfig,
    /// Random candidates scored per iteration.
    pub n_candidates: usize,
    /// Local-refinement proposals around the best candidate.
    pub n_local: usize,
    /// Re-optimize GP hyperparameters every this many evaluations; between
    /// re-trainings the cached surrogate absorbs each new observation
    /// through its incremental append fast path (`O(n²)` on the exact
    /// tier, `O(m²)` on the sparse tier) instead of re-running the inner
    /// Nelder–Mead.
    ///
    /// This is also the **refit contract** for append conditioning:
    /// appends extend the cached factorization without re-examining it, so
    /// a kernel-matrix conditioning drift (new points landing ever closer
    /// to old ones) is only corrected at retrain boundaries. Keep
    /// `retrain_every` modest (the default 5 is fine) so the cached
    /// factorization cannot creep past
    /// [`cets_gp::APPEND_CONDITION_LIMIT`] between boundaries; debug
    /// builds assert on the estimate at every append.
    pub retrain_every: usize,
    /// RNG seed.
    pub seed: u64,
    /// Write a crash-recovery checkpoint after every evaluation.
    pub checkpoint_path: Option<PathBuf>,
    /// Score the candidate pool across threads. The candidate pool is
    /// pre-sampled single-threadedly and scored through the chunk-invariant
    /// [`Surrogate::predict_batch`], so the proposal (and thus the whole
    /// search trajectory) is **bit-identical** to the sequential path for
    /// the same seed — this switch only changes wall-clock time.
    pub parallel: bool,
    /// Worker threads for parallel scoring; `0` means use the process-wide
    /// resolution (`--threads`, `CETS_THREADS`, then detected
    /// parallelism — see [`cets_linalg::par::global_threads`]).
    pub n_workers: usize,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            n_init: 5,
            max_evals: 50,
            acquisition: Acquisition::default(),
            gp: GpConfig::default(),
            n_candidates: 256,
            n_local: 32,
            retrain_every: 5,
            seed: 0,
            checkpoint_path: None,
            parallel: true,
            n_workers: 0,
        }
    }
}

impl BoConfig {
    /// The paper's budget rule: `10 × dims` evaluations.
    pub fn budget_for_dims(mut self, dims: usize) -> Self {
        self.max_evals = 10 * dims.max(1);
        self
    }
}

/// Result of a completed search (BO or baseline).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best configuration found (full-space, with frozen defaults applied).
    pub best_config: Config,
    /// Best objective value found.
    pub best_value: f64,
    /// All evaluated (active-space unit point, value) pairs, in order.
    pub history: Vec<(Vec<f64>, f64)>,
    /// Best-so-far after each evaluation (paper Figure 6's y-axis).
    pub incumbent_trace: Vec<f64>,
    /// Number of objective evaluations.
    pub n_evals: usize,
    /// Wall-clock duration of the search.
    pub wall_time: Duration,
}

impl SearchOutcome {
    fn from_history(
        subspace: &Subspace,
        history: Vec<(Vec<f64>, f64)>,
        wall_time: Duration,
    ) -> Result<Self> {
        let mut best_idx = 0;
        let mut trace = Vec::with_capacity(history.len());
        let mut best = f64::INFINITY;
        for (i, (_, y)) in history.iter().enumerate() {
            if *y < best {
                best = *y;
                best_idx = i;
            }
            trace.push(best);
        }
        if history.is_empty() {
            return Err(CoreError::SearchStalled("empty history".into()));
        }
        let best_config = subspace.lift(&history[best_idx].0)?;
        Ok(SearchOutcome {
            best_config,
            best_value: best,
            n_evals: history.len(),
            history,
            incumbent_trace: trace,
            wall_time,
        })
    }
}

/// A Bayesian-optimization runner.
#[derive(Debug, Clone, Default)]
pub struct BoSearch {
    /// Search configuration.
    pub config: BoConfig,
}

impl BoSearch {
    /// Create a runner.
    pub fn new(config: BoConfig) -> Self {
        BoSearch { config }
    }

    /// Minimize `f` over `subspace`.
    pub fn run(&self, subspace: &Subspace, f: impl Fn(&Config) -> f64) -> Result<SearchOutcome> {
        self.run_with_history(subspace, f, Vec::new())
    }

    /// Minimize starting from pre-evaluated `(unit point, value)` pairs —
    /// used by checkpoint resume and by transfer-learning seeding. Seeded
    /// points count against the evaluation budget only if `counted` pairs
    /// were actually evaluated on *this* task (resume); transfer seeds from
    /// a *different* task should be passed through
    /// [`crate::transfer::TransferSeed`] instead, which re-evaluates them
    /// here.
    pub fn run_with_history(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config) -> f64,
        history: Vec<(Vec<f64>, f64)>,
    ) -> Result<SearchOutcome> {
        self.run_inner(subspace, f, history, None)
    }

    /// Minimize with a **prior mean function** over the active unit cube —
    /// difference-GP transfer learning. The GP models the residual
    /// `y − prior(u)`; predictions add the prior back before the
    /// acquisition is scored. With a prior fitted on a related task
    /// (e.g. [`crate::TransferSeed::prior_gp`] from Case Study 1), the new
    /// search starts with an informed landscape instead of a flat one,
    /// which is GPTune's multi-task intent at single-output cost.
    pub fn run_with_prior(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config) -> f64,
        history: Vec<(Vec<f64>, f64)>,
        prior: PriorMean<'_>,
    ) -> Result<SearchOutcome> {
        self.run_inner(subspace, f, history, Some(prior))
    }

    fn run_inner(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config) -> f64,
        mut history: Vec<(Vec<f64>, f64)>,
        prior: Option<PriorMean<'_>>,
    ) -> Result<SearchOutcome> {
        let cfg = &self.config;
        if cfg.max_evals == 0 {
            return Err(CoreError::BadConfig("max_evals must be > 0".into()));
        }
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(history.len() as u64));
        // Contraction-aware sampling slabs: the statically proved feasible
        // slab union of each active dimension (a single full `(0, 1)` slab
        // when nothing narrows, which maps draws bit-identically to the
        // plain cube; disjoint slabs when branch-and-prune recovered them).
        let uslabs = crate::contraction::active_unit_slabs(subspace);

        let evaluate = |u: &[f64], history: &mut Vec<(Vec<f64>, f64)>| -> Result<f64> {
            let cfg_full = subspace.lift(u)?;
            let y = f(&cfg_full);
            history.push((u.to_vec(), y));
            if let Some(path) = &self.config.checkpoint_path {
                BoCheckpoint::from_history(self.config.seed, history)
                    .with_tier(self.config.gp.tier.tag())
                    .save(path)?;
            }
            Ok(y)
        };

        // Initial design (top up to n_init points): Latin hypercube over
        // the active unit cube, with per-point uniform-rejection fallback
        // when a stratified point violates constraints.
        let needed = cfg.n_init.saturating_sub(history.len());
        if needed > 0 {
            let d = subspace.dim();
            let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
            for _ in 0..d {
                let mut p: Vec<usize> = (0..needed).collect();
                for k in (1..p.len()).rev() {
                    p.swap(k, rng.random_range(0..=k));
                }
                perms.push(p);
            }
            #[allow(clippy::needless_range_loop)] // i indexes permutation columns
            for i in 0..needed {
                if history.len() >= cfg.max_evals {
                    break;
                }
                let u: Vec<f64> = (0..d)
                    .map(|j| {
                        let r = (perms[j][i] as f64 + rng.random::<f64>()) / needed as f64;
                        cets_space::map_slabs(&uslabs[j], r)
                    })
                    .collect();
                let u = if subspace.is_valid_active(&u) {
                    u
                } else {
                    self.sample_valid_unit(subspace, &uslabs, &mut rng)?
                };
                evaluate(&u, &mut history)?;
            }
        }

        // BO loop. Between full hyperparameter retrainings the cached
        // surrogate absorbs new observations via its incremental update
        // (O(n²) bordered Cholesky on the exact tier, O(m²) rank-one on the
        // sparse tier); every `retrain_every` evaluations the
        // hyperparameters are re-optimized from scratch. The tier itself is
        // re-selected at each retraining from [`GpConfig::tier`], so a
        // search that outgrows the exact tier's O(N³) wall escalates to the
        // sparse tier automatically.
        let mut cache: Option<Surrogate> = None;
        while history.len() < cfg.max_evals {
            let best = history
                .iter()
                .map(|(_, y)| *y)
                .fold(f64::INFINITY, f64::min);

            let can_append = cache
                .as_ref()
                .is_some_and(|g| g.n_train() + 1 == history.len());
            // With a prior mean, the GP models the residual y − prior(u).
            let target = |u: &[f64], y: f64| -> f64 {
                match prior {
                    Some(m0) => y - m0(u),
                    None => y,
                }
            };
            let retrain = history.len().is_multiple_of(cfg.retrain_every.max(1)) || !can_append;
            let model: &Surrogate = if retrain {
                let xs: Vec<Vec<f64>> = history.iter().map(|(u, _)| u.clone()).collect();
                let ys: Vec<f64> = history.iter().map(|(u, y)| target(u, *y)).collect();
                let mut gp_cfg = cfg.gp.clone();
                gp_cfg.seed = cfg.seed.wrapping_add(history.len() as u64);
                cache.insert(Surrogate::train(&xs, &ys, &gp_cfg)?)
            } else {
                // Incremental path: the cache holds all but the newest
                // observation; append it, falling back to a full refit if
                // the incremental update loses definiteness. `can_append`
                // guarantees both the cache and a last observation exist.
                let (Some(cache), Some((u_last, y_last))) =
                    (cache.as_mut(), history.last().cloned())
                else {
                    return Err(CoreError::SearchStalled(
                        "incremental GP update without a cached model".into(),
                    ));
                };
                let r_last = target(&u_last, y_last);
                if cache.append(u_last, r_last).is_err() {
                    let xs: Vec<Vec<f64>> = history.iter().map(|(u, _)| u.clone()).collect();
                    let ys: Vec<f64> = history.iter().map(|(u, y)| target(u, *y)).collect();
                    *cache = cache.refit(&xs, &ys)?;
                }
                cache
            };

            let u_next = self.propose_impl(subspace, &uslabs, model, best, prior, &mut rng)?;
            evaluate(&u_next, &mut history)?;
        }

        SearchOutcome::from_history(subspace, history, start.elapsed())
    }

    /// Resume from a crash-recovery checkpoint.
    pub fn resume(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config) -> f64,
        checkpoint: &BoCheckpoint,
    ) -> Result<SearchOutcome> {
        self.check_tier(checkpoint)?;
        self.run_with_history(subspace, f, checkpoint.history())
    }

    /// Reject a checkpoint recorded under a different surrogate
    /// tier policy: the resumed search re-derives every per-iteration tier
    /// decision from [`GpConfig::tier`] and the record count, so a
    /// mismatched policy would silently diverge from the interrupted
    /// trajectory instead of continuing it. Checkpoints from before the
    /// tier layer carry no tag and resume unchecked.
    fn check_tier(&self, checkpoint: &BoCheckpoint) -> Result<()> {
        let ours = self.config.gp.tier.tag();
        match &checkpoint.tier {
            Some(tag) if *tag != ours => Err(CoreError::Checkpoint(format!(
                "checkpoint tier policy `{tag}` does not match search tier policy `{ours}` — \
                 resuming would diverge from the interrupted trajectory"
            ))),
            _ => Ok(()),
        }
    }

    fn sample_valid_unit(
        &self,
        subspace: &Subspace,
        uslabs: &[Vec<(f64, f64)>],
        rng: &mut StdRng,
    ) -> Result<Vec<f64>> {
        // Rejection sampling directly in the active unit cube so frozen
        // dimensions stay at their defaults. Draws come from the
        // contraction-aware slab unions (see [`crate::contraction`]), so
        // heavily constrained spaces burn far fewer of the 10 000 attempts
        // on points the static analysis already proved infeasible.
        for _ in 0..10_000 {
            let u: Vec<f64> = uslabs
                .iter()
                .map(|s| cets_space::map_slabs(s, rng.random::<f64>()))
                .collect();
            if subspace.is_valid_active(&u) {
                return Ok(u);
            }
        }
        Err(CoreError::Space(SpaceError::SamplingExhausted {
            attempts: 10_000,
        }))
    }

    /// Acquisition optimization: random candidates + local refinement.
    ///
    /// Public so benchmark harnesses (`perf_suite`) and alternative search
    /// loops can time/reuse the exact proposal step the BO loop runs; the
    /// candidate pool is drawn from `rng` exactly as in [`BoSearch::run`].
    /// Takes the tiered [`Surrogate`]; wrap a bare [`cets_gp::Gp`] in
    /// [`Surrogate::Exact`] to reproduce the pre-tier behavior
    /// bit-for-bit.
    pub fn propose(
        &self,
        subspace: &Subspace,
        model: &Surrogate,
        best: f64,
        prior: Option<PriorMean<'_>>,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>> {
        let uslabs = crate::contraction::active_unit_slabs(subspace);
        self.propose_impl(subspace, &uslabs, model, best, prior, rng)
    }

    fn propose_impl(
        &self,
        subspace: &Subspace,
        uslabs: &[Vec<(f64, f64)>],
        model: &Surrogate,
        best: f64,
        prior: Option<PriorMean<'_>>,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>> {
        let cfg = &self.config;

        // Draw the whole candidate pool up front, single-threadedly:
        // scoring consumes no randomness, so the RNG stream (and hence the
        // search trajectory) is independent of how the pool is scored.
        let mut pool: Vec<Vec<f64>> = Vec::with_capacity(cfg.n_candidates);
        for _ in 0..cfg.n_candidates {
            pool.push(self.sample_valid_unit(subspace, uslabs, rng)?);
        }
        if pool.is_empty() {
            return Err(CoreError::SearchStalled("no candidates".into()));
        }

        // Score the pool through the chunk-invariant batched predictor —
        // sequentially or across threads, the results are bit-identical.
        let scores = self.score_pool(model, &pool, best, prior);

        // Fixed-order argmax (strict `>`, first occurrence wins) so the
        // champion never depends on chunking or thread count.
        let mut best_idx = 0;
        let mut s_best = scores[0];
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > s_best {
                s_best = s;
                best_idx = i;
            }
        }
        let mut u_best = pool.swap_remove(best_idx);

        // Local refinement: shrinking Gaussian steps around the champion.
        // Inherently sequential (each step perturbs the current champion),
        // and scored through the same batched path as the pool so the
        // comparisons use one arithmetic throughout.
        for k in 0..cfg.n_local {
            let scale = 0.1 * (1.0 - k as f64 / cfg.n_local.max(1) as f64) + 0.01;
            let u_try: Vec<f64> = u_best
                .iter()
                .map(|&v| (v + normal::sample(rng, 0.0, scale)).clamp(0.0, 1.0))
                .collect();
            if !subspace.is_valid_active(&u_try) {
                continue;
            }
            let (m, v) = model.predict_batch(std::slice::from_ref(&u_try))[0];
            let m = match prior {
                Some(m0) => m + m0(&u_try),
                None => m,
            };
            let s = cfg.acquisition.score(m, v, best);
            if s > s_best {
                s_best = s;
                u_best = u_try;
            }
        }
        Ok(u_best)
    }

    /// Acquisition scores for a candidate pool, in pool order.
    ///
    /// With [`BoConfig::parallel`] the pool is split into contiguous chunks
    /// scored by scoped worker threads writing disjoint slices of the
    /// output; because [`Surrogate::predict_batch`] is chunk-invariant (on
    /// both tiers) and the acquisition is a pure per-candidate function,
    /// the resulting scores are bit-identical to the sequential path
    /// regardless of worker count.
    fn score_pool(
        &self,
        model: &Surrogate,
        pool: &[Vec<f64>],
        best: f64,
        prior: Option<PriorMean<'_>>,
    ) -> Vec<f64> {
        let cfg = &self.config;
        let score_chunk = |chunk: &[Vec<f64>], out: &mut [f64]| {
            let preds = model.predict_batch(chunk);
            for ((s, (m, v)), u) in out.iter_mut().zip(preds).zip(chunk) {
                let m = match prior {
                    Some(m0) => m + m0(u),
                    None => m,
                };
                *s = cfg.acquisition.score(m, v, best);
            }
        };

        let mut scores = vec![0.0; pool.len()];
        let workers = self.worker_count(pool.len());
        if workers <= 1 {
            score_chunk(pool, &mut scores);
        } else {
            let chunk = pool.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (cpool, cout) in pool.chunks(chunk).zip(scores.chunks_mut(chunk)) {
                    let f = &score_chunk;
                    scope.spawn(move || f(cpool, cout));
                }
            });
        }
        scores
    }

    /// Number of scoring workers for a pool of `n_items` candidates.
    fn worker_count(&self, n_items: usize) -> usize {
        if !self.config.parallel || n_items < 2 {
            return 1;
        }
        let requested = if self.config.n_workers == 0 {
            cets_linalg::par::global_threads()
        } else {
            self.config.n_workers
        };
        requested.clamp(1, n_items)
    }
}

// ---------------------------------------------------------------------------
// Failure-aware BO
// ---------------------------------------------------------------------------

/// How failed evaluations enter GP training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imputation {
    /// Train on failed points at `worst + margin × (worst − best)` over the
    /// successful observations (GPTune's recipe: failures are informative —
    /// they mark regions to avoid — so give them a value pessimistic enough
    /// to repel the search without wrecking the GP's length scales). When
    /// all successes share one value the penalty degenerates to
    /// `worst + margin`.
    WorstPlusMargin {
        /// Penalty margin as a fraction of the observed spread.
        margin: f64,
    },
    /// Leave failed points out of training entirely (the search may
    /// re-propose near failures, but the GP is never biased by synthetic
    /// values).
    Exclude,
}

/// Policy for how a failure-aware search treats failed evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct FailurePolicy {
    /// How failures enter GP training.
    pub imputation: Imputation,
    /// Fraction of one evaluation's budget a failure costs. `1.0` treats a
    /// crash as expensive as a completed run (it held the allocation);
    /// `0.0` models instant rejections. Budget spent is
    /// `n_ok + budget_fraction × n_failed`, checked against
    /// [`BoConfig::max_evals`].
    pub budget_fraction: f64,
    /// Hard cap on total failed attempts, so a pathologically failing
    /// objective cannot loop forever when `budget_fraction` is small.
    pub max_failures: usize,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            imputation: Imputation::WorstPlusMargin { margin: 0.5 },
            budget_fraction: 1.0,
            max_failures: 1000,
        }
    }
}

impl FailurePolicy {
    /// Budget consumed by an attempt history.
    pub fn budget_spent(&self, records: &[EvalRecord]) -> f64 {
        let n_ok = records.iter().filter(|r| r.is_ok()).count();
        let n_failed = records.len() - n_ok;
        n_ok as f64 + self.budget_fraction * n_failed as f64
    }

    /// The training value [`Imputation::WorstPlusMargin`] assigns to
    /// failed attempts given an attempt history: `worst + margin × spread`
    /// over the finite successful observations (degenerating to
    /// `worst + margin` when they all share one value), with the same
    /// screening as [`FailurePolicy::training_data`]. `None` under
    /// [`Imputation::Exclude`], or when no finite success exists to derive
    /// it from.
    ///
    /// Exposed separately so the incremental surrogate cache can detect
    /// when a new observation *moves* the imputed value — which silently
    /// invalidates every previously-imputed training point and must force
    /// a full refit instead of an append.
    pub fn imputed_value(&self, records: &[EvalRecord]) -> Option<f64> {
        let Imputation::WorstPlusMargin { margin } = self.imputation else {
            return None;
        };
        let margin = if margin.is_finite() {
            margin.max(0.0)
        } else {
            0.0
        };
        let mut worst = f64::NEG_INFINITY;
        let mut best = f64::INFINITY;
        let mut any = false;
        for r in records {
            let Some(y) = r.y() else { continue };
            if !(y.is_finite() && r.u.iter().all(|v| v.is_finite())) {
                continue;
            }
            any = true;
            worst = worst.max(y);
            best = best.min(y);
        }
        if !any {
            return None;
        }
        let spread = worst - best;
        Some(if spread > 0.0 {
            worst + margin * spread
        } else {
            worst + margin
        })
    }

    /// GP training data for an attempt history. **Every returned value is
    /// finite** — non-finite successes are screened out (defense in depth;
    /// [`BoSearch::run_resilient`] never records them) and imputed values
    /// are derived from finite observations with a sanitized margin. This
    /// is the boundary that guarantees no NaN/Inf ever reaches
    /// [`cets_gp::Gp::train`].
    pub fn training_data(&self, records: &[EvalRecord]) -> (Vec<Vec<f64>>, Vec<f64>) {
        match self.imputation {
            Imputation::Exclude => records
                .iter()
                .filter_map(|r| r.y().map(|y| (r.u.as_slice(), y)))
                .filter(|(u, y)| y.is_finite() && u.iter().all(|v| v.is_finite()))
                .map(|(u, y)| (u.to_vec(), y))
                .unzip(),
            Imputation::WorstPlusMargin { .. } => {
                // `imputed_value` screens exactly like the arm below, so it
                // is `None` precisely when there is no finite success —
                // nothing to impute from, no training data at all.
                let Some(imputed) = self.imputed_value(records) else {
                    return (Vec::new(), Vec::new());
                };
                records
                    .iter()
                    .filter(|r| r.u.iter().all(|v| v.is_finite()))
                    .filter_map(|r| match r.y() {
                        Some(y) if y.is_finite() => Some((r.u.clone(), y)),
                        Some(_) => None,
                        None => Some((r.u.clone(), imputed)),
                    })
                    .unzip()
            }
        }
    }
}

/// Result of a failure-aware search: the ordinary [`SearchOutcome`] over
/// the successful evaluations, plus the full attempt ledger.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Outcome over successful evaluations only (history, incumbent trace
    /// and best configuration have their usual meaning).
    pub outcome: SearchOutcome,
    /// Every attempt, successes and failures, in order.
    pub records: Vec<EvalRecord>,
    /// Number of failed attempts.
    pub n_failed: usize,
    /// Budget consumed (`n_ok + budget_fraction × n_failed`).
    pub budget_spent: f64,
}

/// Salt for the resilient LHS design RNG stream (distinct from the
/// per-iteration proposal streams).
const LHS_SALT: u64 = 0x4c48_535f_4445_5347;

/// Cached surrogate state of the failure-aware loop.
///
/// The invariant maintained by [`BoSearch::update_resilient_model`]: after
/// processing a record prefix of length `n_records`, this state is a
/// **pure function of that prefix** — so an interrupted search can rebuild
/// it exactly by replaying from the last retrain boundary.
struct ResilientModel {
    surrogate: Surrogate,
    /// The imputed value baked into the training set, when any failure
    /// point is present under [`Imputation::WorstPlusMargin`]; `None` when
    /// the training set contains no imputed points.
    imputed: Option<f64>,
    /// Length of the record prefix this state reflects.
    n_records: usize,
}

impl BoSearch {
    /// Minimize under failures: the evaluation callback returns a typed
    /// [`EvalOutcome`] (wrap your objective in
    /// [`crate::ResilientObjective`] to get one from any
    /// [`Objective`](crate::objective::Objective)),
    /// failed attempts are recorded and handled per `policy`, and **no
    /// non-finite value ever reaches the GP**.
    ///
    /// Like [`BoSearch::run`], the surrogate is cached between
    /// hyperparameter retrainings: every [`BoConfig::retrain_every`]
    /// attempts it is retrained from the policy's training data, and in
    /// between, new records are absorbed through the incremental append
    /// fast path. Imputation is handled exactly — appending is only legal
    /// while the imputed training value is unchanged, so an observation
    /// that moves the observed worst/best (and with it every
    /// previously-imputed training point) triggers a full retraining
    /// instead ([`FailurePolicy::imputed_value`]).
    ///
    /// The trajectory is still a *pure function of the accumulated
    /// records*: the initial design is derived from the seed alone, each
    /// iteration reseeds its RNG from `seed + attempts-so-far`, and the
    /// cached surrogate after `ℓ` recorded attempts is itself a pure
    /// function of the record prefix (retrain boundaries rebuild it from
    /// scratch, so a resumed search replays only the short
    /// boundary-to-crash segment to reconstruct the identical cache). A
    /// search interrupted at *any* attempt therefore resumes
    /// **bit-for-bit** via [`BoSearch::resume_resilient`] — a stronger
    /// contract than the plain path.
    ///
    /// The callback's second argument is the attempt ordinal (for keying
    /// retry backoff jitter).
    pub fn run_resilient(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config, usize) -> EvalOutcome,
        policy: &FailurePolicy,
    ) -> Result<ResilientOutcome> {
        self.run_resilient_with_records(subspace, f, policy, Vec::new())
    }

    /// Resume a failure-aware search from a crash-recovery checkpoint.
    pub fn resume_resilient(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config, usize) -> EvalOutcome,
        policy: &FailurePolicy,
        checkpoint: &BoCheckpoint,
    ) -> Result<ResilientOutcome> {
        if checkpoint.seed != self.config.seed {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint seed {} does not match search seed {} — resuming would \
                 diverge from the interrupted trajectory",
                checkpoint.seed, self.config.seed
            )));
        }
        self.check_tier(checkpoint)?;
        self.run_resilient_with_records(subspace, f, policy, checkpoint.records())
    }

    /// Rebuild the [`SearchOutcome`] implied by a record prefix without
    /// re-running anything.
    ///
    /// The resilient loop's trajectory is a pure function of its record
    /// history, so the best configuration, best value, and incumbent trace
    /// are all recomputable from the records alone. Recovery layers (the
    /// `cets serve` WAL replay) use this to reconstruct a finished search's
    /// result from its log instead of re-evaluating anything; `wall_time`
    /// is zero because no work is performed.
    ///
    /// Fails with [`CoreError::SearchStalled`] when no successful attempt
    /// exists in `records`.
    pub fn replay_outcome(subspace: &Subspace, records: &[EvalRecord]) -> Result<SearchOutcome> {
        let history: Vec<(Vec<f64>, f64)> = records
            .iter()
            .filter_map(|r| r.y().map(|y| (r.u.clone(), y)))
            .collect();
        if history.is_empty() {
            return Err(CoreError::SearchStalled(
                "replay: no successful attempt in records".into(),
            ));
        }
        SearchOutcome::from_history(subspace, history, Duration::ZERO)
    }

    /// [`BoSearch::run_resilient`] starting from pre-recorded attempts.
    pub fn run_resilient_with_records(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config, usize) -> EvalOutcome,
        policy: &FailurePolicy,
        records: Vec<EvalRecord>,
    ) -> Result<ResilientOutcome> {
        self.run_resilient_observed(subspace, f, policy, records, &mut |_| Ok(()))
    }

    /// [`BoSearch::run_resilient_with_records`] with a per-record observer.
    ///
    /// `on_record` fires exactly once for every **new** attempt, immediately
    /// after it is appended to the record history (pre-recorded attempts
    /// passed in via `records` are never re-observed). This is the hook a
    /// durability layer needs to write each attempt to a log *before* the
    /// search advances: an `Err` from the observer aborts the search at
    /// that exact record boundary, which is how `cets serve` turns a failed
    /// log append (or a simulated process kill) into a clean crash that
    /// [`BoSearch::run_resilient_with_records`] can later resume bit-for-bit.
    pub fn run_resilient_observed(
        &self,
        subspace: &Subspace,
        f: impl Fn(&Config, usize) -> EvalOutcome,
        policy: &FailurePolicy,
        mut records: Vec<EvalRecord>,
        on_record: &mut dyn FnMut(&EvalRecord) -> Result<()>,
    ) -> Result<ResilientOutcome> {
        let cfg = &self.config;
        if cfg.max_evals == 0 {
            return Err(CoreError::BadConfig("max_evals must be > 0".into()));
        }
        if !(policy.budget_fraction.is_finite() && policy.budget_fraction >= 0.0) {
            return Err(CoreError::BadConfig(
                "budget_fraction must be finite and non-negative".into(),
            ));
        }
        let start = Instant::now();
        let uslabs = crate::contraction::active_unit_slabs(subspace);

        let mut evaluate =
            |u: &[f64], records: &mut Vec<EvalRecord>| -> Result<()> {
                let cfg_full = subspace.lift(u)?;
                let rec = match f(&cfg_full, records.len()) {
                    // Defense in depth: even if the callback skipped screening,
                    // a non-finite total is recorded as a failure, never as an
                    // observation.
                    EvalOutcome::Ok(obs) if !obs.total.is_finite() => EvalRecord::failed(
                        u.to_vec(),
                        FailedEval::from_error(&EvalError::NonFinite {
                            what: "total".into(),
                        }),
                    ),
                    EvalOutcome::Ok(obs) => EvalRecord::ok(u.to_vec(), obs.total),
                    EvalOutcome::Failed(e) => {
                        EvalRecord::failed(u.to_vec(), FailedEval::from_error(&e))
                    }
                };
                records.push(rec);
                if let Some(path) = &cfg.checkpoint_path {
                    BoCheckpoint::from_records(cfg.seed, records)
                        .with_tier(cfg.gp.tier.tag())
                        .save(path)?;
                }
                // Observe only after the record is durably part of the history
                // (checkpoint written if configured): a crash in the observer
                // leaves a resumable prefix, never a half-observed record.
                on_record(records.last().ok_or_else(|| {
                    CoreError::SearchStalled("record vanished after push".into())
                })?)?;
                Ok(())
            };

        let n_failed = |records: &[EvalRecord]| records.iter().filter(|r| !r.is_ok()).count();
        let within_budget = |records: &[EvalRecord]| -> bool {
            policy.budget_spent(records) + 1e-9 < cfg.max_evals as f64
                && n_failed(records) < policy.max_failures
        };

        // Fixed initial design, a pure function of (seed, n_init): attempt
        // k < n_init evaluates design point k, whether in the original run
        // or a resumed one.
        let design = self.resilient_design(subspace, &uslabs)?;
        while records.len() < design.len() && within_budget(&records) {
            let u = design[records.len()].clone();
            evaluate(&u, &mut records)?;
        }

        // Failure-aware BO loop. The cached surrogate after ℓ recorded
        // attempts is a pure function of records[..ℓ] (see
        // `update_resilient_model`), so a resumed run first replays the
        // cache transitions from the last retrain boundary — boundaries
        // rebuild the model from scratch regardless of the incoming state,
        // which keeps the replay under `retrain_every` steps and makes its
        // result identical to the uninterrupted run's cache.
        let mut model: Option<ResilientModel> = None;
        if records.len() > design.len() && within_budget(&records) {
            let re = cfg.retrain_every.max(1);
            let prev = records.len() - 1;
            let from = ((prev / re) * re).max(design.len());
            for len in from..=prev {
                self.update_resilient_model(&mut model, &records[..len], policy)?;
            }
        }
        while records.len() >= design.len() && within_budget(&records) {
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(records.len() as u64));
            self.update_resilient_model(&mut model, &records, policy)?;
            let u_next = match &model {
                // No successful observation yet: keep exploring at random
                // until one lands (bounded by budget and max_failures).
                None => self.sample_valid_unit(subspace, &uslabs, &mut rng)?,
                Some(m) => {
                    // Incumbent over *observed* successes, never imputed
                    // values.
                    let best = records
                        .iter()
                        .filter_map(EvalRecord::y)
                        .fold(f64::INFINITY, f64::min);
                    self.propose_impl(subspace, &uslabs, &m.surrogate, best, None, &mut rng)?
                }
            };
            evaluate(&u_next, &mut records)?;
        }

        let history: Vec<(Vec<f64>, f64)> = records
            .iter()
            .filter_map(|r| r.y().map(|y| (r.u.clone(), y)))
            .collect();
        if history.is_empty() {
            return Err(CoreError::SearchStalled(format!(
                "all {} attempts failed (cap: {} failures, budget: {} evals)",
                records.len(),
                policy.max_failures,
                cfg.max_evals
            )));
        }
        let outcome = SearchOutcome::from_history(subspace, history, start.elapsed())?;
        Ok(ResilientOutcome {
            outcome,
            n_failed: n_failed(&records),
            budget_spent: policy.budget_spent(&records),
            records,
        })
    }

    /// Advance the failure-aware loop's cached surrogate to reflect
    /// `records` (one new record per call in the steady state). The
    /// post-state is a **pure function of the record prefix**:
    ///
    /// * at retrain boundaries (`records.len()` divisible by
    ///   [`BoConfig::retrain_every`]) the model is rebuilt from scratch
    ///   regardless of the incoming state — this is what lets resume
    ///   replay from the last boundary;
    /// * otherwise the newest record is absorbed incrementally when legal:
    ///   a success appends in `O(n²)`/`O(m²)`, a failure appends its
    ///   imputed point under [`Imputation::WorstPlusMargin`] or is a no-op
    ///   under [`Imputation::Exclude`];
    /// * whenever the newest record *moves* the imputed value
    ///   ([`FailurePolicy::imputed_value`]), every previously-imputed
    ///   training point is stale and the model is rebuilt instead.
    ///
    /// The model is `None` while no finite successful observation exists.
    fn update_resilient_model(
        &self,
        model: &mut Option<ResilientModel>,
        records: &[EvalRecord],
        policy: &FailurePolicy,
    ) -> Result<()> {
        let cfg = &self.config;
        let finite_ok = |r: &EvalRecord| -> Option<f64> {
            match r.y() {
                Some(y) if y.is_finite() && r.u.iter().all(|v| v.is_finite()) => Some(y),
                _ => None,
            }
        };
        if !records.iter().any(|r| finite_ok(r).is_some()) {
            *model = None;
            return Ok(());
        }
        // The imputed value the training set should carry right now:
        // `Some` iff imputation is on and at least one imputable failure
        // (finite coordinates) is recorded. With a finite success present,
        // `imputed_value` is always `Some` here.
        let has_imputable = records
            .iter()
            .any(|r| !r.is_ok() && r.u.iter().all(|v| v.is_finite()));
        let imputed_now = if has_imputable {
            policy.imputed_value(records)
        } else {
            None
        };

        let boundary = records.len().is_multiple_of(cfg.retrain_every.max(1));
        let can_append = !boundary
            && model.as_ref().is_some_and(|m| {
                m.n_records + 1 == records.len()
                    && (m.imputed.is_none() || m.imputed == imputed_now)
            });
        if !can_append {
            let (xs, ys) = policy.training_data(records);
            let mut gp_cfg = cfg.gp.clone();
            gp_cfg.seed = cfg.seed.wrapping_add(records.len() as u64);
            let surrogate = Surrogate::train(&xs, &ys, &gp_cfg)?;
            *model = Some(ResilientModel {
                surrogate,
                imputed: imputed_now,
                n_records: records.len(),
            });
            return Ok(());
        }
        let (Some(m), Some(last)) = (model.as_mut(), records.last()) else {
            return Err(CoreError::SearchStalled(
                "incremental surrogate update without a cached model".into(),
            ));
        };
        // Absorb the newest record. Records the policy screens out of
        // training (non-finite values or coordinates) leave the training
        // set untouched, as do failures under `Exclude` (where
        // `imputed_now` is `None`).
        let append = match (finite_ok(last), last.is_ok()) {
            (Some(y), _) => Some((last.u.clone(), y)),
            (None, true) => None,
            (None, false) if last.u.iter().all(|v| v.is_finite()) => {
                imputed_now.map(|iv| (last.u.clone(), iv))
            }
            (None, false) => None,
        };
        if let Some((u, y)) = append {
            if m.surrogate.append(u, y).is_err() {
                // The incremental update lost definiteness: refit the same
                // hyperparameters on the full training set (deterministic,
                // no optimizer) — the analogue of `run_inner`'s fallback.
                let (xs, ys) = policy.training_data(records);
                m.surrogate = m.surrogate.refit(&xs, &ys)?;
            }
        }
        m.imputed = imputed_now;
        m.n_records = records.len();
        Ok(())
    }

    /// The resilient path's Latin-hypercube initial design, derived from
    /// the seed alone (with per-point constraint-rejection fallback) so
    /// interrupted and uninterrupted runs compute the same points.
    fn resilient_design(
        &self,
        subspace: &Subspace,
        uslabs: &[Vec<(f64, f64)>],
    ) -> Result<Vec<Vec<f64>>> {
        let n = self.config.n_init;
        let d = subspace.dim();
        let mut rng = StdRng::seed_from_u64(splitmix64(self.config.seed ^ LHS_SALT));
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut p: Vec<usize> = (0..n).collect();
            for k in (1..p.len()).rev() {
                p.swap(k, rng.random_range(0..=k));
            }
            perms.push(p);
        }
        let mut design = Vec::with_capacity(n);
        // `perms` is indexed transposed (`perms[j][i]`), so an iterator over
        // it cannot replace the index loop.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let u: Vec<f64> = (0..d)
                .map(|j| {
                    let r = (perms[j][i] as f64 + rng.random::<f64>()) / n.max(1) as f64;
                    cets_space::map_slabs(&uslabs[j], r)
                })
                .collect();
            let u = if subspace.is_valid_active(&u) {
                u
            } else {
                // Per-point fallback stream, independent of how many other
                // points needed fallbacks.
                let mut point_rng =
                    StdRng::seed_from_u64(splitmix64(self.config.seed ^ LHS_SALT ^ (i as u64 + 1)));
                self.sample_valid_unit(subspace, uslabs, &mut point_rng)?
            };
            design.push(u);
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;
    use crate::objective::Objective;
    use cets_space::Subspace;

    fn quick_config(max_evals: usize, seed: u64) -> BoConfig {
        BoConfig {
            n_init: 5,
            max_evals,
            n_candidates: 64,
            n_local: 8,
            retrain_every: 5,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn acquisition_scores_sensible() {
        let ei = Acquisition::ExpectedImprovement { xi: 0.0 };
        // Candidate clearly better than incumbent: positive EI.
        assert!(ei.score(0.0, 0.01, 1.0) > 0.9);
        // Candidate clearly worse with tiny variance: ~0 EI.
        assert!(ei.score(2.0, 1e-6, 1.0) < 1e-6);
        // Zero variance, better mean: deterministic improvement.
        assert!(ei.score(0.5, 0.0, 1.0) > 0.49);

        let lcb = Acquisition::LowerConfidenceBound { beta: 2.0 };
        // Lower mean scores higher.
        assert!(lcb.score(0.0, 1.0, 0.0) > lcb.score(1.0, 1.0, 0.0));
        // More variance scores higher (exploration).
        assert!(lcb.score(1.0, 4.0, 0.0) > lcb.score(1.0, 1.0, 0.0));

        let pi = Acquisition::ProbabilityOfImprovement { xi: 0.0 };
        let p = pi.score(0.0, 1.0, 1.0);
        assert!((0.5..=1.0).contains(&p));
        assert_eq!(pi.score(2.0, 0.0, 1.0), 0.0);
        assert_eq!(pi.score(0.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn bo_finds_sphere_minimum() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let search = BoSearch::new(quick_config(40, 7));
        let out = search.run(&sub, |cfg| obj.evaluate(cfg).total).unwrap();
        assert_eq!(out.n_evals, 40);
        assert!(
            out.best_value < 1.5,
            "BO best {} worse than expected",
            out.best_value
        );
        // Incumbent trace is monotone non-increasing.
        for w in out.incumbent_trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn bo_beats_its_own_initial_design() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let out = BoSearch::new(quick_config(50, 3))
            .run(&sub, |cfg| obj.evaluate(cfg).total)
            .unwrap();
        let init_best = out.history[..5]
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        assert!(out.best_value <= init_best);
    }

    #[test]
    fn bo_respects_subspace_freezing() {
        let obj = SplitSphere::new();
        // Only x2 free; x0 = x1 = 1 frozen => best total = 2 + x2² ≈ 2.
        let sub = Subspace::new(obj.space(), &["x2"], obj.default_config()).unwrap();
        let out = BoSearch::new(quick_config(25, 1))
            .run(&sub, |cfg| obj.evaluate(cfg).total)
            .unwrap();
        assert!(out.best_value >= 2.0);
        assert!(out.best_value < 2.3, "got {}", out.best_value);
        // x0 must still be the default in the reported config.
        assert_eq!(obj.space().get_f64(&out.best_config, "x0").unwrap(), 1.0);
    }

    #[test]
    fn initial_design_is_stratified() {
        // With max_evals == n_init the whole run is the LHS design: on an
        // unconstrained 1-dim space each of the n strata gets one point.
        let obj = SplitSphere::new();
        let sub = Subspace::new(obj.space(), &["x0"], obj.default_config()).unwrap();
        let n = 8;
        let out = BoSearch::new(BoConfig {
            n_init: n,
            max_evals: n,
            seed: 13,
            ..Default::default()
        })
        .run(&sub, |cfg| obj.evaluate(cfg).total)
        .unwrap();
        let mut strata = vec![0usize; n];
        for (u, _) in &out.history {
            let k = ((u[0] * n as f64) as usize).min(n - 1);
            strata[k] += 1;
        }
        assert!(strata.iter().all(|&c| c == 1), "not stratified: {strata:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let a = BoSearch::new(quick_config(20, 99))
            .run(&sub, |cfg| obj.evaluate(cfg).total)
            .unwrap();
        let b = BoSearch::new(quick_config(20, 99))
            .run(&sub, |cfg| obj.evaluate(cfg).total)
            .unwrap();
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.history.len(), b.history.len());
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_sequential() {
        // The CI-enforced determinism contract: a full BO run with the
        // chunked thread-scope scorer produces the exact same history —
        // every configuration and every observation, bit for bit — as the
        // sequential path. The pool is pre-sampled before scoring and the
        // argmax reduction runs in fixed order, so worker count must not
        // leak into the arithmetic.
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let run = |parallel: bool, n_workers: usize| {
            let cfg = BoConfig {
                parallel,
                n_workers,
                ..quick_config(25, 42)
            };
            BoSearch::new(cfg)
                .run(&sub, |c| obj.evaluate(c).total)
                .unwrap()
        };
        let sequential = run(false, 0);
        for workers in [0, 2, 3, 5] {
            let par = run(true, workers);
            assert_eq!(
                sequential.history, par.history,
                "history diverged with n_workers={workers}"
            );
            assert_eq!(sequential.best_value, par.best_value);
            assert_eq!(sequential.incumbent_trace, par.incumbent_trace);
        }
    }

    #[test]
    fn zero_budget_rejected() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let mut cfg = quick_config(10, 0);
        cfg.max_evals = 0;
        assert!(matches!(
            BoSearch::new(cfg).run(&sub, |c| obj.evaluate(c).total),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn budget_rule() {
        let cfg = BoConfig::default().budget_for_dims(7);
        assert_eq!(cfg.max_evals, 70);
        assert_eq!(BoConfig::default().budget_for_dims(0).max_evals, 10);
    }

    #[test]
    fn resilient_fault_free_finds_minimum_and_is_deterministic() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let policy = FailurePolicy::default();
        let run = || {
            BoSearch::new(quick_config(40, 7))
                .run_resilient(
                    &sub,
                    |cfg, _| crate::resilience::EvalOutcome::Ok(obj.evaluate(cfg)),
                    &policy,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.n_failed, 0);
        assert_eq!(a.budget_spent, 40.0);
        assert_eq!(a.outcome.n_evals, 40);
        assert!(a.outcome.best_value < 1.5, "best {}", a.outcome.best_value);
        assert_eq!(a.records, b.records, "resilient run not deterministic");
        assert_eq!(a.outcome.best_value, b.outcome.best_value);
    }

    #[test]
    fn training_data_is_always_finite() {
        use crate::resilience::{FailedEval, FailureKind};
        let records = vec![
            EvalRecord::ok(vec![0.1], 2.0),
            EvalRecord::failed(
                vec![0.5],
                FailedEval {
                    kind: FailureKind::Crashed,
                    message: String::new(),
                },
            ),
            EvalRecord::ok(vec![0.9], 5.0),
            // Smuggled-in non-finite success: must be screened.
            EvalRecord::ok(vec![0.3], f64::NAN),
        ];
        let impute = FailurePolicy {
            imputation: Imputation::WorstPlusMargin { margin: 0.5 },
            ..Default::default()
        };
        let (xs, ys) = impute.training_data(&records);
        assert_eq!(xs.len(), 3, "2 finite successes + 1 imputed failure");
        assert!(ys.iter().all(|y| y.is_finite()));
        // worst=5, best=2, spread=3 → imputed = 5 + 0.5·3 = 6.5.
        assert_eq!(ys, vec![2.0, 6.5, 5.0]);

        let exclude = FailurePolicy {
            imputation: Imputation::Exclude,
            ..Default::default()
        };
        let (xs, ys) = exclude.training_data(&records);
        assert_eq!(xs.len(), 2);
        assert_eq!(ys, vec![2.0, 5.0]);
    }

    #[test]
    fn budget_fraction_charges_failures_partially() {
        use crate::resilience::{EvalOutcome, FaultKind, FaultPlan, FaultyObjective, VirtualClock};
        use crate::Objective as _;
        use std::sync::Arc;
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let clock = Arc::new(VirtualClock::new());
        // Every 4th attempt returns NaN.
        let plan = FaultPlan {
            every_kth: Some((4, FaultKind::NonFinite)),
            ..Default::default()
        };
        let faulty = FaultyObjective::new(&obj, plan, clock);
        let policy = FailurePolicy {
            budget_fraction: 0.25,
            ..Default::default()
        };
        let names = obj.routine_names();
        let out = BoSearch::new(quick_config(20, 11))
            .run_resilient(
                &sub,
                |cfg, _| EvalOutcome::screened(faulty.evaluate(cfg), &names),
                &policy,
            )
            .unwrap();
        assert!(out.n_failed > 0, "expected injected failures");
        let n_ok = out.records.len() - out.n_failed;
        assert_eq!(out.budget_spent, n_ok as f64 + 0.25 * out.n_failed as f64);
        // The budget gate runs before each attempt, so the last attempt may
        // overshoot by at most one evaluation's cost.
        assert!(out.budget_spent < 21.0, "spent {}", out.budget_spent);
        // Failures cost 1/4, so more total attempts fit in the budget than
        // the failure-free 20.
        assert!(out.records.len() > 20);
    }

    #[test]
    fn max_failures_caps_all_failing_objectives() {
        use crate::resilience::EvalOutcome;
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let policy = FailurePolicy {
            budget_fraction: 0.0, // failures are free — only the cap stops us
            max_failures: 7,
            ..Default::default()
        };
        let err = BoSearch::new(quick_config(20, 3))
            .run_resilient(
                &sub,
                |_, _| {
                    EvalOutcome::Failed(crate::resilience::EvalError::NonFinite {
                        what: "total".into(),
                    })
                },
                &policy,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::SearchStalled(_)), "{err}");
    }

    #[test]
    fn resilient_checkpoint_resume_is_bit_for_bit() {
        use crate::resilience::{EvalOutcome, FaultKind, FaultPlan, FaultyObjective, VirtualClock};
        use crate::Objective as _;
        use std::sync::Arc;

        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let names = obj.routine_names();
        let policy = FailurePolicy::default();
        let mut cfg = quick_config(25, 17);
        let path =
            std::env::temp_dir().join(format!("cets_resume_bitforbit_{}.json", std::process::id()));
        cfg.checkpoint_path = Some(path.clone());

        // Every 3rd attempt returns NaN → failures occur before the crash.
        let plan = FaultPlan {
            every_kth: Some((3, FaultKind::NonFinite)),
            ..Default::default()
        };

        // Uninterrupted run.
        let clock = Arc::new(VirtualClock::new());
        let faulty = FaultyObjective::new(&obj, plan.clone(), clock);
        let full = BoSearch::new(cfg.clone())
            .run_resilient(
                &sub,
                |c, _| EvalOutcome::screened(faulty.evaluate(c), &names),
                &policy,
            )
            .unwrap();

        // The run's own checkpoints carry the tier-policy tag.
        assert_eq!(
            BoCheckpoint::load(&path).unwrap().tier.as_deref(),
            Some("auto:512")
        );

        // Interrupted run: stop (panic out of the callback would be messy;
        // just stop calling) after k attempts by running with a tiny budget
        // crafted so exactly k attempts happen, then resume from the
        // checkpoint file the first run left behind at attempt k.
        let k = 9;
        let cp_full = BoCheckpoint::from_records(cfg.seed, &full.records[..k]);
        cp_full.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        let clock2 = Arc::new(VirtualClock::new());
        let faulty2 = FaultyObjective::new(&obj, plan, clock2);
        // Re-align the injector's every-kth counter with the prefix: the
        // first k attempts already happened before the "crash" (no Panic
        // faults in this plan, so plain calls advance it safely).
        for _ in 0..k {
            faulty2.evaluate(&obj.default_config());
        }
        let resumed = BoSearch::new(cfg.clone())
            .resume_resilient(
                &sub,
                |c, _| EvalOutcome::screened(faulty2.evaluate(c), &names),
                &policy,
                &loaded,
            )
            .unwrap();

        assert_eq!(
            resumed.records, full.records,
            "resumed attempt history diverged from the uninterrupted run"
        );
        assert_eq!(resumed.outcome.history, full.outcome.history);
        assert_eq!(resumed.outcome.best_value, full.outcome.best_value);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resilient_retrain_every_1_matches_always_retrain_reference() {
        // `retrain_every = 1` makes every iteration a retrain boundary, so
        // the incremental surrogate cache must reproduce the historical
        // always-retrain loop bit for bit. The reference below replicates
        // that loop verbatim: fresh `Gp::train` on the policy's training
        // data every iteration, no cache, same per-iteration RNG streams.
        use crate::resilience::{EvalOutcome, FaultKind, FaultPlan, FaultyObjective, VirtualClock};
        use crate::Objective as _;
        use cets_gp::Gp;
        use std::sync::Arc;

        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let names = obj.routine_names();
        let policy = FailurePolicy::default();
        let mut cfg = quick_config(22, 31);
        cfg.retrain_every = 1;

        // Every 4th attempt fails, so imputation is exercised too.
        let plan = FaultPlan {
            every_kth: Some((4, FaultKind::NonFinite)),
            ..Default::default()
        };
        let clock = Arc::new(VirtualClock::new());
        let faulty = FaultyObjective::new(&obj, plan.clone(), clock);
        let search = BoSearch::new(cfg.clone());
        let out = search
            .run_resilient(
                &sub,
                |c, _| EvalOutcome::screened(faulty.evaluate(c), &names),
                &policy,
            )
            .unwrap();

        let uslabs = crate::contraction::active_unit_slabs(&sub);
        let clock2 = Arc::new(VirtualClock::new());
        let faulty2 = FaultyObjective::new(&obj, plan, clock2);
        let design = search.resilient_design(&sub, &uslabs).unwrap();
        let mut records: Vec<EvalRecord> = Vec::new();
        let evaluate = |u: &[f64], records: &mut Vec<EvalRecord>| {
            let cfg_full = sub.lift(u).unwrap();
            let rec = match EvalOutcome::screened(faulty2.evaluate(&cfg_full), &names) {
                EvalOutcome::Ok(obs) => EvalRecord::ok(u.to_vec(), obs.total),
                EvalOutcome::Failed(e) => {
                    EvalRecord::failed(u.to_vec(), FailedEval::from_error(&e))
                }
            };
            records.push(rec);
        };
        let within =
            |records: &[EvalRecord]| policy.budget_spent(records) + 1e-9 < cfg.max_evals as f64;
        while records.len() < design.len() && within(&records) {
            let u = design[records.len()].clone();
            evaluate(&u, &mut records);
        }
        while within(&records) {
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(records.len() as u64));
            let (xs, ys) = policy.training_data(&records);
            let u_next = if xs.is_empty() {
                search.sample_valid_unit(&sub, &uslabs, &mut rng).unwrap()
            } else {
                let mut gp_cfg = cfg.gp.clone();
                gp_cfg.seed = cfg.seed.wrapping_add(records.len() as u64);
                let gp = Surrogate::Exact(Gp::train(&xs, &ys, &gp_cfg).unwrap());
                let best = records
                    .iter()
                    .filter_map(EvalRecord::y)
                    .fold(f64::INFINITY, f64::min);
                search
                    .propose_impl(&sub, &uslabs, &gp, best, None, &mut rng)
                    .unwrap()
            };
            evaluate(&u_next, &mut records);
        }
        assert_eq!(
            out.records, records,
            "incremental loop diverged from the always-retrain reference"
        );
    }

    #[test]
    fn imputed_value_matches_training_data_arithmetic() {
        use crate::resilience::{FailedEval, FailureKind};
        let fail = |u: Vec<f64>| {
            EvalRecord::failed(
                u,
                FailedEval {
                    kind: FailureKind::Crashed,
                    message: String::new(),
                },
            )
        };
        let records = vec![
            EvalRecord::ok(vec![0.1], 2.0),
            fail(vec![0.5]),
            EvalRecord::ok(vec![0.9], 5.0),
        ];
        let wpm = FailurePolicy {
            imputation: Imputation::WorstPlusMargin { margin: 0.5 },
            ..Default::default()
        };
        // worst=5, best=2, spread=3 → 5 + 0.5·3 = 6.5, matching the value
        // training_data bakes into the failure point.
        assert_eq!(wpm.imputed_value(&records), Some(6.5));
        let (_, ys) = wpm.training_data(&records);
        assert!(ys.contains(&6.5));

        // Degenerate spread → worst + margin.
        let flat = vec![EvalRecord::ok(vec![0.1], 3.0), fail(vec![0.5])];
        assert_eq!(wpm.imputed_value(&flat), Some(3.5));

        // Nothing to derive from, and Exclude never imputes.
        assert_eq!(wpm.imputed_value(&[fail(vec![0.5])]), None);
        let exclude = FailurePolicy {
            imputation: Imputation::Exclude,
            ..Default::default()
        };
        assert_eq!(exclude.imputed_value(&records), None);
    }

    #[test]
    fn resume_rejects_tier_mismatch() {
        use crate::resilience::EvalOutcome;
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let search = BoSearch::new(quick_config(10, 1)); // tier tag: auto:512
        let cp =
            BoCheckpoint::from_history(1, &[(vec![0.1, 0.2, 0.3], 1.0)]).with_tier("sparse".into());
        let err = search
            .resume(&sub, |c| obj.evaluate(c).total, &cp)
            .unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
        let err = search
            .resume_resilient(
                &sub,
                |c, _| EvalOutcome::Ok(obj.evaluate(c)),
                &FailurePolicy::default(),
                &cp,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
        // Checkpoints from before the tier layer carry no tag and resume.
        let cp_old = BoCheckpoint::from_history(1, &[(vec![0.1, 0.2, 0.3], 1.0)]);
        assert!(search
            .resume(&sub, |c| obj.evaluate(c).total, &cp_old)
            .is_ok());
    }

    #[test]
    fn resume_resilient_rejects_seed_mismatch() {
        use crate::resilience::EvalOutcome;
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let cp = BoCheckpoint::from_history(999, &[(vec![0.1, 0.2, 0.3], 1.0)]);
        let err = BoSearch::new(quick_config(10, 1))
            .resume_resilient(
                &sub,
                |c, _| EvalOutcome::Ok(obj.evaluate(c)),
                &FailurePolicy::default(),
                &cp,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn seeded_history_counts_toward_budget() {
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();
        // Pre-seed with 10 evaluated points, ask for 15 total.
        let mut seeds = Vec::new();
        for i in 0..10 {
            let u = vec![i as f64 / 10.0; 3];
            let y = obj.evaluate(&sub.lift(&u).unwrap()).total;
            seeds.push((u, y));
        }
        let out = BoSearch::new(quick_config(15, 5))
            .run_with_history(&sub, |c| obj.evaluate(c).total, seeds)
            .unwrap();
        assert_eq!(out.n_evals, 15);
    }
}
