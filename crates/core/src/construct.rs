//! Constructive in-box sampling: build feasible configurations one
//! parameter at a time instead of rejecting blind uniform draws.
//!
//! The walk fixes parameters in declaration order. For each parameter it
//! asks the relational [`Projector`] for the feasible slabs of that
//! coordinate *given the coordinates already fixed*, then draws from the
//! slab union measure-proportionally. Where rejection sampling discards
//! most of the cube on tightly coupled or disjunctive constraint sets
//! (the failure mode the paper reports for joint 20-dim GPTune searches),
//! the walk lands inside the feasible region by construction.
//!
//! Projection is a sound over-approximation, not an exact solver, so the
//! sampler keeps a final concrete [`SearchSpace::is_valid`] check and
//! retries the walk a few times before reporting failure; callers fall
//! back to rejection via [`crate::contraction_aware_sampler`] when it
//! does. On octagon-expressible systems the projection is tight and every
//! walk succeeds on the first try.

use crate::contraction::space_bundle;
use cets_lint::{Interval, Projector};
use cets_space::{Config, ParamDef, SearchSpace};
use rand::{Rng, RngExt};
use std::collections::BTreeMap;

/// Whole-walk retries before [`ConstructiveSampler::sample`] gives up.
/// Each retry re-randomizes every coordinate, so only adversarially
/// coupled non-octagonal systems burn more than one.
const WALK_ATTEMPTS: usize = 8;

/// A sampler that *constructs* feasible configurations by walking
/// parameters through the relational projector (see the module docs).
///
/// ```
/// use cets_core::ConstructiveSampler;
/// use cets_space::{Constraint, SearchSpace};
/// use rand::SeedableRng;
///
/// let space = SearchSpace::builder()
///     .integer("a", 0, 10)
///     .constraint(Constraint::new("slab", "a <= 1 || a >= 9", |s, c| {
///         let a = s.get_i64(c, "a").unwrap();
///         a <= 1 || a >= 9
///     }))
///     .build();
/// let sampler = ConstructiveSampler::new(&space).expect("analyzable space");
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let cfg = sampler.sample(&mut rng).expect("feasible by construction");
/// assert!(space.is_valid(&cfg));
/// ```
#[derive(Debug)]
pub struct ConstructiveSampler<'a> {
    space: &'a SearchSpace,
    projector: Projector,
}

impl<'a> ConstructiveSampler<'a> {
    /// Build a constructive sampler over `space`. `None` when the
    /// space's data mirror is not analyzable (invalid domains) or the
    /// constraint system is statically proved empty — both cases where
    /// construction cannot help.
    pub fn new(space: &'a SearchSpace) -> Option<ConstructiveSampler<'a>> {
        let projector = Projector::from_bundle(&space_bundle(space))?;
        if projector.proved_empty() {
            return None;
        }
        Some(ConstructiveSampler { space, projector })
    }

    /// How many constraints the underlying projector could not analyze
    /// (unparseable descriptions). The sampler still works — it is simply
    /// blind to those constraints until the final validity check.
    pub fn blind_constraints(&self) -> usize {
        self.projector.skipped_constraints
    }

    /// Construct one feasible configuration, or `None` when every walk
    /// attempt failed (over-approximate projections on a deeply coupled
    /// non-octagonal system). Bit-deterministic for a fixed RNG state:
    /// each parameter consumes exactly one `rng` draw per walk.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Config> {
        (0..WALK_ATTEMPTS).find_map(|_| self.walk(rng))
    }

    /// One walk: fix parameters in declaration order, drawing each from
    /// its projected slabs conditioned on the prefix already fixed.
    fn walk<R: Rng>(&self, rng: &mut R) -> Option<Config> {
        let mut fixed: BTreeMap<String, f64> = BTreeMap::new();
        let mut unit = Vec::with_capacity(self.space.dim());
        for (name, def) in self.space.names().iter().zip(self.space.defs()) {
            let (slabs, stride) = self.projector.project_slabs_stride(name, &fixed);
            if slabs.is_empty() {
                return None;
            }
            let (value, u) = draw_in_slabs(def, &slabs, stride, rng.random::<f64>())?;
            fixed.insert(name.clone(), value);
            unit.push(u);
        }
        let cfg = self.space.decode(&unit).ok()?;
        // Projection over-approximates; only a concrete check certifies.
        if self.space.is_valid(&cfg) {
            Some(cfg)
        } else {
            None
        }
    }
}

/// Map one uniform draw `r ∈ [0, 1)` to a value inside the slab union,
/// measure-proportionally (continuous measure for reals, counting measure
/// for discrete kinds). Returns the value on the *constraint scale*
/// (ordinals by declared value, categoricals by option index) plus the
/// unit-cube coordinate that decodes to it.
///
/// An integer `stride` (`m`, `r`) restricts the counting measure to the
/// residue grid `mℤ + r`: on `n % 256 == 0` the walk enumerates the 390
/// multiples instead of rejecting 99.6% of uniform draws. Either way the
/// draw consumes exactly one uniform variate, so spaces without
/// congruence facts sample bit-identically to before.
fn draw_in_slabs(
    def: &ParamDef,
    slabs: &[Interval],
    stride: Option<(u64, u64)>,
    r: f64,
) -> Option<(f64, f64)> {
    match def {
        ParamDef::Real { lo, hi } => {
            let total: f64 = slabs.iter().map(Interval::width).sum();
            let v = if total > 0.0 {
                let mut t = r * total;
                let mut v = slabs[0].lo;
                for s in slabs {
                    if t <= s.width() {
                        v = (s.lo + t).min(s.hi);
                        break;
                    }
                    t -= s.width();
                }
                v
            } else {
                // Union of point slabs: counting measure instead.
                let k = pick_index(slabs.len(), r);
                slabs[k].lo
            };
            Some((v, (v - lo) / (hi - lo)))
        }
        ParamDef::Integer { lo, hi } => {
            // Per-slab (first member, member count, step): the whole
            // slab without a stride, the congruent points under one.
            let (step, counts): (i64, Vec<(i64, i64)>) = match stride {
                Some((m, rr)) => {
                    let m = m as i64;
                    let rr = rr as i64;
                    (
                        m,
                        slabs
                            .iter()
                            .filter_map(|s| {
                                let a = (s.lo.ceil() as i64).max(*lo);
                                let b = (s.hi.floor() as i64).min(*hi);
                                if a > b {
                                    return None;
                                }
                                let first = a + (rr - a).rem_euclid(m);
                                (first <= b).then(|| (first, (b - first) / m + 1))
                            })
                            .collect(),
                    )
                }
                None => (
                    1,
                    slabs
                        .iter()
                        .filter_map(|s| {
                            let a = (s.lo.ceil() as i64).max(*lo);
                            let b = (s.hi.floor() as i64).min(*hi);
                            (a <= b).then_some((a, b - a + 1))
                        })
                        .collect(),
                ),
            };
            let total: i64 = counts.iter().map(|(_, n)| n).sum();
            if total <= 0 {
                return None;
            }
            let mut t = pick_index(total as usize, r) as i64;
            for (first, n) in &counts {
                if t < *n {
                    let k = first + t * step;
                    let bins = (hi - lo + 1) as f64;
                    return Some((k as f64, ((k - lo) as f64 + 0.5) / bins));
                }
                t -= n;
            }
            None
        }
        ParamDef::Ordinal { values } => {
            let keep: Vec<usize> = (0..values.len())
                .filter(|&i| slabs.iter().any(|s| s.contains(values[i])))
                .collect();
            if keep.is_empty() {
                return None;
            }
            let i = keep[pick_index(keep.len(), r)];
            Some((values[i], (i as f64 + 0.5) / values.len() as f64))
        }
        ParamDef::Categorical { options } => {
            let n = options.len();
            let keep: Vec<usize> = (0..n)
                .filter(|&i| slabs.iter().any(|s| s.contains(i as f64)))
                .collect();
            if keep.is_empty() {
                return None;
            }
            let i = keep[pick_index(keep.len(), r)];
            Some((i as f64, (i as f64 + 0.5) / n as f64))
        }
    }
}

/// `r ∈ [0, 1)` → index in `0..n`, guarding the `r == 1.0` edge.
fn pick_index(n: usize, r: f64) -> usize {
    ((r * n as f64) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_space::Constraint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn disjunctive_space() -> SearchSpace {
        SearchSpace::builder()
            .integer("a", 0, 10)
            .constraint(Constraint::new("slab", "a <= 1 || a >= 9", |s, c| {
                let a = s.get_i64(c, "a").unwrap();
                a <= 1 || a >= 9
            }))
            .build()
    }

    #[test]
    fn every_draw_is_feasible_on_the_disjunctive_space() {
        let space = disjunctive_space();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..300 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            let a = space.get_i64(&cfg, "a").unwrap();
            assert!(a <= 1 || a >= 9, "infeasible a = {a}");
            seen_low |= a <= 1;
            seen_high |= a >= 9;
        }
        assert!(seen_low && seen_high, "both slabs must be reachable");
    }

    #[test]
    fn coupled_sum_constraint_walks_conditionally() {
        // a + b <= 10: once a is fixed, b's slabs shrink to [0, 10 - a].
        let space = SearchSpace::builder()
            .integer("a", 0, 10)
            .integer("b", 0, 10)
            .constraint(Constraint::new("cap", "a + b <= 10", |s, c| {
                s.get_i64(c, "a").unwrap() + s.get_i64(c, "b").unwrap() <= 10
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            let a = space.get_i64(&cfg, "a").unwrap();
            let b = space.get_i64(&cfg, "b").unwrap();
            assert!(a + b <= 10, "infeasible ({a}, {b})");
        }
    }

    #[test]
    fn product_constraint_stays_feasible() {
        // The paper's residency rule shape: g1 * zc <= 16384 over [32, 512]².
        let space = SearchSpace::builder()
            .integer("g1", 32, 512)
            .integer("zc", 32, 512)
            .constraint(Constraint::new("res", "g1 * zc <= 16384", |s, c| {
                s.get_i64(c, "g1").unwrap() * s.get_i64(c, "zc").unwrap() <= 16384
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            let g1 = space.get_i64(&cfg, "g1").unwrap();
            let zc = space.get_i64(&cfg, "zc").unwrap();
            assert!(g1 * zc <= 16384, "infeasible ({g1}, {zc})");
        }
    }

    #[test]
    fn mixed_domains_draw_from_their_own_scales() {
        let space = SearchSpace::builder()
            .real("x", 0.0, 100.0)
            .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
            .categorical("mode", vec!["row".into(), "col".into()])
            .constraint(Constraint::new("xc", "x <= 25 || x >= 75", |s, c| {
                let x = s.get_f64(c, "x").unwrap();
                !(25.0..75.0).contains(&x)
            }))
            .constraint(Constraint::new("uc", "u <= 4", |s, c| {
                s.get_f64(c, "u").unwrap() <= 4.0
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            assert!(space.is_valid(&cfg));
            assert!(space.get_f64(&cfg, "u").unwrap() <= 4.0);
        }
    }

    #[test]
    fn divisor_constraint_draws_on_the_grid() {
        // Rejection keeps ~0.4% of uniform draws here; every constructed
        // walk must land on the 390-point multiples grid directly.
        let space = SearchSpace::builder()
            .integer("n", 1, 100_000)
            .constraint(Constraint::new("blk", "n % 256 == 0", |s, c| {
                s.get_i64(c, "n").unwrap() % 256 == 0
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = i64::MAX;
        let mut hi_seen = i64::MIN;
        for _ in 0..300 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            let n = space.get_i64(&cfg, "n").unwrap();
            assert_eq!(n % 256, 0, "off-grid n = {n}");
            lo_seen = lo_seen.min(n);
            hi_seen = hi_seen.max(n);
        }
        // The draws cover the grid, not just one corner of it.
        assert!(lo_seen <= 20_000, "low end unreached: {lo_seen}");
        assert!(hi_seen >= 80_000, "high end unreached: {hi_seen}");
    }

    #[test]
    fn pinned_divisor_links_dividend_draws() {
        // n % nb == 0 with nb ordinal: whichever block size the walk
        // picks first, n lands on that grid.
        let space = SearchSpace::builder()
            .ordinal("nb", vec![128.0, 192.0, 256.0])
            .integer("n", 1, 100_000)
            .constraint(Constraint::new("blk", "n % nb == 0", |s, c| {
                let nb = s.get_f64(c, "nb").unwrap() as i64;
                s.get_i64(c, "n").unwrap() % nb == 0
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let cfg = sam.sample(&mut rng).expect("constructed draw");
            let nb = space.get_f64(&cfg, "nb").unwrap() as i64;
            let n = space.get_i64(&cfg, "n").unwrap();
            assert_eq!(n % nb, 0, "off-grid n = {n} for nb = {nb}");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let space = disjunctive_space();
        let sam = ConstructiveSampler::new(&space).expect("analyzable");
        let run = || {
            let mut rng = StdRng::seed_from_u64(1234);
            (0..50)
                .map(|_| sam.sample(&mut rng).expect("constructed draw"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn statically_empty_system_yields_no_sampler() {
        let space = SearchSpace::builder()
            .integer("a", 0, 10)
            .constraint(Constraint::new("lo", "a <= 1", |s, c| {
                s.get_i64(c, "a").unwrap() <= 1
            }))
            .constraint(Constraint::new("hi", "a >= 9", |s, c| {
                s.get_i64(c, "a").unwrap() >= 9
            }))
            .build();
        assert!(ConstructiveSampler::new(&space).is_none());
    }

    #[test]
    fn unparseable_constraints_are_counted_not_fatal() {
        let space = SearchSpace::builder()
            .integer("a", 0, 10)
            .constraint(Constraint::new("opaque", "is_pow2(a)", |s, c| {
                let a = s.get_i64(c, "a").unwrap();
                a != 0 && (a & (a - 1)) == 0
            }))
            .build();
        let sam = ConstructiveSampler::new(&space).expect("still analyzable");
        assert_eq!(sam.blind_constraints(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        // The final validity check still filters the blind constraint.
        for _ in 0..50 {
            if let Some(cfg) = sam.sample(&mut rng) {
                let a = space.get_i64(&cfg, "a").unwrap();
                assert!(a != 0 && (a & (a - 1)) == 0, "invalid a = {a}");
            }
        }
    }
}
