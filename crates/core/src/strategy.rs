//! The comparison strategies of the paper's Table III: random search,
//! fully-joint BO, fully-independent BO, and explicit merged/split plans.

use crate::bo::BoConfig;
use crate::methodology::{execute_plan, PlanExecution, PlannedSearch, SearchPlan, SearchTarget};
use crate::objective::{CountingObjective, Objective};
use crate::random_search::{random_search, RandomSearchConfig};
use crate::{CoreError, Result};
use std::collections::BTreeMap;
use std::time::Instant;

/// A search strategy over a multi-routine objective.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Uniform random sampling of the full space (`n_evals` draws).
    RandomSearch {
        /// Number of evaluations.
        n_evals: usize,
    },
    /// One joint BO search over all parameters, minimizing the total
    /// (paper: `G1+G2+G3+G4`, budget `10 × D`).
    FullyJoint,
    /// One BO search per routine over its own parameters, each minimizing
    /// its routine's runtime, run in parallel (paper: `G1,G2,G3,G4`).
    FullyIndependent,
    /// Explicit groups of routines: each group searches the union of its
    /// routines' parameters and minimizes their joint runtime (paper:
    /// `G1,G2,G3+G4` — the methodology's suggestion for Cases 3-5).
    Groups(Vec<Vec<String>>),
}

impl Strategy {
    /// Short display name matching the paper's column headers.
    pub fn name(&self, routine_names: &[String]) -> String {
        match self {
            Strategy::RandomSearch { .. } => "Random Search".to_string(),
            Strategy::FullyJoint => routine_names.join("+"),
            Strategy::FullyIndependent => routine_names.join(","),
            Strategy::Groups(groups) => groups
                .iter()
                .map(|g| g.join("+"))
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}

/// Outcome of running one strategy, comparable across strategies (the two
/// axes of Table III: minimum found and search time).
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// Strategy display name.
    pub name: String,
    /// The combined best configuration.
    pub final_config: cets_space::Config,
    /// Total objective at the combined best configuration (the paper's
    /// "Minima Found").
    pub final_value: f64,
    /// Objective evaluations consumed.
    pub n_evals: usize,
    /// Wall-clock search time in seconds (the paper's "Time"). For split
    /// strategies this is the parallel makespan, not the sum.
    pub time_s: f64,
}

/// Run a strategy.
///
/// `owners` maps each parameter to its routine (same convention as
/// [`crate::Methodology::analyze`]); it is required by the independent and
/// grouped strategies to know which parameters belong to which routines.
pub fn run_strategy<O: Objective + ?Sized>(
    objective: &O,
    owners: &[(&str, &str)],
    strategy: &Strategy,
    bo_template: &BoConfig,
    evals_per_dim: usize,
) -> Result<StrategyResult> {
    let routine_names = objective.routine_names();
    let name = strategy.name(&routine_names);
    let counted = CountingObjective::new(objective);
    let start = Instant::now();

    let (final_config, final_value) = match strategy {
        Strategy::RandomSearch { n_evals } => {
            let out = random_search(
                &counted,
                &RandomSearchConfig {
                    n_evals: *n_evals,
                    seed: bo_template.seed,
                    threads: 8,
                },
            )?;
            (out.best_config, out.best_value)
        }
        Strategy::FullyJoint => {
            let all: Vec<String> = objective.space().names().to_vec();
            let plan = SearchPlan {
                stages: vec![vec![PlannedSearch {
                    name: name.clone(),
                    budget: evals_per_dim * all.len(),
                    params: all,
                    dropped: vec![],
                    target: SearchTarget::Total,
                }]],
            };
            let exec = execute_plan(&counted, &plan, bo_template, false)?;
            (exec.final_config, exec.final_value)
        }
        Strategy::FullyIndependent => {
            let groups: Vec<Vec<String>> = routine_names.iter().map(|r| vec![r.clone()]).collect();
            let exec = run_grouped(&counted, owners, &groups, bo_template, evals_per_dim)?;
            (exec.final_config, exec.final_value)
        }
        Strategy::Groups(groups) => {
            let exec = run_grouped(&counted, owners, groups, bo_template, evals_per_dim)?;
            (exec.final_config, exec.final_value)
        }
    };

    Ok(StrategyResult {
        name,
        final_config,
        final_value,
        n_evals: counted.count(),
        time_s: start.elapsed().as_secs_f64(),
    })
}

/// Build and execute a one-stage plan from explicit routine groups.
fn run_grouped<O: Objective + ?Sized>(
    objective: &O,
    owners: &[(&str, &str)],
    groups: &[Vec<String>],
    bo_template: &BoConfig,
    evals_per_dim: usize,
) -> Result<PlanExecution> {
    let mut by_routine: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (p, r) in owners {
        by_routine.entry(r).or_default().push(p);
    }
    let space = objective.space();
    let mut stage = Vec::with_capacity(groups.len());
    for group in groups {
        let mut params: Vec<String> = Vec::new();
        for routine in group {
            let owned = by_routine.get(routine.as_str()).ok_or_else(|| {
                CoreError::BadConfig(format!("routine {routine} owns no parameters"))
            })?;
            params.extend(owned.iter().map(|p| p.to_string()));
        }
        // Keep parameters in space order for reproducible subspaces.
        params.sort_by_key(|p| space.index_of(p).unwrap_or(usize::MAX));
        stage.push(PlannedSearch {
            name: group.join("+"),
            budget: evals_per_dim * params.len(),
            params,
            dropped: vec![],
            target: SearchTarget::Routines(group.clone()),
        });
    }
    execute_plan(
        objective,
        &SearchPlan {
            stages: vec![stage],
        },
        bo_template,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::{CoupledSphere, SplitSphere};

    fn quick_bo(seed: u64) -> BoConfig {
        BoConfig {
            n_init: 4,
            n_candidates: 48,
            n_local: 8,
            seed,
            ..Default::default()
        }
    }

    fn owners3() -> Vec<(&'static str, &'static str)> {
        vec![("x0", "r0"), ("x1", "r0"), ("x2", "r1")]
    }

    #[test]
    fn names_match_paper_style() {
        let names = vec!["G1".to_string(), "G2".to_string()];
        assert_eq!(Strategy::FullyJoint.name(&names), "G1+G2");
        assert_eq!(Strategy::FullyIndependent.name(&names), "G1,G2");
        assert_eq!(
            Strategy::Groups(vec![vec!["G1".into()], vec!["G2".into(), "G3".into()]]).name(&names),
            "G1,G2+G3"
        );
        assert_eq!(
            Strategy::RandomSearch { n_evals: 10 }.name(&names),
            "Random Search"
        );
    }

    #[test]
    fn random_strategy_counts_evals() {
        let obj = SplitSphere::new();
        let r = run_strategy(
            &obj,
            &owners3(),
            &Strategy::RandomSearch { n_evals: 60 },
            &quick_bo(2),
            10,
        )
        .unwrap();
        assert_eq!(r.n_evals, 60);
        assert!(r.final_value.is_finite());
    }

    #[test]
    fn joint_strategy_budget() {
        let obj = SplitSphere::new();
        let r = run_strategy(&obj, &owners3(), &Strategy::FullyJoint, &quick_bo(2), 5).unwrap();
        // 3 dims × 5 = 15 search evals + 1 final evaluation of the config.
        assert_eq!(r.n_evals, 16);
    }

    #[test]
    fn independent_beats_random_on_separable() {
        let obj = SplitSphere::new();
        let rand = run_strategy(
            &obj,
            &owners3(),
            &Strategy::RandomSearch { n_evals: 30 },
            &quick_bo(4),
            10,
        )
        .unwrap();
        let indep = run_strategy(
            &obj,
            &owners3(),
            &Strategy::FullyIndependent,
            &quick_bo(4),
            10,
        )
        .unwrap();
        assert!(
            indep.final_value <= rand.final_value,
            "independent {} !<= random {}",
            indep.final_value,
            rand.final_value
        );
    }

    #[test]
    fn grouped_strategy_merges_params() {
        let obj = CoupledSphere::new();
        let r = run_strategy(
            &obj,
            &owners3(),
            &Strategy::Groups(vec![vec!["r0".into(), "r1".into()]]),
            &quick_bo(6),
            8,
        )
        .unwrap();
        // Single merged 3-dim search: 24 evals + 1 final.
        assert_eq!(r.n_evals, 25);
        assert!(obj.space().is_valid(&r.final_config));
    }

    #[test]
    fn unknown_group_routine_rejected() {
        let obj = SplitSphere::new();
        assert!(run_strategy(
            &obj,
            &owners3(),
            &Strategy::Groups(vec![vec!["nope".into()]]),
            &quick_bo(1),
            5,
        )
        .is_err());
    }
}
