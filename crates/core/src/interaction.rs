//! Classical pairwise interaction analysis — the *expensive* alternative
//! the methodology's sensitivity analysis replaces.
//!
//! The paper (Sections II/IV-C) argues that decomposition approaches in the
//! literature "lead to a substantial number of observations" because they
//! probe orthogonality directly. This module implements that baseline: a
//! two-level factorial interaction screen. For every parameter pair
//! `(p, q)` it evaluates the four corners
//!
//! ```text
//! f(base), f(p→p'), f(q→q'), f(p→p', q→q')
//! ```
//!
//! and scores the (normalized) interaction effect
//! `|f(pq) − f(p) − f(q) + f(base)| / |f(base)|`: zero for additively
//! separable (orthogonal) pairs, positive when the parameters interact.
//!
//! Observation cost is `1 + D + D(D−1)/2` per probe level — **quadratic in
//! D** versus the sensitivity analysis's linear `1 + D×V`. For the paper's
//! `D = 20` that is 211 evaluations per level against 101 for `V = 5`, and
//! the gap widens with more levels or more parameters; this is the
//! concrete cost the methodology avoids. Run `cargo bench -p cets-bench
//! --bench sensitivity_cost` for the measured comparison.

use crate::objective::Objective;
use crate::Result;
use cets_space::{Config, ParamDef, ParamValue};

/// Result of a pairwise interaction screen.
#[derive(Debug, Clone)]
pub struct InteractionAnalysis {
    param_names: Vec<String>,
    /// `effects[p][q]` = normalized interaction magnitude (symmetric,
    /// zero diagonal).
    effects: Vec<Vec<f64>>,
    /// Objective evaluations consumed.
    pub observations: usize,
}

impl InteractionAnalysis {
    /// Interaction magnitude between two parameters (by index).
    pub fn effect(&self, p: usize, q: usize) -> f64 {
        self.effects[p][q]
    }

    /// Interaction magnitude by names.
    pub fn effect_by_name(&self, p: &str, q: &str) -> Option<f64> {
        let pi = self.param_names.iter().position(|n| n == p)?;
        let qi = self.param_names.iter().position(|n| n == q)?;
        Some(self.effects[pi][qi])
    }

    /// All pairs with interaction ≥ `threshold`, strongest first.
    pub fn interacting_pairs(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for p in 0..self.param_names.len() {
            for q in (p + 1)..self.param_names.len() {
                if self.effects[p][q] >= threshold {
                    out.push((
                        self.param_names[p].clone(),
                        self.param_names[q].clone(),
                        self.effects[p][q],
                    ));
                }
            }
        }
        out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// The theoretical observation count for `d` parameters:
    /// `1 + d + d(d−1)/2`.
    pub fn expected_cost(d: usize) -> usize {
        1 + d + d * (d - 1) / 2
    }
}

/// A "high" probe value for each parameter: the domain value farthest from
/// the baseline in unit space (guaranteed distinct for non-degenerate
/// domains).
fn probe_value(def: &ParamDef, baseline: &ParamValue) -> ParamValue {
    let u = def.encode(baseline).unwrap_or(0.5);
    def.decode(if u < 0.5 { 0.95 } else { 0.05 })
}

/// Run the two-level pairwise interaction screen on the total objective.
///
/// Pairs whose combined configuration violates a constraint are recorded
/// as zero interaction (they cannot co-occur, so no joint search is
/// needed); the conservative alternative of marking them interacting would
/// merge everything in heavily constrained spaces.
pub fn pairwise_interactions<O: Objective + ?Sized>(
    objective: &O,
    baseline: &Config,
) -> Result<InteractionAnalysis> {
    pairwise_interactions_on(objective, baseline, |obs| obs.total)
}

/// Like [`pairwise_interactions`] but screening an arbitrary scalar view
/// of the observation (e.g. one routine's raw runtime). Note that the
/// screen is *scale-sensitive*: a multiplicative coupling is invisible
/// through a logarithmic observable (`ln(x·y) = ln x + ln y` is additive),
/// which is one more reason the methodology screens each routine's own
/// runtime rather than a transformed total.
pub fn pairwise_interactions_on<O: Objective + ?Sized>(
    objective: &O,
    baseline: &Config,
    extract: impl Fn(&crate::objective::Observation) -> f64,
) -> Result<InteractionAnalysis> {
    let space = objective.space();
    let d = space.dim();
    let mut observations = 0usize;
    let mut eval = |cfg: &Config| -> f64 {
        observations += 1;
        extract(&objective.evaluate(cfg))
    };

    let f_base = eval(baseline);
    // Single-parameter probes.
    let mut probes: Vec<Option<(Config, f64)>> = Vec::with_capacity(d);
    for p in 0..d {
        let mut cfg = baseline.clone();
        cfg[p] = probe_value(&space.defs()[p], &baseline[p]);
        if space.is_valid(&cfg) {
            let v = eval(&cfg);
            probes.push(Some((cfg, v)));
        } else {
            probes.push(None);
        }
    }

    let mut effects = vec![vec![0.0; d]; d];
    let denom = f_base.abs().max(1e-12);
    for p in 0..d {
        let Some((cfg_p, f_p)) = &probes[p] else {
            continue;
        };
        for q in (p + 1)..d {
            let Some((_, f_q)) = &probes[q] else { continue };
            let mut cfg_pq = cfg_p.clone();
            cfg_pq[q] = probe_value(&space.defs()[q], &baseline[q]);
            if !space.is_valid(&cfg_pq) {
                continue;
            }
            let f_pq = eval(&cfg_pq);
            let inter = (f_pq - f_p - f_q + f_base).abs() / denom;
            effects[p][q] = inter;
            effects[q][p] = inter;
        }
    }

    Ok(InteractionAnalysis {
        param_names: space.names().to_vec(),
        effects,
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::{CoupledSphere, SplitSphere};
    use crate::objective::CountingObjective;

    #[test]
    fn separable_function_has_no_interactions() {
        let obj = SplitSphere::new(); // x0² + x1² + x2²: fully additive
        let a = pairwise_interactions(&obj, &obj.default_config()).unwrap();
        let pairs = a.interacting_pairs(1e-9);
        assert!(pairs.is_empty(), "unexpected interactions: {pairs:?}");
    }

    #[test]
    fn coupled_function_flags_the_right_pair() {
        let obj = CoupledSphere::new(); // contains (x1·x2)²
        let a = pairwise_interactions(&obj, &obj.default_config()).unwrap();
        let x1x2 = a.effect_by_name("x1", "x2").unwrap();
        let x0x1 = a.effect_by_name("x0", "x1").unwrap();
        let x0x2 = a.effect_by_name("x0", "x2").unwrap();
        assert!(x1x2 > 1.0, "x1-x2 interaction missed: {x1x2}");
        assert!(x0x1 < 1e-9, "spurious x0-x1 interaction: {x0x1}");
        assert!(x0x2 < 1e-9, "spurious x0-x2 interaction: {x0x2}");
        let pairs = a.interacting_pairs(0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0.as_str(), pairs[0].1.as_str()), ("x1", "x2"));
    }

    #[test]
    fn observation_cost_is_quadratic() {
        let obj = SplitSphere::new();
        let counted = CountingObjective::new(&obj);
        let a = pairwise_interactions(&counted, &obj.default_config()).unwrap();
        // d = 3: 1 + 3 + 3 = 7.
        assert_eq!(a.observations, 7);
        assert_eq!(counted.count(), 7);
        assert_eq!(InteractionAnalysis::expected_cost(3), 7);
        // The paper's D = 20: 211 observations per level — more than a
        // whole V=5 sensitivity pass (101) and growing quadratically.
        assert_eq!(InteractionAnalysis::expected_cost(20), 211);
    }

    #[test]
    fn effect_symmetric_zero_diagonal() {
        let obj = CoupledSphere::new();
        let a = pairwise_interactions(&obj, &obj.default_config()).unwrap();
        for p in 0..3 {
            assert_eq!(a.effect(p, p), 0.0);
            for q in 0..3 {
                assert_eq!(a.effect(p, q), a.effect(q, p));
            }
        }
    }
}
