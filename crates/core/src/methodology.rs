//! The five-step CETS methodology (paper Section IV) end to end:
//! sensitivity → influence DAG → partition → capped search plan → staged,
//! parallel BO execution.

use crate::bo::{BoConfig, BoSearch, SearchOutcome};
use crate::db::Database;
use crate::objective::Objective;
use crate::resilience::{EvalOutcome, EvalRecord, ResilienceConfig, ResilientObjective};
use crate::sensitivity::{routine_sensitivity, VariationPolicy};
use crate::{CoreError, Result};
use cets_graph::{InfluenceGraph, Partition};
use cets_linalg::{par, ParConfig};
use cets_space::{Config, Subspace};
use cets_stats::SensitivityScores;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How strictly the built-in plan linter gates [`Methodology::run`].
///
/// Before any objective evaluation is spent on *execution*, the analysis
/// result is checked by `cets-lint` (search space, influence DAG, staged
/// plan, kernel configuration). This policy decides what happens with the
/// findings. The linter itself always runs — even under [`LintPolicy::Off`]
/// the report is computable via [`Methodology::lint_report`]; the policy
/// only controls whether findings *block* execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Never block. For experiments that deliberately stress broken plans.
    Off,
    /// Block on `Error`-level diagnostics; warnings are reported but pass.
    /// This is the default: an Error means execution would be wrong or
    /// wasted, never merely suspicious.
    #[default]
    DenyErrors,
    /// Block on warnings too. For CI-grade strictness.
    DenyWarnings,
}

impl LintPolicy {
    /// Does `report` pass under this policy?
    pub fn accepts(&self, report: &cets_lint::Report) -> bool {
        match self {
            LintPolicy::Off => true,
            LintPolicy::DenyErrors => report.errors() == 0,
            LintPolicy::DenyWarnings => report.errors() == 0 && report.warnings() == 0,
        }
    }
}

/// What a planned search minimizes.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchTarget {
    /// The application's total objective (used for upstream/precedence
    /// searches like the paper's batch-size tuning against the whole
    /// Slater-determinant region).
    Total,
    /// The sum of the named routines' runtimes (merged groups minimize
    /// their joint runtime; singleton groups their own).
    Routines(Vec<String>),
}

/// One search in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSearch {
    /// Human-readable name (e.g. `"G3+G4"`).
    pub name: String,
    /// Parameters this search tunes.
    pub params: Vec<String>,
    /// Parameters excluded by the 10-dim cap (kept at defaults).
    pub dropped: Vec<String>,
    /// Objective of the search.
    pub target: SearchTarget,
    /// Evaluation budget (paper: `10 × dims`).
    pub budget: usize,
}

impl PlannedSearch {
    /// Search dimensionality.
    pub fn dim(&self) -> usize {
        self.params.len()
    }
}

/// The ordered plan: stage `k+1` starts only after stage `k` finished and
/// its best values were frozen into the defaults. Searches *within* a stage
/// are independent and run in parallel (the paper runs its split searches
/// concurrently and reports the slowest as the search time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchPlan {
    /// Stages, each a set of mutually independent searches.
    pub stages: Vec<Vec<PlannedSearch>>,
}

impl SearchPlan {
    /// Sum of all searches' budgets (total observations).
    pub fn total_budget(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|st| st.iter().map(|s| s.budget))
            .sum()
    }

    /// All searches flattened in execution order.
    pub fn searches(&self) -> impl Iterator<Item = &PlannedSearch> {
        self.stages.iter().flatten()
    }

    /// A table like the paper's Table VII.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<16} {:>5} {:>7}  Parameters",
            "Search", "Dims", "Budget"
        );
        for (k, stage) in self.stages.iter().enumerate() {
            for p in stage {
                let _ = writeln!(
                    s,
                    "{:<16} {:>5} {:>7}  {}{}",
                    format!("[stage {k}] {}", p.name),
                    p.dim(),
                    p.budget,
                    p.params.join(", "),
                    if p.dropped.is_empty() {
                        String::new()
                    } else {
                        format!("  (dropped: {})", p.dropped.join(", "))
                    }
                );
            }
        }
        s
    }
}

/// Everything the analysis phase produced.
#[derive(Debug, Clone)]
pub struct MethodologyReport {
    /// Raw per-routine sensitivity scores (+ `"total"` pseudo-routine).
    pub scores: SensitivityScores,
    /// The influence DAG built from the scores.
    pub graph: InfluenceGraph,
    /// Its partition at the configured cut-off.
    pub partition: Partition,
    /// The final staged search plan.
    pub plan: SearchPlan,
}

/// How one planned search ended under the fault-tolerant executor.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchDisposition {
    /// The search produced a usable outcome (possibly with failed
    /// evaluations along the way).
    Completed,
    /// The search produced no usable outcome — every attempt failed, it
    /// hit its failure cap, or its infrastructure errored. Its parameters
    /// stay at the defaults in force when its stage started; the payload
    /// says why.
    Degraded(String),
}

/// Per-search failure accounting for one plan execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchLedgerEntry {
    /// Search name (matches [`PlannedSearch::name`]; `"final"` for the
    /// closing verification evaluation).
    pub search: String,
    /// Stage index the search ran in.
    pub stage: usize,
    /// Successful evaluations.
    pub n_ok: usize,
    /// Failed evaluations. For [`SearchDisposition::Degraded`] searches
    /// this counts *attempts* (retries included), since no record history
    /// survives a fully failed search.
    pub n_failed: usize,
    /// Budget consumed (`n_ok + budget_fraction × n_failed`).
    pub budget_spent: f64,
    /// How the search ended.
    pub disposition: SearchDisposition,
}

/// The failure ledger of a fault-tolerant plan execution: one entry per
/// search, in execution order. Empty for legacy (non-resilient) runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionLedger {
    /// Per-search entries, in execution order.
    pub entries: Vec<SearchLedgerEntry>,
}

impl ExecutionLedger {
    /// Searches that completed no usable outcome.
    pub fn n_degraded(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.disposition, SearchDisposition::Degraded(_)))
            .count()
    }

    /// Total failed evaluations across all searches.
    pub fn total_failures(&self) -> usize {
        self.entries.iter().map(|e| e.n_failed).sum()
    }

    /// No failures anywhere and every search completed.
    pub fn is_clean(&self) -> bool {
        self.total_failures() == 0 && self.n_degraded() == 0
    }
}

/// Result of executing a [`SearchPlan`].
#[derive(Debug, Clone)]
pub struct PlanExecution {
    /// Each search's outcome, in execution order, tagged by name.
    /// Degraded searches (fault-tolerant executor only) are absent here
    /// and present in [`PlanExecution::ledger`].
    pub searches: Vec<(String, SearchOutcome)>,
    /// All searches' best values folded into one configuration.
    pub final_config: Config,
    /// Total objective at [`PlanExecution::final_config`].
    pub final_value: f64,
    /// Total objective evaluations spent by all searches.
    pub total_evals: usize,
    /// Wall-clock time of the whole execution (stages sequential, searches
    /// within a stage parallel).
    pub wall_time: Duration,
    /// Every evaluation performed, tagged by search name — the task's
    /// configuration database (persist with [`Database::save`], reuse for
    /// transfer learning via [`Database::to_transfer_seed`]). Record order
    /// within a parallel stage is nondeterministic; contents are not.
    pub database: Database,
    /// Per-search failure accounting ([`execute_plan_resilient`] only;
    /// empty for the legacy executor).
    pub ledger: ExecutionLedger,
}

/// Configuration of the methodology pipeline.
#[derive(Debug, Clone)]
pub struct MethodologyConfig {
    /// Influence cut-off for DAG pruning (paper: 25% synthetic, 10% TDDFT).
    pub cutoff: f64,
    /// Per-search dimensionality cap (paper: 10).
    pub max_dims: usize,
    /// How sensitivity variations are generated.
    pub variation_policy: VariationPolicy,
    /// Routine names tuned *first* (order preserved), then frozen — e.g.
    /// the paper's Iterations (nbatches/nstreams) and MPI-grid routines.
    pub precedence: Vec<String>,
    /// Groups of parameters that must keep one value application-wide
    /// (typically all parameters of one kernel that is called from several
    /// routines — the paper's cuZcopy). Each group is reassigned **as a
    /// unit** to the routine it influences most (methodology step 5:
    /// "prioritize the kernel with highest impact").
    pub shared_params: Vec<Vec<String>>,
    /// Template BO configuration (budget and seed are overridden per
    /// search).
    pub bo: BoConfig,
    /// Budget rule: `evals_per_dim × dims` per search (paper: 10).
    pub evals_per_dim: usize,
    /// Run independent searches of one stage in parallel threads.
    pub parallel: bool,
    /// Worker budget for the whole execution when [`Self::parallel`] is
    /// on: stage searches share it, and each search's leftover goes to GP
    /// training and candidate scoring (unless the [`Self::bo`] template
    /// pins its own counts). Results are bit-identical at any budget.
    pub par: ParConfig,
    /// How strictly the pre-execution linter gates [`Methodology::run`].
    pub lint: LintPolicy,
    /// Fault tolerance. `None` (default) keeps the legacy fail-fast
    /// executor: any panicking or non-finite evaluation aborts the run.
    /// `Some(..)` routes execution through [`execute_plan_resilient`]:
    /// evaluations are guarded (panic containment, non-finite screening,
    /// watchdog, retries), failures are imputed into the BO loop, a search
    /// that produces nothing is isolated instead of aborting the plan, and
    /// [`PlanExecution::ledger`] reports the damage.
    pub resilience: Option<ResilienceConfig>,
    /// Statically contract the search box before execution.
    ///
    /// When on, [`Methodology::run`] feeds the analysis result through
    /// `cets-lint`'s abstract-interpretation engine and replaces every
    /// parameter domain that the constraints *provably* narrow with its
    /// contracted version (see [`Methodology::contracted_space`]). The
    /// contraction is sound — no constraint-satisfying configuration is
    /// excluded — so the only effect on the search is a denser supply of
    /// valid candidates for the BO rejection sampler. A box proved empty
    /// is rejected with [`CoreError::Lint`] before any budget is spent.
    pub contract_bounds: bool,
}

impl Default for MethodologyConfig {
    fn default() -> Self {
        MethodologyConfig {
            cutoff: 0.25,
            max_dims: 10,
            variation_policy: VariationPolicy::Spread { count: 5 },
            precedence: vec![],
            shared_params: vec![],
            bo: BoConfig::default(),
            evals_per_dim: 10,
            parallel: true,
            par: ParConfig::default(),
            lint: LintPolicy::default(),
            resilience: None,
            contract_bounds: false,
        }
    }
}

/// The methodology driver. See the crate docs for the phase structure.
#[derive(Debug, Clone, Default)]
pub struct Methodology {
    /// Pipeline configuration.
    pub config: MethodologyConfig,
}

impl Methodology {
    /// Create a driver.
    pub fn new(config: MethodologyConfig) -> Self {
        Methodology { config }
    }

    /// Phase 1+2 analysis: sensitivity scores → influence DAG → partition →
    /// capped plan.
    ///
    /// `owners` assigns each parameter to its owning routine (`(param,
    /// routine)` pairs); unlisted parameters are global (ownerless) and are
    /// only tuned through precedence searches.
    pub fn analyze<O: Objective + ?Sized>(
        &self,
        objective: &O,
        owners: &[(&str, &str)],
        baseline: &Config,
    ) -> Result<MethodologyReport> {
        let cfg = &self.config;
        let scores = routine_sensitivity(objective, baseline, &cfg.variation_policy)?;
        let graph = build_graph(objective, owners, &scores)?;

        let precedence: Vec<&str> = cfg.precedence.iter().map(|s| s.as_str()).collect();
        let shared_flat: Vec<&str> = cfg
            .shared_params
            .iter()
            .flatten()
            .map(|s| s.as_str())
            .collect();
        let mut partition = graph.partition_with(cfg.cutoff, &precedence, &shared_flat)?;

        // Step 5: each shared kernel's parameters move as a unit to the
        // routine the kernel impacts most (argmax of the group's summed
        // influence).
        for group in &cfg.shared_params {
            if group.is_empty() {
                continue;
            }
            let n_routines = graph.routines().len();
            let mut sums = vec![0.0; n_routines];
            for name in group {
                let p = graph.param_index(name)?;
                for (r, s) in sums.iter_mut().enumerate() {
                    *s += graph.score_at(p, r);
                }
            }
            let Some(routine) = sums
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(r, _)| r)
            else {
                return Err(CoreError::BadConfig(
                    "shared parameter group declared but the objective has no routines".into(),
                ));
            };
            for name in group {
                let p = graph.param_index(name)?;
                partition.assign_param_to(p, routine);
            }
        }

        // Importance = influence on the total runtime (the paper picks the
        // "ten most influential variables based on the data insights").
        let space = objective.space();
        let total_col = scores.routine_names().len() - 1;
        let importance: Vec<f64> = (0..space.dim())
            .map(|p| scores.score(p, total_col))
            .collect();
        partition.cap_dimensions(cfg.max_dims, &importance);

        let plan = self.build_plan(&graph, &partition)?;
        Ok(MethodologyReport {
            scores,
            graph,
            partition,
            plan,
        })
    }

    fn build_plan(&self, graph: &InfluenceGraph, partition: &Partition) -> Result<SearchPlan> {
        let cfg = &self.config;
        let mut stages: Vec<Vec<PlannedSearch>> = Vec::new();

        // Stage 0..k: precedence routines in the configured order, each a
        // sequential stage (later precedence searches see earlier results).
        for routine in &cfg.precedence {
            let r = graph.routine_index(routine)?;
            let params: Vec<String> = graph
                .params_of(r)
                .into_iter()
                .map(|p| graph.params()[p].clone())
                .collect();
            if params.is_empty() {
                continue;
            }
            let budget = cfg.evals_per_dim * params.len();
            stages.push(vec![PlannedSearch {
                name: routine.clone(),
                params,
                dropped: vec![],
                target: SearchTarget::Total,
                budget,
            }]);
        }

        // Final stage: the partitioned groups, in parallel.
        let mut group_stage = Vec::new();
        for grp in partition.groups() {
            let params: Vec<String> = grp
                .params
                .iter()
                .map(|&p| graph.params()[p].clone())
                .collect();
            if params.is_empty() {
                continue;
            }
            let routines: Vec<String> = grp
                .routines
                .iter()
                .map(|&r| graph.routines()[r].clone())
                .collect();
            let dropped: Vec<String> = grp
                .dropped
                .iter()
                .map(|&p| graph.params()[p].clone())
                .collect();
            group_stage.push(PlannedSearch {
                name: routines.join("+"),
                budget: cfg.evals_per_dim * params.len(),
                target: SearchTarget::Routines(routines),
                params,
                dropped,
            });
        }
        if !group_stage.is_empty() {
            stages.push(group_stage);
        }
        Ok(SearchPlan { stages })
    }

    /// Assemble the `cets-lint` bundle describing this configuration's
    /// analysis result: search space + baseline defaults, the influence
    /// graph, the staged plan, the shared/precedence declarations, and the
    /// GP kernel's noise floor.
    pub fn lint_bundle<O: Objective + ?Sized>(
        &self,
        objective: &O,
        report: &MethodologyReport,
        baseline: &Config,
    ) -> cets_lint::PlanBundle {
        let cfg = &self.config;
        let space = objective.space();
        let params = space
            .names()
            .iter()
            .zip(space.defs())
            .enumerate()
            .map(|(i, (name, def))| cets_lint::ParamSpec {
                name: name.clone(),
                def: def.clone(),
                default: baseline.get(i).map(|v| v.as_f64()),
            })
            .collect();
        let constraints = space
            .constraints()
            .iter()
            .map(|c| cets_lint::ConstraintSpec {
                name: c.name().to_string(),
                expr: c.description().to_string(),
            })
            .collect();
        let plan = cets_lint::PlanSpec {
            stages: report
                .plan
                .stages
                .iter()
                .map(|stage| {
                    stage
                        .iter()
                        .map(|s| cets_lint::SearchSpec {
                            name: s.name.clone(),
                            params: s.params.clone(),
                            routines: match &s.target {
                                SearchTarget::Total => vec![],
                                SearchTarget::Routines(r) => r.clone(),
                            },
                        })
                        .collect()
                })
                .collect(),
        };
        cets_lint::PlanBundle {
            params,
            constraints,
            graph: Some(report.graph.clone()),
            cutoff: cfg.cutoff,
            max_dims: cfg.max_dims,
            precedence: cfg.precedence.clone(),
            shared_params: cfg.shared_params.clone(),
            kernel: Some(cets_lint::KernelSpec {
                noise_floor: cfg.bo.gp.noise_floor,
                length_scales: vec![],
                signal_variance: None,
            }),
            plan: Some(plan),
            unresolved: vec![],
            spans: Default::default(),
        }
    }

    /// Run the static linter over the analysis result without executing
    /// anything. [`Methodology::run`] calls this internally and gates on
    /// [`MethodologyConfig::lint`]; call it directly to inspect findings.
    pub fn lint_report<O: Objective + ?Sized>(
        &self,
        objective: &O,
        report: &MethodologyReport,
        baseline: &Config,
    ) -> cets_lint::Report {
        cets_lint::lint(&self.lint_bundle(objective, report, baseline))
    }

    fn enforce_lint<O: Objective + ?Sized>(
        &self,
        objective: &O,
        report: &MethodologyReport,
        baseline: &Config,
    ) -> Result<()> {
        if self.config.lint == LintPolicy::Off {
            return Ok(());
        }
        let lint = self.lint_report(objective, report, baseline);
        if self.config.lint.accepts(&lint) {
            Ok(())
        } else {
            Err(CoreError::Lint(cets_lint::render_human(&lint)))
        }
    }

    /// The statically contracted search space for this analysis result,
    /// when the abstract-interpretation engine narrows anything.
    ///
    /// Runs `cets-lint`'s interval analysis over the same bundle the lint
    /// gate sees and rebuilds the objective's [`cets_space::SearchSpace`]
    /// (same parameters, same constraint predicates) with every provably
    /// tightened domain applied. Returns:
    ///
    /// * `Ok(None)` — nothing narrowed (or the bundle was not analyzable):
    ///   execute against the original space;
    /// * `Ok(Some(space))` — at least one domain tightened;
    /// * `Err(CoreError::Lint)` — the constraint conjunction is proved
    ///   unsatisfiable: no configuration can be valid, searching is
    ///   pointless.
    ///
    /// A tightened domain that would evict the analysis baseline or the
    /// objective's default value for that parameter is skipped (the
    /// default must stay encodable — dropped parameters freeze to it), so
    /// the contracted space always accepts both reference configurations.
    pub fn contracted_space<O: Objective + ?Sized>(
        &self,
        objective: &O,
        report: &MethodologyReport,
        baseline: &Config,
    ) -> Result<Option<cets_space::SearchSpace>> {
        use cets_space::{ParamValue, SearchSpace};
        let bundle = self.lint_bundle(objective, report, baseline);
        let analysis = cets_lint::analyze_space(&bundle);
        if !analysis.analyzed {
            return Ok(None);
        }
        if analysis.proved_empty {
            return Err(CoreError::Lint(
                "the constraint conjunction is proved unsatisfiable over the declared \
                 domains (A001): no configuration can be valid"
                    .into(),
            ));
        }
        if !analysis.any_narrowed() {
            return Ok(None);
        }

        let space = objective.space();
        let defaults = objective.default_config();
        let mut changed = false;
        let mut builder = SearchSpace::builder();
        for (i, (name, def)) in space.names().iter().zip(space.defs()).enumerate() {
            let fits = |t: &cets_space::ParamDef| {
                let ok = |v: &ParamValue| t.contains(v);
                baseline.get(i).is_none_or(ok) && defaults.get(i).is_none_or(ok)
            };
            match analysis.tightened_def(name).filter(|t| fits(t)) {
                Some(t) => {
                    changed = true;
                    builder = builder.param(name.clone(), t.clone());
                }
                None => builder = builder.param(name.clone(), def.clone()),
            }
        }
        if !changed {
            return Ok(None);
        }
        for c in space.constraints() {
            builder = builder.constraint(c.clone());
        }
        Ok(Some(builder.try_build()?))
    }

    /// Execute a previously computed report's plan
    /// (fault-tolerantly when [`MethodologyConfig::resilience`] is set).
    pub fn execute<O: Objective + ?Sized>(
        &self,
        objective: &O,
        report: &MethodologyReport,
    ) -> Result<PlanExecution> {
        let workers = if self.config.parallel {
            self.config.par.resolve()
        } else {
            1
        };
        match &self.config.resilience {
            Some(resilience) => execute_plan_resilient_with(
                objective,
                &report.plan,
                &self.config.bo,
                workers,
                resilience,
            ),
            None => execute_plan_with(objective, &report.plan, &self.config.bo, workers),
        }
    }

    /// Full pipeline: analyze, **lint** (see [`MethodologyConfig::lint`]),
    /// optionally **contract** the box
    /// (see [`MethodologyConfig::contract_bounds`]), then execute. A plan
    /// that fails the lint gate — or whose constraint conjunction is
    /// proved unsatisfiable by the contraction — is rejected with
    /// [`CoreError::Lint`] *before* any execution budget is spent.
    pub fn run<O: Objective + ?Sized>(
        &self,
        objective: &O,
        owners: &[(&str, &str)],
        baseline: &Config,
    ) -> Result<(MethodologyReport, PlanExecution)> {
        let report = self.analyze(objective, owners, baseline)?;
        self.enforce_lint(objective, &report, baseline)?;
        if self.config.contract_bounds {
            if let Some(space) = self.contracted_space(objective, &report, baseline)? {
                let contracted = crate::objective::ContractedObjective::new(objective, space);
                let exec = self.execute(&contracted, &report)?;
                return Ok((report, exec));
            }
        }
        let exec = self.execute(objective, &report)?;
        Ok((report, exec))
    }
}

/// Build the influence graph from sensitivity scores (the `"total"`
/// pseudo-routine column is excluded — it feeds importance, not edges).
pub fn build_graph<O: Objective + ?Sized>(
    objective: &O,
    owners: &[(&str, &str)],
    scores: &SensitivityScores,
) -> Result<InfluenceGraph> {
    let routines = objective.routine_names();
    let params = objective.space().names().to_vec();
    let mut graph = InfluenceGraph::new(routines.clone(), params.clone());
    for (p, r) in owners {
        graph.set_owner(p, r)?;
    }
    for (p, pname) in params.iter().enumerate() {
        for (r, rname) in routines.iter().enumerate() {
            debug_assert_eq!(scores.routine_names()[r], *rname);
            graph.set_score(pname, rname, scores.score(p, r))?;
        }
    }
    Ok(graph)
}

/// Execute an arbitrary [`SearchPlan`] against an objective: stages
/// sequentially; within a stage, searches share a thread pool when
/// `parallel`. After each stage, every search's best values are frozen
/// into the shared defaults used by later stages, and all searches' best
/// values are folded into the final configuration.
pub fn execute_plan<O: Objective + ?Sized>(
    objective: &O,
    plan: &SearchPlan,
    bo_template: &BoConfig,
    parallel: bool,
) -> Result<PlanExecution> {
    let workers = if parallel { par::global_threads() } else { 1 };
    execute_plan_with(objective, plan, bo_template, workers)
}

/// Split a stage's worker budget: up to `workers` concurrent searches,
/// with each search's BO loop (GP training, candidate scoring) given the
/// leftover `workers / used` — unless the template already pins explicit
/// counts. Every split yields bit-identical trajectories; only wall-clock
/// time changes.
fn stage_budget(bo_template: &BoConfig, workers: usize, n_searches: usize) -> (usize, BoConfig) {
    let used = workers.max(1).min(n_searches.max(1));
    let inner = (workers.max(1) / used).max(1);
    let mut bo = bo_template.clone();
    if bo.n_workers == 0 {
        bo.n_workers = inner;
    }
    if bo.gp.par == ParConfig::default() {
        bo.gp.par = ParConfig::fixed(inner);
    }
    (used, bo)
}

/// [`execute_plan`] with an explicit worker budget (`1` = fully
/// sequential; results are bit-identical at any budget).
pub fn execute_plan_with<O: Objective + ?Sized>(
    objective: &O,
    plan: &SearchPlan,
    bo_template: &BoConfig,
    workers: usize,
) -> Result<PlanExecution> {
    let start = Instant::now();
    let space = objective.space();
    let routine_names = objective.routine_names();
    let mut current = objective.default_config();
    let mut all: Vec<(String, SearchOutcome)> = Vec::new();
    let db = Mutex::new(Database::for_objective("plan-execution", objective));

    for (stage_idx, stage) in plan.stages.iter().enumerate() {
        // Resolve targets to routine indices once.
        let prepared: Vec<(usize, &PlannedSearch, Vec<usize>)> = stage
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let idxs = match &s.target {
                    SearchTarget::Total => vec![],
                    SearchTarget::Routines(names) => names
                        .iter()
                        .map(|n| {
                            routine_names.iter().position(|r| r == n).ok_or_else(|| {
                                CoreError::BadConfig(format!("unknown routine {n} in plan"))
                            })
                        })
                        .collect::<Result<Vec<usize>>>()?,
                };
                Ok((i, s, idxs))
            })
            .collect::<Result<Vec<_>>>()?;

        let (used, bo_stage) = stage_budget(bo_template, workers, prepared.len());
        let run_one =
            |(i, s, idxs): &(usize, &PlannedSearch, Vec<usize>)| -> Result<SearchOutcome> {
                let names: Vec<&str> = s.params.iter().map(|p| p.as_str()).collect();
                let subspace = Subspace::new(space, &names, current.clone())?;
                let mut bo_cfg = bo_stage.clone();
                bo_cfg.max_evals = s.budget;
                bo_cfg.seed = bo_template
                    .seed
                    .wrapping_add((stage_idx as u64) << 32)
                    .wrapping_add(*i as u64 + 1);
                let f = |cfg: &Config| -> f64 {
                    let obs = objective.evaluate(cfg);
                    db.lock().push(cfg.clone(), &obs, s.name.clone());
                    if idxs.is_empty() {
                        obs.total
                    } else {
                        idxs.iter().map(|&r| obs.routines[r]).sum()
                    }
                };
                // Seed with the incumbent defaults: the tuner always knows the
                // current configuration's cost, so the search can never report
                // a best worse than what it started from (costs 1 evaluation
                // of the budget, like any other observation).
                let u0 = subspace.project(&current)?;
                let y0 = f(&subspace.lift(&u0)?);
                BoSearch::new(bo_cfg).run_with_history(&subspace, f, vec![(u0, y0)])
            };

        // Fixed chunks + index-ordered results: the fold below visits
        // searches in plan order regardless of the worker count.
        let outcomes: Vec<Result<SearchOutcome>> =
            par::map_indexed(used, prepared.len(), |idx| run_one(&prepared[idx]));

        for ((_, s, _), outcome) in prepared.iter().zip(outcomes) {
            let outcome = outcome?;
            // Freeze this search's best values into the running defaults.
            for p in &s.params {
                let idx = space.index_of(p)?;
                current[idx] = outcome.best_config[idx].clone();
            }
            all.push((s.name.clone(), outcome));
        }
        space.check_valid(&current).map_err(|e| {
            CoreError::SearchStalled(format!(
                "folded configuration invalid after stage {stage_idx}: {e}"
            ))
        })?;
    }

    let final_obs = objective.evaluate(&current);
    let final_value = final_obs.total;
    let mut database = db.into_inner();
    database.push(current.clone(), &final_obs, "final");
    Ok(PlanExecution {
        total_evals: all.iter().map(|(_, o)| o.n_evals).sum(),
        searches: all,
        final_config: current,
        final_value,
        wall_time: start.elapsed(),
        database,
        ledger: ExecutionLedger::default(),
    })
}

/// Fault-tolerant variant of [`execute_plan`]: every evaluation runs
/// through a per-search [`ResilientObjective`] (panic containment,
/// non-finite screening, watchdog, retries), the BO loops are
/// failure-aware ([`BoSearch::run_resilient_with_records`]), and a search
/// that produces **no** usable outcome — all attempts failed, failure cap
/// hit, or its infrastructure errored — is *isolated*: its parameters stay
/// at the stage's entry defaults, the remaining searches proceed, and the
/// [`ExecutionLedger`] records what happened. The run aborts only when
/// nothing succeeded anywhere (there is no configuration to report) or the
/// folded configuration violates a cross-search constraint (the result
/// would be wrong, not merely partial).
pub fn execute_plan_resilient<O: Objective + ?Sized>(
    objective: &O,
    plan: &SearchPlan,
    bo_template: &BoConfig,
    parallel: bool,
    resilience: &ResilienceConfig,
) -> Result<PlanExecution> {
    let workers = if parallel { par::global_threads() } else { 1 };
    execute_plan_resilient_with(objective, plan, bo_template, workers, resilience)
}

/// [`execute_plan_resilient`] with an explicit worker budget (`1` = fully
/// sequential; results are bit-identical at any budget).
pub fn execute_plan_resilient_with<O: Objective + ?Sized>(
    objective: &O,
    plan: &SearchPlan,
    bo_template: &BoConfig,
    workers: usize,
    resilience: &ResilienceConfig,
) -> Result<PlanExecution> {
    let start = Instant::now();
    let space = objective.space();
    let routine_names = objective.routine_names();
    let mut current = objective.default_config();
    let mut all: Vec<(String, SearchOutcome)> = Vec::new();
    let mut ledger = ExecutionLedger::default();
    let db = Mutex::new(Database::for_objective("plan-execution", objective));

    for (stage_idx, stage) in plan.stages.iter().enumerate() {
        let prepared: Vec<(usize, &PlannedSearch, Vec<usize>)> = stage
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let idxs = match &s.target {
                    SearchTarget::Total => vec![],
                    SearchTarget::Routines(names) => names
                        .iter()
                        .map(|n| {
                            routine_names.iter().position(|r| r == n).ok_or_else(|| {
                                CoreError::BadConfig(format!("unknown routine {n} in plan"))
                            })
                        })
                        .collect::<Result<Vec<usize>>>()?,
                };
                Ok((i, s, idxs))
            })
            .collect::<Result<Vec<_>>>()?;

        // One search under full protection. Returns the ledger entry along
        // with the outcome (or the degradation reason).
        let (used, bo_stage) = stage_budget(bo_template, workers, prepared.len());
        let run_one = |(i, s, idxs): &(usize, &PlannedSearch, Vec<usize>)| -> (
            std::result::Result<crate::bo::ResilientOutcome, String>,
            usize, // attempts (only meaningful on the error side)
            usize, // failed attempts (ditto)
        ) {
            let guarded = ResilientObjective::new(
                objective,
                resilience.guard.clone(),
                Arc::clone(&resilience.clock),
            );
            let attempt = |sub: &Subspace| -> Result<crate::bo::ResilientOutcome> {
                let mut bo_cfg = bo_stage.clone();
                bo_cfg.max_evals = s.budget;
                bo_cfg.seed = bo_template
                    .seed
                    .wrapping_add((stage_idx as u64) << 32)
                    .wrapping_add(*i as u64 + 1);
                let f = |cfg: &Config, eval_idx: usize| -> EvalOutcome {
                    match guarded.evaluate_outcome(cfg, eval_idx) {
                        EvalOutcome::Ok(mut obs) => {
                            db.lock().push(cfg.clone(), &obs, s.name.clone());
                            // The BO loop minimizes `total`; for a
                            // routine-targeted search that must be the sum of
                            // the targeted routines (already screened finite).
                            if !idxs.is_empty() {
                                obs.total = idxs.iter().map(|&r| obs.routines[r]).sum();
                            }
                            EvalOutcome::Ok(obs)
                        }
                        failed => failed,
                    }
                };
                // Seed with the incumbent defaults, exactly like the legacy
                // executor — but a failing incumbent evaluation is a
                // recorded failure, not an abort.
                let u0 = sub.project(&current)?;
                let rec0 = match f(&sub.lift(&u0)?, 0) {
                    EvalOutcome::Ok(obs) => EvalRecord::ok(u0, obs.total),
                    EvalOutcome::Failed(e) => {
                        EvalRecord::failed(u0, crate::resilience::FailedEval::from_error(&e))
                    }
                };
                BoSearch::new(bo_cfg).run_resilient_with_records(
                    sub,
                    f,
                    &resilience.failure,
                    vec![rec0],
                )
            };
            let names: Vec<&str> = s.params.iter().map(|p| p.as_str()).collect();
            let result = Subspace::new(space, &names, current.clone())
                .map_err(CoreError::from)
                .and_then(|sub| attempt(&sub))
                .map_err(|e| e.to_string());
            (result, guarded.attempts(), guarded.failed_attempts())
        };

        type OneResult = (
            std::result::Result<crate::bo::ResilientOutcome, String>,
            usize,
            usize,
        );
        // Fixed chunks + index-ordered results: the ledger fold below
        // visits searches in plan order regardless of the worker count.
        let outcomes: Vec<OneResult> =
            par::map_indexed(used, prepared.len(), |idx| run_one(&prepared[idx]));

        for ((_, s, _), (result, attempts, failed_attempts)) in prepared.iter().zip(outcomes) {
            match result {
                Ok(r) => {
                    // Freeze this search's best values into the running
                    // defaults.
                    for p in &s.params {
                        let idx = space.index_of(p)?;
                        current[idx] = r.outcome.best_config[idx].clone();
                    }
                    ledger.entries.push(SearchLedgerEntry {
                        search: s.name.clone(),
                        stage: stage_idx,
                        n_ok: r.records.len() - r.n_failed,
                        n_failed: r.n_failed,
                        budget_spent: r.budget_spent,
                        disposition: SearchDisposition::Completed,
                    });
                    all.push((s.name.clone(), r.outcome));
                }
                Err(reason) => {
                    // Isolate: this search contributes nothing; its
                    // parameters stay at the stage's entry defaults.
                    ledger.entries.push(SearchLedgerEntry {
                        search: s.name.clone(),
                        stage: stage_idx,
                        n_ok: attempts - failed_attempts,
                        n_failed: failed_attempts,
                        budget_spent: resilience.failure.budget_fraction * failed_attempts as f64
                            + (attempts - failed_attempts) as f64,
                        disposition: SearchDisposition::Degraded(reason),
                    });
                }
            }
        }
        // A folded configuration that violates a cross-search constraint is
        // wrong, not partial: still a hard error (same contract as the
        // legacy executor).
        space.check_valid(&current).map_err(|e| {
            CoreError::SearchStalled(format!(
                "folded configuration invalid after stage {stage_idx}: {e}"
            ))
        })?;
    }

    if all.is_empty() {
        return Err(CoreError::SearchStalled(format!(
            "every search in the plan degraded ({} entries in the ledger); \
             no configuration to report",
            ledger.entries.len()
        )));
    }

    // Final verification evaluation, itself guarded: if it fails, fall back
    // to the database's best recorded configuration and note it in the
    // ledger instead of aborting a whole completed run at the last step.
    let guarded = ResilientObjective::new(
        objective,
        resilience.guard.clone(),
        Arc::clone(&resilience.clock),
    );
    let n_stages = plan.stages.len();
    let mut database = db.into_inner();
    let (final_config, final_value) = match guarded.evaluate_outcome(&current, 0) {
        EvalOutcome::Ok(obs) => {
            let v = obs.total;
            database.push(current.clone(), &obs, "final");
            ledger.entries.push(SearchLedgerEntry {
                search: "final".into(),
                stage: n_stages,
                n_ok: 1,
                n_failed: guarded.failed_attempts(),
                budget_spent: 1.0,
                disposition: SearchDisposition::Completed,
            });
            (current, v)
        }
        EvalOutcome::Failed(e) => {
            let best = database.best().ok_or_else(|| {
                CoreError::SearchStalled(
                    "final evaluation failed and the database holds no successful \
                     evaluation to fall back to"
                        .into(),
                )
            })?;
            let (cfg, v) = (best.config.clone(), best.total);
            ledger.entries.push(SearchLedgerEntry {
                search: "final".into(),
                stage: n_stages,
                n_ok: 0,
                n_failed: guarded.failed_attempts(),
                budget_spent: resilience.failure.budget_fraction,
                disposition: SearchDisposition::Degraded(format!(
                    "final evaluation failed ({e}); reporting the database's best \
                     recorded configuration instead"
                )),
            });
            (cfg, v)
        }
    };
    Ok(PlanExecution {
        total_evals: all.iter().map(|(_, o)| o.n_evals).sum(),
        searches: all,
        final_config,
        final_value,
        wall_time: start.elapsed(),
        database,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::{CoupledSphere, SplitSphere};

    fn quick_bo() -> BoConfig {
        BoConfig {
            n_init: 4,
            n_candidates: 48,
            n_local: 8,
            seed: 3,
            ..Default::default()
        }
    }

    fn owners3() -> Vec<(&'static str, &'static str)> {
        vec![("x0", "r0"), ("x1", "r0"), ("x2", "r1")]
    }

    #[test]
    fn analyze_split_sphere_keeps_routines_independent() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            evals_per_dim: 5,
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        // No cross-influence: two independent searches.
        assert_eq!(report.partition.groups().len(), 2);
        assert_eq!(report.plan.stages.len(), 1);
        assert_eq!(report.plan.stages[0].len(), 2);
        let names: Vec<&str> = report.plan.stages[0]
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["r0", "r1"]);
        // Budgets follow 10×dims (here 5×dims).
        assert_eq!(report.plan.stages[0][0].budget, 10);
        assert_eq!(report.plan.stages[0][1].budget, 5);
    }

    #[test]
    fn analyze_coupled_sphere_merges_routines() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            cutoff: 0.10,
            bo: quick_bo(),
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        // x1 (owned by r0) cross-influences r1 -> merged search.
        assert_eq!(report.partition.groups().len(), 1);
        let s = &report.plan.stages[0][0];
        assert_eq!(s.name, "r0+r1");
        assert_eq!(s.params, vec!["x0", "x1", "x2"]);
        assert_eq!(
            s.target,
            SearchTarget::Routines(vec!["r0".into(), "r1".into()])
        );
    }

    #[test]
    fn high_cutoff_splits_coupled_sphere() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            cutoff: 10.0, // absurdly high: nothing merges
            bo: quick_bo(),
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        assert_eq!(report.partition.groups().len(), 2);
    }

    #[test]
    fn dimension_cap_drops_params() {
        let obj = CoupledSphere::new();
        let m = Methodology::new(MethodologyConfig {
            cutoff: 0.10,
            max_dims: 2,
            bo: quick_bo(),
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        let s = &report.plan.stages[0][0];
        assert_eq!(s.dim(), 2);
        assert_eq!(s.dropped.len(), 1);
    }

    #[test]
    fn full_run_improves_on_defaults() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            evals_per_dim: 10,
            ..Default::default()
        });
        let (report, exec) = m.run(&obj, &owners3(), &obj.default_config()).unwrap();
        let default_value = obj.evaluate(&obj.default_config()).total;
        assert!(
            exec.final_value < default_value,
            "final {} !< default {default_value}",
            exec.final_value
        );
        assert_eq!(exec.total_evals, report.plan.total_budget());
        assert_eq!(exec.searches.len(), 2);
        // Final config must be valid.
        assert!(obj.space().is_valid(&exec.final_config));
    }

    #[test]
    fn precedence_routine_tuned_first_on_total() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            precedence: vec!["r1".into()],
            bo: quick_bo(),
            evals_per_dim: 8,
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        assert_eq!(report.plan.stages.len(), 2);
        let first = &report.plan.stages[0][0];
        assert_eq!(first.name, "r1");
        assert_eq!(first.target, SearchTarget::Total);
        assert_eq!(first.params, vec!["x2"]);
        // r1 is excluded from the group stage.
        assert_eq!(report.plan.stages[1].len(), 1);
        assert_eq!(report.plan.stages[1][0].name, "r0");
        let exec = m.execute(&obj, &report).unwrap();
        assert!(exec.final_value < 3.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let obj = SplitSphere::new();
        let mk = |parallel| {
            let m = Methodology::new(MethodologyConfig {
                bo: quick_bo(),
                evals_per_dim: 6,
                parallel,
                ..Default::default()
            });
            m.run(&obj, &owners3(), &obj.default_config()).unwrap().1
        };
        let seq = mk(false);
        let par = mk(true);
        assert_eq!(seq.final_value, par.final_value);
        assert_eq!(seq.final_config, par.final_config);
    }

    #[test]
    fn execution_database_records_everything() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            evals_per_dim: 5,
            ..Default::default()
        });
        let (report, exec) = m.run(&obj, &owners3(), &obj.default_config()).unwrap();
        // One record per search evaluation plus the final verification.
        assert_eq!(exec.database.len(), exec.total_evals + 1);
        // Tags cover every search name plus "final".
        for s in report.plan.searches() {
            assert!(
                exec.database.with_tag(&s.name).count() > 0,
                "no records tagged {}",
                s.name
            );
        }
        assert_eq!(exec.database.with_tag("final").count(), 1);
        // The database's best total is <= the final value (the final fold
        // can combine searches but each search's best was recorded).
        assert!(exec.database.best().unwrap().total <= exec.final_value + 1e-9);
    }

    #[test]
    fn plan_describe_is_table_like() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            ..Default::default()
        });
        let report = m.analyze(&obj, &owners3(), &obj.default_config()).unwrap();
        let txt = report.plan.describe();
        assert!(txt.contains("r0"));
        assert!(txt.contains("x2"));
        assert!(txt.contains("Budget"));
    }

    /// Known limitation, made explicit: folding independently-optimal
    /// values can violate a *cross-search* constraint; execute_plan
    /// detects this and reports SearchStalled instead of silently
    /// returning an invalid configuration. (The methodology avoids this in
    /// practice by merging routines whose parameters interact — a shared
    /// constraint is exactly such an interaction.)
    #[test]
    fn fold_violating_cross_constraint_is_reported() {
        use cets_space::{Constraint, SearchSpace};
        struct Greedy(SearchSpace);
        impl Objective for Greedy {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["rA".into(), "rB".into()]
            }
            fn evaluate(&self, cfg: &Config) -> crate::Observation {
                let a = cfg[0].as_f64();
                let b = cfg[1].as_f64();
                // Each routine wants its own parameter as large as possible.
                crate::Observation {
                    total: (10.0 - a) + (10.0 - b),
                    routines: vec![10.0 - a + 0.1, 10.0 - b + 0.1],
                }
            }
            fn default_config(&self) -> Config {
                self.0.config_from_pairs(&[("a", 0.0), ("b", 0.0)]).unwrap()
            }
        }
        let space = SearchSpace::builder()
            .real("a", 0.0, 10.0)
            .real("b", 0.0, 10.0)
            .constraint(Constraint::new("budget", "a + b <= 10", |s, c| {
                s.get_f64(c, "a").unwrap() + s.get_f64(c, "b").unwrap() <= 10.0 + 1e-9
            }))
            .build();
        let obj = Greedy(space);
        let plan = SearchPlan {
            stages: vec![vec![
                PlannedSearch {
                    name: "rA".into(),
                    params: vec!["a".into()],
                    dropped: vec![],
                    target: SearchTarget::Routines(vec!["rA".into()]),
                    budget: 15,
                },
                PlannedSearch {
                    name: "rB".into(),
                    params: vec!["b".into()],
                    dropped: vec![],
                    target: SearchTarget::Routines(vec!["rB".into()]),
                    budget: 15,
                },
            ]],
        };
        let err = execute_plan(&obj, &plan, &quick_bo(), true).unwrap_err();
        assert!(
            matches!(err, CoreError::SearchStalled(_)),
            "expected SearchStalled, got {err}"
        );
    }

    mod resilient {
        use super::*;
        use crate::resilience::{GuardPolicy, ResilienceConfig, RetryPolicy, VirtualClock};
        use cets_space::SearchSpace;

        fn quiet_panics() {
            // Silence the default hook's backtrace spam for intentional panics.
            std::panic::set_hook(Box::new(|_| {}));
        }

        /// No retries (each injected panic counts once) and a virtual clock
        /// (backoff sleeps, if any, are instant).
        fn quick_resilience() -> ResilienceConfig {
            ResilienceConfig {
                guard: GuardPolicy {
                    retry: RetryPolicy {
                        max_retries: 0,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                clock: Arc::new(VirtualClock::new()),
                ..Default::default()
            }
        }

        /// Sphere on three axes that panics on configurations selected by a
        /// caller-supplied predicate.
        struct PanicOn<F: Fn(f64, f64, f64) -> bool + Sync>(SearchSpace, F);

        impl<F: Fn(f64, f64, f64) -> bool + Sync> PanicOn<F> {
            fn new(trap: F) -> Self {
                PanicOn(
                    SearchSpace::builder()
                        .real("x0", 0.0, 4.0)
                        .real("x1", 0.0, 4.0)
                        .real("x2", 0.0, 4.0)
                        .build(),
                    trap,
                )
            }
        }

        impl<F: Fn(f64, f64, f64) -> bool + Sync> Objective for PanicOn<F> {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r0".into(), "r1".into()]
            }
            fn evaluate(&self, cfg: &Config) -> crate::Observation {
                let (a, b, c) = (cfg[0].as_f64(), cfg[1].as_f64(), cfg[2].as_f64());
                if (self.1)(a, b, c) {
                    panic!("injected crash at ({a}, {b}, {c})");
                }
                let (ra, rb) = (a * a + b * b, c * c);
                crate::Observation {
                    total: ra + rb,
                    routines: vec![ra, rb],
                }
            }
            fn default_config(&self) -> Config {
                self.0
                    .config_from_pairs(&[("x0", 1.0), ("x1", 1.0), ("x2", 1.0)])
                    .unwrap()
            }
        }

        fn two_search_plan() -> SearchPlan {
            SearchPlan {
                stages: vec![vec![
                    PlannedSearch {
                        name: "r0".into(),
                        params: vec!["x0".into(), "x1".into()],
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["r0".into()]),
                        budget: 12,
                    },
                    PlannedSearch {
                        name: "r1".into(),
                        params: vec!["x2".into()],
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["r1".into()]),
                        budget: 10,
                    },
                ]],
            }
        }

        #[test]
        fn fault_free_run_completes_with_clean_ledger() {
            let obj = SplitSphere::new();
            let m = Methodology::new(MethodologyConfig {
                bo: quick_bo(),
                evals_per_dim: 8,
                resilience: Some(quick_resilience()),
                ..Default::default()
            });
            let (_, exec) = m.run(&obj, &owners3(), &obj.default_config()).unwrap();
            let default_value = obj.evaluate(&obj.default_config()).total;
            assert!(
                exec.final_value < default_value,
                "final {} !< default {default_value}",
                exec.final_value
            );
            assert!(exec.ledger.is_clean(), "ledger: {:?}", exec.ledger);
            assert_eq!(exec.ledger.total_failures(), 0);
            // One entry per search plus the final verification.
            assert_eq!(exec.ledger.entries.len(), exec.searches.len() + 1);
            assert!(obj.space().is_valid(&exec.final_config));
        }

        /// One search whose every evaluation crashes (its fixed coordinates
        /// hit the trap) is isolated: it degrades, the other search — whose
        /// *incumbent* evaluation also crashes, but whose proposals recover —
        /// completes, and the run finishes with the degraded search's
        /// parameters held at their defaults.
        #[test]
        fn search_with_no_successes_degrades_while_others_complete() {
            quiet_panics();
            // The r1 search varies only x2, pinning x0 = x1 = 1.0 — every one
            // of its evaluations crashes. The r0 search trips the trap only
            // on its incumbent seed (all defaults).
            let obj = PanicOn::new(|a, b, _| a == 1.0 && b == 1.0);
            for parallel in [false, true] {
                let exec = execute_plan_resilient(
                    &obj,
                    &two_search_plan(),
                    &quick_bo(),
                    parallel,
                    &quick_resilience(),
                )
                .unwrap();
                assert_eq!(exec.ledger.n_degraded(), 1, "ledger: {:?}", exec.ledger);
                let by_name = |n: &str| {
                    exec.ledger
                        .entries
                        .iter()
                        .find(|e| e.search == n)
                        .unwrap_or_else(|| panic!("no ledger entry for {n}"))
                };
                assert!(matches!(
                    by_name("r0").disposition,
                    SearchDisposition::Completed
                ));
                assert!(by_name("r0").n_failed >= 1, "incumbent crash recorded");
                assert!(matches!(
                    by_name("r1").disposition,
                    SearchDisposition::Degraded(_)
                ));
                assert_eq!(by_name("r1").n_ok, 0);
                // The degraded search's parameter stays at its default.
                assert_eq!(exec.final_config[2].as_f64(), 1.0);
                // The completed search still improved r0 = x0² + x1².
                let r0 =
                    exec.final_config[0].as_f64().powi(2) + exec.final_config[1].as_f64().powi(2);
                assert!(r0 < 2.0, "r0 {r0} not improved over default 2.0");
                assert_eq!(exec.searches.len(), 1);
            }
        }

        /// The folded configuration moves both axes at once, which the
        /// objective cannot evaluate: the final verification fails, and the
        /// executor reports the database's best recorded evaluation instead
        /// of aborting the whole run.
        #[test]
        fn final_eval_failure_falls_back_to_database_best() {
            quiet_panics();
            let obj = PanicOn::new(|a, _, c| a != 1.0 && c != 1.0);
            let plan = SearchPlan {
                stages: vec![vec![
                    PlannedSearch {
                        name: "r0".into(),
                        params: vec!["x0".into()],
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["r0".into()]),
                        budget: 10,
                    },
                    PlannedSearch {
                        name: "r1".into(),
                        params: vec!["x2".into()],
                        dropped: vec![],
                        target: SearchTarget::Routines(vec!["r1".into()]),
                        budget: 10,
                    },
                ]],
            };
            let exec = execute_plan_resilient(&obj, &plan, &quick_bo(), false, &quick_resilience())
                .unwrap();
            let last = exec.ledger.entries.last().unwrap();
            assert_eq!(last.search, "final");
            assert!(matches!(last.disposition, SearchDisposition::Degraded(_)));
            let best = exec.database.best().unwrap();
            assert_eq!(exec.final_value, best.total);
            assert_eq!(exec.final_config, best.config);
        }

        /// Every search crashing on every evaluation leaves nothing to
        /// report: the run fails loudly instead of returning defaults as if
        /// they had been tuned.
        #[test]
        fn all_searches_failing_is_a_hard_error() {
            quiet_panics();
            let obj = PanicOn::new(|_, _, _| true);
            let err = execute_plan_resilient(
                &obj,
                &two_search_plan(),
                &quick_bo(),
                false,
                &quick_resilience(),
            )
            .unwrap_err();
            assert!(
                matches!(err, CoreError::SearchStalled(_)),
                "expected SearchStalled, got {err}"
            );
        }
    }

    /// Two real parameters on [0, 100] whose constraints provably confine
    /// them to [0, 50]: the contraction pre-pass halves each axis.
    mod boxed {
        use super::*;
        use cets_space::{Constraint, SearchSpace};

        pub struct Boxed(pub SearchSpace);

        impl Boxed {
            pub fn new() -> Self {
                Boxed(
                    SearchSpace::builder()
                        .real("a", 0.0, 100.0)
                        .real("b", 0.0, 100.0)
                        .constraint(Constraint::new("cap-a", "a <= 50", |s, c| {
                            s.get_f64(c, "a").unwrap_or(f64::NAN) <= 50.0
                        }))
                        .constraint(Constraint::new("cap-b", "b <= 50", |s, c| {
                            s.get_f64(c, "b").unwrap_or(f64::NAN) <= 50.0
                        }))
                        .build(),
                )
            }
        }

        impl Objective for Boxed {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r0".into()]
            }
            fn evaluate(&self, cfg: &Config) -> crate::Observation {
                let a = cfg[0].as_f64();
                let b = cfg[1].as_f64();
                let v = (a - 1.0).powi(2) + (b - 1.0).powi(2);
                crate::Observation {
                    total: v,
                    routines: vec![v],
                }
            }
            fn default_config(&self) -> Config {
                self.0.config_from_pairs(&[("a", 8.0), ("b", 8.0)]).unwrap()
            }
        }
    }

    #[test]
    fn contracted_space_narrows_to_the_provable_box() {
        use cets_space::ParamDef;
        let obj = boxed::Boxed::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            ..Default::default()
        });
        let baseline = obj.default_config();
        let report = m
            .analyze(&obj, &[("a", "r0"), ("b", "r0")], &baseline)
            .unwrap();
        let narrowed = m
            .contracted_space(&obj, &report, &baseline)
            .unwrap()
            .expect("constraints provably narrow both axes");
        assert_eq!(narrowed.defs()[0], ParamDef::Real { lo: 0.0, hi: 50.0 });
        assert_eq!(narrowed.defs()[1], ParamDef::Real { lo: 0.0, hi: 50.0 });
        // Names and constraints are carried over unchanged.
        assert_eq!(narrowed.names(), obj.space().names());
        assert_eq!(narrowed.constraints().len(), 2);
        // The baseline stays valid in the narrowed space.
        assert!(narrowed.is_valid(&baseline));
    }

    #[test]
    fn contract_bounds_run_is_no_worse_at_equal_budget() {
        let obj = boxed::Boxed::new();
        let owners = [("a", "r0"), ("b", "r0")];
        let base = MethodologyConfig {
            bo: quick_bo(),
            evals_per_dim: 8,
            ..Default::default()
        };
        let plain = Methodology::new(base.clone())
            .run(&obj, &owners, &obj.default_config())
            .unwrap()
            .1;
        let contracted = Methodology::new(MethodologyConfig {
            contract_bounds: true,
            ..base
        })
        .run(&obj, &owners, &obj.default_config())
        .unwrap()
        .1;
        // Same budget either way: contraction changes candidate density,
        // not the number of objective evaluations.
        assert_eq!(contracted.total_evals, plain.total_evals);
        assert!(
            contracted.final_value <= plain.final_value + 1e-9,
            "contracted {} !<= plain {}",
            contracted.final_value,
            plain.final_value
        );
        // The result is still a valid configuration of the *original* space.
        assert!(obj.space().is_valid(&contracted.final_config));
    }

    #[test]
    fn contracted_space_rejects_proved_empty_box() {
        use cets_space::{Constraint, SearchSpace};
        struct Dead(SearchSpace);
        impl Objective for Dead {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r0".into()]
            }
            fn evaluate(&self, cfg: &Config) -> crate::Observation {
                crate::Observation::scalar(cfg[0].as_f64())
            }
            fn default_config(&self) -> Config {
                self.0.config_from_pairs(&[("a", 1.0)]).unwrap()
            }
        }
        let obj = Dead(
            SearchSpace::builder()
                .real("a", 0.0, 10.0)
                .constraint(Constraint::new("dead", "a > 100", |s, c| {
                    s.get_f64(c, "a").unwrap_or(f64::NAN) > 100.0
                }))
                .build(),
        );
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            lint: LintPolicy::Off, // get past the gate to the pre-pass
            contract_bounds: true,
            ..Default::default()
        });
        let baseline = obj.default_config();
        let report = m.analyze(&obj, &[("a", "r0")], &baseline).unwrap();
        let err = m.contracted_space(&obj, &report, &baseline).unwrap_err();
        assert!(
            matches!(&err, CoreError::Lint(m) if m.contains("A001")),
            "expected A001 Lint error, got {err}"
        );
    }

    #[test]
    fn contracted_space_keeps_domains_that_would_evict_the_default() {
        use cets_space::{Constraint, SearchSpace};
        // The default (a = 80) violates the constraint; the tightened
        // domain [0, 50] would evict it, so the pre-pass must keep the
        // declared domain for `a`.
        struct BadDefault(SearchSpace);
        impl Objective for BadDefault {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r0".into()]
            }
            fn evaluate(&self, cfg: &Config) -> crate::Observation {
                crate::Observation::scalar(cfg[0].as_f64() + cfg[1].as_f64())
            }
            fn default_config(&self) -> Config {
                self.0
                    .config_from_pairs(&[("a", 80.0), ("b", 8.0)])
                    .unwrap()
            }
        }
        let obj = BadDefault(
            SearchSpace::builder()
                .real("a", 0.0, 100.0)
                .real("b", 0.0, 100.0)
                .constraint(Constraint::new("cap-a", "a <= 50", |s, c| {
                    s.get_f64(c, "a").unwrap_or(f64::NAN) <= 50.0
                }))
                .constraint(Constraint::new("cap-b", "b <= 50", |s, c| {
                    s.get_f64(c, "b").unwrap_or(f64::NAN) <= 50.0
                }))
                .build(),
        );
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            contract_bounds: true,
            ..Default::default()
        });
        let baseline = obj.default_config();
        let report = m
            .analyze(&obj, &[("a", "r0"), ("b", "r0")], &baseline)
            .unwrap();
        let narrowed = m
            .contracted_space(&obj, &report, &baseline)
            .unwrap()
            .expect("b still narrows");
        use cets_space::ParamDef;
        assert_eq!(
            narrowed.defs()[0],
            ParamDef::Real { lo: 0.0, hi: 100.0 },
            "a keeps its declared domain: the tightened one evicts the default"
        );
        assert_eq!(narrowed.defs()[1], ParamDef::Real { lo: 0.0, hi: 50.0 });
        // The default stays *encodable*: every value inside its domain.
        // (It still violates the constraint — that is exactly why its
        // parameter kept the loose bounds.)
        for (def, v) in narrowed.defs().iter().zip(&baseline) {
            assert!(def.contains(v), "{def:?} lost {v:?}");
        }
    }

    #[test]
    fn lint_gate_rejects_error_plan() {
        // max_dims = 0 is a degenerate cap: G003 fires at Error level and
        // run() must refuse before spending any execution budget.
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            max_dims: 0,
            bo: quick_bo(),
            ..Default::default()
        });
        let err = m.run(&obj, &owners3(), &obj.default_config()).unwrap_err();
        match err {
            CoreError::Lint(msg) => assert!(msg.contains("G003"), "missing G003 in:\n{msg}"),
            other => panic!("expected CoreError::Lint, got {other}"),
        }
    }

    #[test]
    fn lint_gate_off_allows_error_plan() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            max_dims: 0,
            lint: LintPolicy::Off,
            bo: quick_bo(),
            ..Default::default()
        });
        assert!(m.run(&obj, &owners3(), &obj.default_config()).is_ok());
    }

    #[test]
    fn lint_gate_deny_warnings_rejects_warning_plan() {
        // A zero GP noise floor is N001 at Warning level: passes the
        // default policy, blocks under DenyWarnings.
        let obj = SplitSphere::new();
        let mut bo = quick_bo();
        bo.gp.noise_floor = 0.0;
        let base = MethodologyConfig {
            bo,
            evals_per_dim: 5,
            ..Default::default()
        };
        let strict = Methodology::new(MethodologyConfig {
            lint: LintPolicy::DenyWarnings,
            ..base.clone()
        });
        let err = strict
            .run(&obj, &owners3(), &obj.default_config())
            .unwrap_err();
        match err {
            CoreError::Lint(msg) => assert!(msg.contains("N001"), "missing N001 in:\n{msg}"),
            other => panic!("expected CoreError::Lint, got {other}"),
        }
        // Default policy (DenyErrors) lets warnings through.
        let lax = Methodology::new(base);
        assert!(lax.run(&obj, &owners3(), &obj.default_config()).is_ok());
    }

    #[test]
    fn lint_report_is_inspectable_without_execution() {
        let obj = SplitSphere::new();
        let m = Methodology::new(MethodologyConfig {
            bo: quick_bo(),
            ..Default::default()
        });
        let baseline = obj.default_config();
        let report = m.analyze(&obj, &owners3(), &baseline).unwrap();
        let lint = m.lint_report(&obj, &report, &baseline);
        assert!(
            lint.is_clean(),
            "unexpected findings:\n{:?}",
            lint.diagnostics
        );
    }

    #[test]
    fn unknown_owner_routine_rejected() {
        let obj = SplitSphere::new();
        let m = Methodology::default();
        assert!(m
            .analyze(&obj, &[("x0", "nope")], &obj.default_config())
            .is_err());
    }

    #[test]
    fn unknown_routine_in_plan_rejected() {
        let obj = SplitSphere::new();
        let plan = SearchPlan {
            stages: vec![vec![PlannedSearch {
                name: "bad".into(),
                params: vec!["x0".into()],
                dropped: vec![],
                target: SearchTarget::Routines(vec!["missing".into()]),
                budget: 5,
            }]],
        };
        assert!(execute_plan(&obj, &plan, &quick_bo(), false).is_err());
    }
}
