//! Random-search baseline (paper Table III's first column).

use crate::bo::SearchOutcome;
use crate::objective::Objective;
use crate::{CoreError, Result};
use cets_space::Subspace;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for [`random_search`].
#[derive(Debug, Clone)]
pub struct RandomSearchConfig {
    /// Number of evaluations.
    pub n_evals: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of worker threads. Random search parallelizes trivially —
    /// the paper notes its wall-time advantage over inherently sequential
    /// BO comes exactly from this.
    pub threads: usize,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        RandomSearchConfig {
            n_evals: 50,
            seed: 0,
            threads: 4,
        }
    }
}

/// Uniform random search over the full space of `objective`, minimizing the
/// total observation. Deterministic for a fixed seed regardless of the
/// thread count (each evaluation's configuration is derived from
/// `seed + index`).
pub fn random_search<O: Objective + ?Sized>(
    objective: &O,
    cfg: &RandomSearchConfig,
) -> Result<SearchOutcome> {
    if cfg.n_evals == 0 {
        return Err(CoreError::BadConfig("n_evals must be > 0".into()));
    }
    let start = Instant::now();
    let space = objective.space();
    let subspace = Subspace::full(space, objective.default_config())?;
    // Contraction-aware fallback sampler: rejection draws come from the
    // statically narrowed box when the constraint analysis proves one
    // (identical to a plain `Sampler` otherwise).
    let sampler = crate::contraction::contraction_aware_sampler(space);

    let threads = cfg.threads.max(1).min(cfg.n_evals);
    let mut results: Vec<Option<(Vec<f64>, f64)>> = vec![None; cfg.n_evals];
    let chunk = cfg.n_evals.div_ceil(threads);
    let errors: Mutex<Vec<CoreError>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for (ci, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            let sampler = &sampler;
            let subspace = &subspace;
            let errors = &errors;
            s.spawn(move || {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = base + off;
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
                    // Constructive sampler first (see Objective docs), then
                    // blind rejection.
                    let drawn = match objective.sample_valid(&mut rng) {
                        Some(c) => Ok(c),
                        None => sampler.uniform(&mut rng).map_err(CoreError::Space),
                    };
                    let projected = drawn.and_then(|config| {
                        let y = objective.evaluate(&config).total;
                        let u = subspace.project(&config)?;
                        Ok((u, y))
                    });
                    match projected {
                        Ok(pair) => *slot = Some(pair),
                        Err(e) => errors.lock().push(e),
                    }
                }
            });
        }
    });

    if let Some(e) = errors.into_inner().into_iter().next() {
        return Err(e);
    }
    let history: Vec<(Vec<f64>, f64)> = results.into_iter().flatten().collect();
    if history.len() != cfg.n_evals {
        return Err(CoreError::SearchStalled(
            "random search lost evaluations".into(),
        ));
    }

    let mut best = f64::INFINITY;
    let mut best_idx = 0;
    let mut trace = Vec::with_capacity(history.len());
    for (i, (_, y)) in history.iter().enumerate() {
        if *y < best {
            best = *y;
            best_idx = i;
        }
        trace.push(best);
    }
    Ok(SearchOutcome {
        best_config: subspace.lift(&history[best_idx].0)?,
        best_value: best,
        n_evals: history.len(),
        incumbent_trace: trace,
        history,
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;

    #[test]
    fn finds_reasonable_minimum() {
        let obj = SplitSphere::new();
        let out = random_search(
            &obj,
            &RandomSearchConfig {
                n_evals: 200,
                seed: 5,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(out.n_evals, 200);
        // Sphere on [-5,5]^3: 200 random draws should get well below the
        // mean value (~25).
        assert!(out.best_value < 8.0, "best {}", out.best_value);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let obj = SplitSphere::new();
        let mk = |threads| {
            random_search(
                &obj,
                &RandomSearchConfig {
                    n_evals: 50,
                    seed: 9,
                    threads,
                },
            )
            .unwrap()
        };
        let a = mk(1);
        let b = mk(8);
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn zero_evals_rejected() {
        let obj = SplitSphere::new();
        assert!(matches!(
            random_search(
                &obj,
                &RandomSearchConfig {
                    n_evals: 0,
                    ..Default::default()
                }
            ),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn trace_monotone() {
        let obj = SplitSphere::new();
        let out = random_search(
            &obj,
            &RandomSearchConfig {
                n_evals: 30,
                seed: 1,
                threads: 2,
            },
        )
        .unwrap();
        for w in out.incumbent_trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(out.incumbent_trace.last().copied(), Some(out.best_value));
    }
}
