//! Crash-recovery checkpoints for BO searches.
//!
//! HPC tuning runs die: node failures, queue time limits, application
//! crashes on pathological configurations. The paper chose GPTune partly
//! for its crash recovery; CETS provides the same property by writing the
//! full evaluation history to JSON after every objective evaluation —
//! the most expensive state by far — so a restarted search continues where
//! it stopped ([`crate::BoSearch::resume`]).
//!
//! ## Format
//!
//! Checkpoints are versioned JSON objects. **Version 2** (current) records
//! every *attempt*, including failures, so a failure-aware search
//! ([`crate::BoSearch::run_resilient`]) resumes bit-for-bit:
//!
//! ```json
//! {
//!   "version": 2,
//!   "seed": 42,
//!   "tier": "auto:512",
//!   "x_unit": [[0.1, 0.9], [0.4, 0.2]],
//!   "y": [3.5, 0.0],
//!   "failed": [null, {"kind": "crashed", "message": "..."}],
//!   "checksum": "fnv1a:a1b2c3d4e5f60718"
//! }
//! ```
//!
//! `checksum` is an FNV-1a hash of the semantic content (seed, tier, point
//! and value bit patterns, failure records) verified on load; files written
//! by older versions carry no field and load without the check. Writes are
//! durable as well as atomic: the tmp file is fsynced before the rename and
//! the parent directory after it, so a `kill -9` or power loss at any
//! instant leaves either the previous checkpoint or the new one intact.
//!
//! `tier` is the surrogate tier-policy tag
//! ([`cets_gp::TierPolicy::tag`]) the search ran with. Resume re-derives
//! every per-iteration tier decision from the policy and the record
//! count, so a mismatched policy would silently diverge from the
//! interrupted trajectory — [`crate::BoSearch::resume`] and
//! [`crate::BoSearch::resume_resilient`] reject it instead. Files
//! written before the tier layer existed carry no `tier` field and
//! resume without the check.
//!
//! `y[i]` holds `0.0` as a placeholder where `failed[i]` is non-null (JSON
//! cannot encode NaN); imputation happens at GP-train time from the failure
//! records, never from stored sentinel values. **Version 1** files (no
//! `version` field) are read as all-success histories. Loading validates
//! the version, array lengths, point dimensions, and finiteness, and
//! reports what is wrong in [`CoreError::Checkpoint`] rather than
//! panicking or silently resuming from garbage.

use crate::resilience::{EvalRecord, FailedEval, FailureKind};
use crate::{CoreError, Result};
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::Path;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: i64 = 2;

/// Persisted state of a (possibly interrupted) BO search.
#[derive(Debug, Clone, PartialEq)]
pub struct BoCheckpoint {
    /// Seed the search was started with (resume derives its RNG stream from
    /// `seed + attempts`, so continued runs stay deterministic without
    /// persisting raw RNG state).
    pub seed: u64,
    /// Attempted active-space unit points, in attempt order.
    pub x_unit: Vec<Vec<f64>>,
    /// Corresponding objective values (`0.0` placeholder where the attempt
    /// failed — see `failed`).
    pub y: Vec<f64>,
    /// Per-attempt failure record; `None` marks a successful evaluation.
    pub failed: Vec<Option<FailedEval>>,
    /// Surrogate tier-policy tag the search ran with
    /// ([`cets_gp::TierPolicy::tag`]); `None` for files written before the
    /// tier layer existed. Resume rejects a mismatching tag rather than
    /// silently diverging from the interrupted trajectory.
    pub tier: Option<String>,
}

impl BoCheckpoint {
    /// Snapshot an all-success history.
    pub fn from_history(seed: u64, history: &[(Vec<f64>, f64)]) -> Self {
        BoCheckpoint {
            seed,
            x_unit: history.iter().map(|(u, _)| u.clone()).collect(),
            y: history.iter().map(|(_, y)| *y).collect(),
            failed: vec![None; history.len()],
            tier: None,
        }
    }

    /// Snapshot a failure-aware attempt history.
    pub fn from_records(seed: u64, records: &[EvalRecord]) -> Self {
        BoCheckpoint {
            seed,
            x_unit: records.iter().map(|r| r.u.clone()).collect(),
            y: records.iter().map(|r| r.y().unwrap_or(0.0)).collect(),
            failed: records
                .iter()
                .map(|r| r.value.as_ref().err().cloned())
                .collect(),
            tier: None,
        }
    }

    /// Record the surrogate tier-policy tag the search is running with.
    pub fn with_tier(mut self, tag: String) -> Self {
        self.tier = Some(tag);
        self
    }

    /// Rebuild the `(point, value)` history of **successful** evaluations.
    pub fn history(&self) -> Vec<(Vec<f64>, f64)> {
        self.x_unit
            .iter()
            .zip(&self.y)
            .zip(&self.failed)
            .filter(|(_, f)| f.is_none())
            .map(|((u, y), _)| (u.clone(), *y))
            .collect()
    }

    /// Rebuild the full attempt history, failures included.
    pub fn records(&self) -> Vec<EvalRecord> {
        self.x_unit
            .iter()
            .zip(&self.y)
            .zip(&self.failed)
            .map(|((u, y), f)| match f {
                None => EvalRecord::ok(u.clone(), *y),
                Some(e) => EvalRecord::failed(u.clone(), e.clone()),
            })
            .collect()
    }

    /// Number of attempts (successes + failures).
    pub fn n_evals(&self) -> usize {
        self.y.len()
    }

    /// Number of failed attempts.
    pub fn n_failed(&self) -> usize {
        self.failed.iter().filter(|f| f.is_some()).count()
    }

    /// Content checksum over the semantic payload (seed, tier tag, point
    /// and value bit patterns, failure records), independent of JSON
    /// formatting. Written into the v2 payload by [`BoCheckpoint::save`]
    /// and verified on load, so silent storage corruption (a post-rename
    /// power loss, a flipped bit) is diagnosed as a checksum mismatch
    /// instead of surfacing as a confusing parse or validation error — or
    /// worse, resuming from subtly wrong history.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.seed.to_le_bytes());
        if let Some(tag) = &self.tier {
            eat(&(tag.len() as u64).to_le_bytes());
            eat(tag.as_bytes());
        }
        eat(&(self.x_unit.len() as u64).to_le_bytes());
        for (i, u) in self.x_unit.iter().enumerate() {
            eat(&(u.len() as u64).to_le_bytes());
            for v in u {
                eat(&v.to_bits().to_le_bytes());
            }
            match &self.failed.get(i) {
                Some(Some(f)) => {
                    eat(b"err");
                    eat(f.kind.as_str().as_bytes());
                    eat(&(f.message.len() as u64).to_le_bytes());
                    eat(f.message.as_bytes());
                }
                _ => {
                    eat(b"ok");
                    eat(&self
                        .y
                        .get(i)
                        .copied()
                        .unwrap_or(0.0)
                        .to_bits()
                        .to_le_bytes());
                }
            }
        }
        h
    }

    /// Write durably and atomically: serialize to `<path>.tmp`, `fsync` the
    /// tmp file, rename over `path`, then `fsync` the parent directory so
    /// the rename itself survives a power loss. A crash at any point leaves
    /// either the previous checkpoint or the new one — never a torn file —
    /// and the embedded [`BoCheckpoint::content_hash`] lets `load` diagnose
    /// silent corruption that slips past those guarantees.
    pub fn save(&self, path: &Path) -> Result<()> {
        use std::io::Write;
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Checkpoint(format!("serialize: {e}")))?;
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| CoreError::Checkpoint(format!("create {}: {e}", tmp.display())))?;
        f.write_all(json.as_bytes())
            .map_err(|e| CoreError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        f.sync_all()
            .map_err(|e| CoreError::Checkpoint(format!("fsync {}: {e}", tmp.display())))?;
        drop(f);
        std::fs::rename(&tmp, path)
            .map_err(|e| CoreError::Checkpoint(format!("rename to {}: {e}", path.display())))?;
        // Persist the rename: fsync the directory entry. Directory handles
        // are a Unix notion; elsewhere the rename is as durable as it gets.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let d = std::fs::File::open(dir)
                .map_err(|e| CoreError::Checkpoint(format!("open dir {}: {e}", dir.display())))?;
            d.sync_all()
                .map_err(|e| CoreError::Checkpoint(format!("fsync dir {}: {e}", dir.display())))?;
        }
        Ok(())
    }

    /// Load and validate a checkpoint written by [`BoCheckpoint::save`]
    /// (or a pre-versioning v1 file).
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Checkpoint(format!("read {}: {e}", path.display())))?;
        let cp: BoCheckpoint = serde_json::from_str(&data)
            .map_err(|e| CoreError::Checkpoint(format!("parse {}: {e}", path.display())))?;
        cp.validate()
            .map_err(|m| CoreError::Checkpoint(format!("{}: {m}", path.display())))?;
        Ok(cp)
    }

    /// Structural validation: consistent lengths and dimensions, finite
    /// points, finite values on successful entries.
    fn validate(&self) -> std::result::Result<(), String> {
        if self.x_unit.len() != self.y.len() {
            return Err(format!(
                "corrupt checkpoint: {} points vs {} values",
                self.x_unit.len(),
                self.y.len()
            ));
        }
        if self.failed.len() != self.y.len() {
            return Err(format!(
                "corrupt checkpoint: {} failure markers vs {} values",
                self.failed.len(),
                self.y.len()
            ));
        }
        let dim = self.x_unit.first().map(Vec::len).unwrap_or(0);
        for (i, u) in self.x_unit.iter().enumerate() {
            if u.len() != dim {
                return Err(format!(
                    "corrupt checkpoint: point {i} has {} coordinates, expected {dim}",
                    u.len()
                ));
            }
            if let Some(j) = u.iter().position(|v| !v.is_finite()) {
                return Err(format!(
                    "corrupt checkpoint: point {i} coordinate {j} is not finite"
                ));
            }
        }
        for (i, (y, f)) in self.y.iter().zip(&self.failed).enumerate() {
            if f.is_none() && !y.is_finite() {
                return Err(format!(
                    "corrupt checkpoint: value {i} is not finite on a successful entry"
                ));
            }
        }
        Ok(())
    }
}

// Hand-written (de)serialization: the vendored serde derive has no
// `#[serde(default)]`, and the version/back-compat handling needs explicit
// control anyway.

impl Serialize for BoCheckpoint {
    fn serialize(&self) -> Value {
        // `y` placeholders for failed entries are already finite (0.0), so
        // the JSON never contains nulls in the value array.
        let mut fields = vec![
            ("version".into(), Value::Int(CHECKPOINT_VERSION)),
            ("seed".into(), self.seed.serialize()),
        ];
        if let Some(tag) = &self.tier {
            fields.push(("tier".into(), Value::String(tag.clone())));
        }
        fields.push(("x_unit".into(), self.x_unit.serialize()));
        fields.push(("y".into(), self.y.serialize()));
        fields.push(("failed".into(), self.failed.serialize()));
        fields.push((
            "checksum".into(),
            Value::String(format!("fnv1a:{:016x}", self.content_hash())),
        ));
        Value::Object(fields)
    }
}

impl Deserialize for BoCheckpoint {
    fn deserialize(v: &Value) -> std::result::Result<Self, DeError> {
        let version = match v.get_field("version") {
            Value::Null => 1, // pre-versioning files carry no field
            other => other
                .as_i64()
                .map_err(|e| DeError(format!("version: {e}")))?,
        };
        if !(1..=CHECKPOINT_VERSION).contains(&version) {
            return Err(DeError(format!(
                "unsupported checkpoint version {version} (this build reads 1..={CHECKPOINT_VERSION})"
            )));
        }
        let seed = v
            .get_field("seed")
            .as_u64()
            .map_err(|e| DeError(format!("seed: {e}")))?;
        let x_unit: Vec<Vec<f64>> = Deserialize::deserialize(v.get_field("x_unit"))
            .map_err(|e| DeError(format!("x_unit: {e}")))?;
        let y: Vec<f64> =
            Deserialize::deserialize(v.get_field("y")).map_err(|e| DeError(format!("y: {e}")))?;
        let failed: Vec<Option<FailedEval>> = if version >= 2 {
            Deserialize::deserialize(v.get_field("failed"))
                .map_err(|e| DeError(format!("failed: {e}")))?
        } else {
            vec![None; y.len()]
        };
        // Optional in every version: absent in files written before the
        // sparse-GP tier layer existed.
        let tier: Option<String> = match v.get_field("tier") {
            Value::Null => None,
            other => Some(String::deserialize(other).map_err(|e| DeError(format!("tier: {e}")))?),
        };
        let cp = BoCheckpoint {
            seed,
            x_unit,
            y,
            failed,
            tier,
        };
        // Verify the embedded content checksum when present (absent in
        // files written by older versions — still accepted).
        match v.get_field("checksum") {
            Value::Null => {}
            other => {
                let stored =
                    String::deserialize(other).map_err(|e| DeError(format!("checksum: {e}")))?;
                let computed = format!("fnv1a:{:016x}", cp.content_hash());
                if stored != computed {
                    return Err(DeError(format!(
                        "checksum mismatch: file says {stored}, content hashes to {computed} — \
                         the checkpoint was corrupted after it was written"
                    )));
                }
            }
        }
        Ok(cp)
    }
}

impl Serialize for FailedEval {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::String(self.kind.as_str().to_string())),
            ("message".into(), Value::String(self.message.clone())),
        ])
    }
}

impl Deserialize for FailedEval {
    fn deserialize(v: &Value) -> std::result::Result<Self, DeError> {
        let tag = String::deserialize(v.get_field("kind"))
            .map_err(|e| DeError(format!("failure kind: {e}")))?;
        let kind = FailureKind::parse(&tag)
            .ok_or_else(|| DeError(format!("unknown failure kind `{tag}`")))?;
        let message: Option<String> = Deserialize::deserialize(v.get_field("message"))
            .map_err(|e| DeError(format!("failure message: {e}")))?;
        Ok(FailedEval {
            kind,
            message: message.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cets_ckpt_{}_{name}.json", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let hist = vec![(vec![0.1, 0.2], 3.0), (vec![0.5, 0.6], 1.5)];
        let cp = BoCheckpoint::from_history(42, &hist);
        assert_eq!(cp.n_evals(), 2);
        assert_eq!(cp.n_failed(), 0);
        let path = tmp_path("roundtrip");
        cp.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
        assert_eq!(loaded.history(), hist);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_roundtrip_with_failures() {
        let records = vec![
            EvalRecord::ok(vec![0.1, 0.2], 3.0),
            EvalRecord::failed(
                vec![0.5, 0.6],
                FailedEval {
                    kind: FailureKind::Crashed,
                    message: "boom".into(),
                },
            ),
            EvalRecord::ok(vec![0.9, 0.4], 1.0),
        ];
        let cp = BoCheckpoint::from_records(7, &records);
        assert_eq!(cp.n_evals(), 3);
        assert_eq!(cp.n_failed(), 1);
        let path = tmp_path("records");
        cp.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.records(), records);
        // Successful history skips the failure.
        assert_eq!(
            loaded.history(),
            vec![(vec![0.1, 0.2], 3.0), (vec![0.9, 0.4], 1.0)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tier_tag_roundtrips_and_defaults_to_none() {
        let cp = BoCheckpoint::from_history(3, &[(vec![0.1], 1.0)]).with_tier("auto:512".into());
        let path = tmp_path("tier");
        cp.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.tier.as_deref(), Some("auto:512"));
        assert_eq!(loaded, cp);
        // A file without the field (older writer) loads as `None`.
        std::fs::write(
            &path,
            r#"{"version":2,"seed":3,"x_unit":[[0.1]],"y":[1.0],"failed":[null]}"#,
        )
        .unwrap();
        assert_eq!(BoCheckpoint::load(&path).unwrap().tier, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_without_version_loads_as_all_success() {
        let path = tmp_path("v1");
        std::fs::write(&path, r#"{"seed":9,"x_unit":[[0.1],[0.2]],"y":[1.0,2.0]}"#).unwrap();
        let cp = BoCheckpoint::load(&path).unwrap();
        assert_eq!(cp.seed, 9);
        assert_eq!(cp.n_failed(), 0);
        assert_eq!(cp.history(), vec![(vec![0.1], 1.0), (vec![0.2], 2.0)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected_with_clear_message() {
        let path = tmp_path("future");
        std::fs::write(
            &path,
            r#"{"version":99,"seed":1,"x_unit":[],"y":[],"failed":[]}"#,
        )
        .unwrap();
        let err = BoCheckpoint::load(&path).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported checkpoint version 99"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let path = tmp_path("missing_never_written");
        assert!(matches!(
            BoCheckpoint::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn corrupt_lengths_rejected() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, r#"{"seed":1,"x_unit":[[0.1]],"y":[1.0,2.0]}"#).unwrap();
        assert!(matches!(
            BoCheckpoint::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_points_rejected() {
        let path = tmp_path("ragged");
        std::fs::write(
            &path,
            r#"{"seed":1,"x_unit":[[0.1,0.2],[0.3]],"y":[1.0,2.0]}"#,
        )
        .unwrap();
        let err = BoCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("coordinates"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn null_value_on_success_entry_rejected() {
        // JSON null reads back as NaN; a successful entry must be finite.
        let path = tmp_path("nan");
        std::fs::write(&path, r#"{"seed":1,"x_unit":[[0.1]],"y":[null]}"#).unwrap();
        let err = BoCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("not finite"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_failure_kind_rejected() {
        let path = tmp_path("badkind");
        std::fs::write(
            &path,
            r#"{"version":2,"seed":1,"x_unit":[[0.1]],"y":[0.0],"failed":[{"kind":"cosmic-ray","message":""}]}"#,
        )
        .unwrap();
        let err = BoCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("cosmic-ray"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_json_rejected() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(BoCheckpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_json_rejected() {
        let path = tmp_path("truncated");
        let full = serde_json::to_string_pretty(&BoCheckpoint::from_history(
            3,
            &[(vec![0.1, 0.2], 1.0), (vec![0.3, 0.4], 2.0)],
        ))
        .unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            BoCheckpoint::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_detects_silent_corruption() {
        let path = tmp_path("checksum");
        let cp = BoCheckpoint::from_records(
            11,
            &[
                EvalRecord::ok(vec![0.25, 0.75], 3.0),
                EvalRecord::failed(
                    vec![0.5, 0.5],
                    FailedEval {
                        kind: FailureKind::Timeout,
                        message: "slow".into(),
                    },
                ),
            ],
        );
        cp.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"checksum\""), "{text}");
        // Flip one observed value without touching the stored checksum:
        // structurally valid JSON, semantically corrupt.
        let tampered = text.replacen("3.0", "3.5", 1);
        assert_ne!(tampered, text);
        std::fs::write(&path, tampered).unwrap();
        let err = BoCheckpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_field_absent_still_loads() {
        // Files written before the checksum existed load without the check.
        let path = tmp_path("nochecksum");
        std::fs::write(
            &path,
            r#"{"version":2,"seed":5,"x_unit":[[0.3]],"y":[2.0],"failed":[null]}"#,
        )
        .unwrap();
        let cp = BoCheckpoint::load(&path).unwrap();
        assert_eq!(cp.seed, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_is_atomic_style() {
        let path = tmp_path("atomic");
        let cp1 = BoCheckpoint::from_history(1, &[(vec![0.0], 1.0)]);
        cp1.save(&path).unwrap();
        let cp2 = BoCheckpoint::from_history(1, &[(vec![0.0], 1.0), (vec![1.0], 0.5)]);
        cp2.save(&path).unwrap();
        assert_eq!(BoCheckpoint::load(&path).unwrap().n_evals(), 2);
        // No stray tmp file.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
