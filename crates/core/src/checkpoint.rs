//! Crash-recovery checkpoints for BO searches.
//!
//! HPC tuning runs die: node failures, queue time limits, application
//! crashes on pathological configurations. The paper chose GPTune partly
//! for its crash recovery; CETS provides the same property by writing the
//! full evaluation history to JSON after every objective evaluation —
//! the most expensive state by far — so a restarted search continues where
//! it stopped ([`crate::BoSearch::resume`]).

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Persisted state of a (possibly interrupted) BO search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoCheckpoint {
    /// Seed the search was started with (resume derives its RNG stream from
    /// `seed + evaluations`, so continued runs stay deterministic without
    /// persisting raw RNG state).
    pub seed: u64,
    /// Evaluated active-space unit points.
    pub x_unit: Vec<Vec<f64>>,
    /// Corresponding objective values.
    pub y: Vec<f64>,
}

impl BoCheckpoint {
    /// Snapshot a history.
    pub fn from_history(seed: u64, history: &[(Vec<f64>, f64)]) -> Self {
        BoCheckpoint {
            seed,
            x_unit: history.iter().map(|(u, _)| u.clone()).collect(),
            y: history.iter().map(|(_, y)| *y).collect(),
        }
    }

    /// Rebuild the `(point, value)` history.
    pub fn history(&self) -> Vec<(Vec<f64>, f64)> {
        self.x_unit
            .iter()
            .cloned()
            .zip(self.y.iter().cloned())
            .collect()
    }

    /// Number of completed evaluations.
    pub fn n_evals(&self) -> usize {
        self.y.len()
    }

    /// Write atomically (write to `<path>.tmp`, then rename) so a crash
    /// mid-write never corrupts the previous checkpoint.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Checkpoint(format!("serialize: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)
            .map_err(|e| CoreError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CoreError::Checkpoint(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    /// Load a checkpoint written by [`BoCheckpoint::save`].
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Checkpoint(format!("read {}: {e}", path.display())))?;
        let cp: BoCheckpoint = serde_json::from_str(&data)
            .map_err(|e| CoreError::Checkpoint(format!("parse {}: {e}", path.display())))?;
        if cp.x_unit.len() != cp.y.len() {
            return Err(CoreError::Checkpoint(format!(
                "corrupt checkpoint: {} points vs {} values",
                cp.x_unit.len(),
                cp.y.len()
            )));
        }
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cets_ckpt_{}_{name}.json", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let hist = vec![(vec![0.1, 0.2], 3.0), (vec![0.5, 0.6], 1.5)];
        let cp = BoCheckpoint::from_history(42, &hist);
        assert_eq!(cp.n_evals(), 2);
        let path = tmp_path("roundtrip");
        cp.save(&path).unwrap();
        let loaded = BoCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
        assert_eq!(loaded.history(), hist);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let path = tmp_path("missing_never_written");
        assert!(matches!(
            BoCheckpoint::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
    }

    #[test]
    fn corrupt_lengths_rejected() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, r#"{"seed":1,"x_unit":[[0.1]],"y":[1.0,2.0]}"#).unwrap();
        assert!(matches!(
            BoCheckpoint::load(&path),
            Err(CoreError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_json_rejected() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(BoCheckpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_is_atomic_style() {
        let path = tmp_path("atomic");
        let cp1 = BoCheckpoint::from_history(1, &[(vec![0.0], 1.0)]);
        cp1.save(&path).unwrap();
        let cp2 = BoCheckpoint::from_history(1, &[(vec![0.0], 1.0), (vec![1.0], 0.5)]);
        cp2.save(&path).unwrap();
        assert_eq!(BoCheckpoint::load(&path).unwrap().n_evals(), 2);
        // No stray tmp file.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
