//! # cets-core
//!
//! The CETS methodology — *Cost-Effective Tuning Searches* — for complex
//! HPC tuning problems with many parameters and inter-routine
//! interdependencies (IPDPS 2024).
//!
//! Given an application exposing `t` routines and `D` tuning parameters
//! (the paper targets `D ≥ 20`, past the practical limit of plain Bayesian
//! optimization), the methodology proceeds in two phases:
//!
//! 1. **Insights & interdependence** ([`insights`], [`sensitivity`]):
//!    a cheap runtime-sensitivity analysis scores the influence of every
//!    parameter on every routine (`1 + D×V` evaluations instead of a full
//!    orthogonality design), complemented by Pearson correlation and
//!    random-forest feature importance over a modest sample.
//! 2. **Search planning & execution** ([`methodology`], [`bo`],
//!    [`strategy`]): the scores become an influence DAG; pruning at a
//!    cut-off and partitioning yields an optimized set of independent and
//!    merged searches, each capped at 10 dimensions, which are then run
//!    with Bayesian optimization (merged groups jointly, independent groups
//!    in parallel).
//!
//! The crate also ships the comparison baselines from the paper's Table III
//! (random search, fully-joint BO, fully-independent BO), BO crash-recovery
//! checkpoints, and transfer-learning seeding between related tasks.
//!
//! The paper's two evaluation targets live in sibling crates
//! (`cets-synthetic`, `cets-tddft`); anything implementing [`Objective`]
//! can be tuned.

pub mod bo;
pub mod checkpoint;
pub mod construct;
pub mod contraction;
pub mod db;
pub mod grid_search;
pub mod highdim;
pub mod insights;
pub mod interaction;
pub mod methodology;
pub mod normal;
pub mod objective;
pub mod random_search;
pub mod report;
pub mod resilience;
pub mod sensitivity;
pub mod strategy;
pub mod transfer;

pub use bo::{
    Acquisition, BoConfig, BoSearch, FailurePolicy, Imputation, ResilientOutcome, SearchOutcome,
};
pub use checkpoint::BoCheckpoint;
pub use construct::ConstructiveSampler;
pub use contraction::{
    active_unit_box, active_unit_slabs, contracted_unit_box, contracted_unit_slabs,
    contraction_aware_sampler,
};
pub use db::{Database, Record};
pub use grid_search::grid_search;
pub use highdim::{dropout_bo, full_space_bo, rembo};
pub use insights::{gather_insights, FeatureInsights, InsightsConfig};
pub use interaction::{pairwise_interactions, pairwise_interactions_on, InteractionAnalysis};
pub use methodology::{
    build_graph, execute_plan, execute_plan_resilient, ExecutionLedger, LintPolicy, Methodology,
    MethodologyConfig, MethodologyReport, PlanExecution, PlannedSearch, SearchDisposition,
    SearchLedgerEntry, SearchPlan, SearchTarget,
};
pub use objective::{ContractedObjective, CountingObjective, Objective, Observation};
pub use random_search::{random_search, RandomSearchConfig};
pub use report::render_markdown;
pub use resilience::{
    Clock, EvalError, EvalOutcome, EvalRecord, FailedEval, FailureKind, FailureStats, FaultKind,
    FaultPlan, FaultyObjective, GuardPolicy, ResilienceConfig, ResilientObjective, RetryPolicy,
    SystemClock, VirtualClock,
};
pub use sensitivity::{routine_sensitivity, VariationPolicy};
pub use strategy::{run_strategy, Strategy, StrategyResult};
pub use transfer::TransferSeed;

/// Errors produced by the tuning engine.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying search-space failure.
    Space(cets_space::SpaceError),
    /// Underlying GP failure.
    Gp(cets_gp::GpError),
    /// Underlying statistics failure.
    Stats(cets_stats::StatsError),
    /// Underlying graph failure.
    Graph(cets_graph::GraphError),
    /// Checkpoint (de)serialization or IO failure.
    Checkpoint(String),
    /// The search could not make progress (e.g. no valid candidates).
    SearchStalled(String),
    /// Invalid configuration of the engine itself.
    BadConfig(String),
    /// The pre-execution plan linter rejected the plan (see
    /// [`methodology::LintPolicy`]). The payload is the rendered report.
    Lint(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Space(e) => write!(f, "space error: {e}"),
            CoreError::Gp(e) => write!(f, "gp error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            CoreError::SearchStalled(m) => write!(f, "search stalled: {m}"),
            CoreError::BadConfig(m) => write!(f, "bad config: {m}"),
            CoreError::Lint(m) => write!(f, "plan rejected by linter:\n{m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cets_space::SpaceError> for CoreError {
    fn from(e: cets_space::SpaceError) -> Self {
        CoreError::Space(e)
    }
}
impl From<cets_gp::GpError> for CoreError {
    fn from(e: cets_gp::GpError) -> Self {
        CoreError::Gp(e)
    }
}
impl From<cets_stats::StatsError> for CoreError {
    fn from(e: cets_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}
impl From<cets_graph::GraphError> for CoreError {
    fn from(e: cets_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
