//! Fault-tolerant evaluation: typed outcomes, panic containment, watchdog
//! timeouts, seeded retry with backoff, and deterministic fault injection.
//!
//! The paper's observations are *real* HPC runs (RT-TDDFT on Perlmutter
//! A100 nodes), and real runs crash, hang, OOM and return garbage timings.
//! GPTune survives failed runs by recording and imputing them; this module
//! gives CETS the same property. Three layers compose:
//!
//! 1. **[`EvalOutcome`]** — the typed result of one evaluation attempt:
//!    either an [`Observation`] or an [`EvalError`] (crash, timeout,
//!    non-finite output, invalid configuration).
//! 2. **[`ResilientObjective`]** — wraps any [`Objective`], catches panics
//!    with `catch_unwind`, screens non-finite totals/routine values,
//!    classifies over-long evaluations against a wall-clock watchdog, and
//!    retries transient failures with seeded, capped exponential backoff.
//!    All timing flows through a [`Clock`], so tests drive a
//!    [`VirtualClock`] and stay deterministic and instant.
//! 3. **[`FaultPlan`]** / **[`FaultyObjective`]** — deterministic fault
//!    *injection* for chaos testing: fail every k-th evaluation, fail
//!    inside a sub-box of the space, seeded flaky failures keyed on the
//!    configuration (order-independent), and injected latency that the
//!    watchdog observes through the shared clock.
//!
//! The failure-aware BO loop ([`crate::BoSearch::run_resilient`]) consumes
//! [`EvalOutcome`]s and guarantees no non-finite value ever reaches
//! `Gp::train`; the methodology driver isolates whole-search failures into
//! a ledger ([`crate::methodology::ExecutionLedger`]) instead of aborting.

use crate::objective::{Objective, Observation};
use cets_space::Config;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// A monotonic time source the resilience layer reads and sleeps against.
///
/// Production code uses [`SystemClock`]; tests share one [`VirtualClock`]
/// between the fault injector and the watchdog so injected latency,
/// timeouts and retry backoff are observed deterministically without any
/// real waiting.
pub trait Clock: Send + Sync {
    /// Monotonic elapsed time since the clock's origin.
    fn now(&self) -> Duration;
    /// Sleep for `d` (virtually or actually).
    fn sleep(&self, d: Duration);
}

/// Wall-clock [`Clock`] backed by [`Instant`] and [`std::thread::sleep`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Deterministic test clock: `sleep` advances time instantly.
#[derive(Debug, Default)]
pub struct VirtualClock {
    t: Mutex<Duration>,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance time without sleeping (alias of [`Clock::sleep`]).
    pub fn advance(&self, d: Duration) {
        let mut t = self.t.lock();
        *t += d;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        *self.t.lock()
    }
    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

// ---------------------------------------------------------------------------
// Outcome types
// ---------------------------------------------------------------------------

/// Why one evaluation attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The evaluation panicked (application crash). Payload is the panic
    /// message when it was a string.
    Crashed(String),
    /// The evaluation exceeded the per-evaluation watchdog limit. The
    /// result (if any) is discarded as untrustworthy, mirroring a batch
    /// system killing an over-limit job.
    Timeout {
        /// The configured watchdog limit.
        limit: Duration,
        /// How long the evaluation actually took (by the [`Clock`]).
        observed: Duration,
    },
    /// The evaluation returned a non-finite total or routine value
    /// (NaN/Inf garbage timings).
    NonFinite {
        /// Which output was non-finite (e.g. `"total"` or a routine name).
        what: String,
    },
    /// The configuration was rejected before evaluation.
    InvalidConfig(String),
}

impl EvalError {
    /// Compact classification of this error, for ledgers and checkpoints.
    pub fn kind(&self) -> FailureKind {
        match self {
            EvalError::Crashed(_) => FailureKind::Crashed,
            EvalError::Timeout { .. } => FailureKind::Timeout,
            EvalError::NonFinite { .. } => FailureKind::NonFinite,
            EvalError::InvalidConfig(_) => FailureKind::InvalidConfig,
        }
    }

    /// Is retrying this failure potentially useful? Crashes and timeouts
    /// are treated as transient (node flakiness, interference); non-finite
    /// outputs and invalid configurations are deterministic properties of
    /// the configuration and are not retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, EvalError::Crashed(_) | EvalError::Timeout { .. })
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Crashed(m) => write!(f, "evaluation crashed: {m}"),
            EvalError::Timeout { limit, observed } => write!(
                f,
                "evaluation timed out: {observed:.2?} exceeded the {limit:.2?} watchdog"
            ),
            EvalError::NonFinite { what } => {
                write!(f, "evaluation returned a non-finite value for {what}")
            }
            EvalError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Compact failure class, serializable into checkpoints and ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The evaluation panicked.
    Crashed,
    /// The evaluation exceeded the watchdog limit.
    Timeout,
    /// The evaluation returned NaN/Inf.
    NonFinite,
    /// The configuration was rejected before evaluation.
    InvalidConfig,
}

impl FailureKind {
    /// Stable string tag (checkpoint format).
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Crashed => "crashed",
            FailureKind::Timeout => "timeout",
            FailureKind::NonFinite => "non-finite",
            FailureKind::InvalidConfig => "invalid-config",
        }
    }

    /// Parse a stable string tag written by [`FailureKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "crashed" => Some(FailureKind::Crashed),
            "timeout" => Some(FailureKind::Timeout),
            "non-finite" => Some(FailureKind::NonFinite),
            "invalid-config" => Some(FailureKind::InvalidConfig),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed evaluation as recorded in failure-aware search histories and
/// checkpoints: the compact classification plus the human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedEval {
    /// What class of failure this was.
    pub kind: FailureKind,
    /// Human-readable description (panic message, timeout details, …).
    pub message: String,
}

impl FailedEval {
    /// Record an [`EvalError`].
    pub fn from_error(e: &EvalError) -> Self {
        FailedEval {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// One evaluation attempt in a failure-aware search history: the
/// unit-encoded point plus either the observed objective value or the
/// recorded failure.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// The active-space unit point that was evaluated.
    pub u: Vec<f64>,
    /// The observed total (finite by construction) or the failure.
    pub value: std::result::Result<f64, FailedEval>,
}

impl EvalRecord {
    /// A successful evaluation.
    pub fn ok(u: Vec<f64>, y: f64) -> Self {
        EvalRecord { u, value: Ok(y) }
    }

    /// A failed evaluation.
    pub fn failed(u: Vec<f64>, e: FailedEval) -> Self {
        EvalRecord { u, value: Err(e) }
    }

    /// Did this attempt succeed?
    pub fn is_ok(&self) -> bool {
        self.value.is_ok()
    }

    /// The observed value, if successful.
    pub fn y(&self) -> Option<f64> {
        self.value.as_ref().ok().copied()
    }
}

/// Per-[`FailureKind`] evaluation accounting, aggregable across searches.
///
/// A single search's ledger entry counts failures in bulk; a long-running
/// service supervises many searches and wants the breakdown (how many
/// crashes vs. timeouts vs. screening rejections) rolled up per campaign
/// and per service. `FailureStats` is that roll-up: build one per record
/// stream with [`FailureStats::from_records`] and fold them together with
/// [`FailureStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureStats {
    /// Successful evaluations.
    pub n_ok: usize,
    /// Evaluations that panicked.
    pub n_crashed: usize,
    /// Evaluations killed by the watchdog.
    pub n_timeout: usize,
    /// Evaluations screened out for NaN/Inf results.
    pub n_non_finite: usize,
    /// Configurations rejected before evaluation.
    pub n_invalid_config: usize,
}

impl FailureStats {
    /// Tally one recorded attempt.
    pub fn record(&mut self, r: &EvalRecord) {
        match &r.value {
            Ok(_) => self.n_ok += 1,
            Err(f) => match f.kind {
                FailureKind::Crashed => self.n_crashed += 1,
                FailureKind::Timeout => self.n_timeout += 1,
                FailureKind::NonFinite => self.n_non_finite += 1,
                FailureKind::InvalidConfig => self.n_invalid_config += 1,
            },
        }
    }

    /// Aggregate a whole record stream.
    pub fn from_records(records: &[EvalRecord]) -> Self {
        let mut s = FailureStats::default();
        for r in records {
            s.record(r);
        }
        s
    }

    /// Fold another tally into this one (service-level aggregation).
    pub fn merge(&mut self, other: &FailureStats) {
        self.n_ok += other.n_ok;
        self.n_crashed += other.n_crashed;
        self.n_timeout += other.n_timeout;
        self.n_non_finite += other.n_non_finite;
        self.n_invalid_config += other.n_invalid_config;
    }

    /// Total failed attempts across all kinds.
    pub fn n_failed(&self) -> usize {
        self.n_crashed + self.n_timeout + self.n_non_finite + self.n_invalid_config
    }

    /// Total recorded attempts.
    pub fn total(&self) -> usize {
        self.n_ok + self.n_failed()
    }
}

/// The typed result of evaluating one configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The evaluation produced a trustworthy observation.
    Ok(Observation),
    /// The evaluation failed (after any retries).
    Failed(EvalError),
}

impl EvalOutcome {
    /// The observation, if successful.
    pub fn ok(self) -> Option<Observation> {
        match self {
            EvalOutcome::Ok(o) => Some(o),
            EvalOutcome::Failed(_) => None,
        }
    }

    /// Did the evaluation succeed?
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok(_))
    }

    /// Screen an infallible observation: non-finite totals or routine
    /// values become [`EvalError::NonFinite`].
    pub fn screened(obs: Observation, routine_names: &[String]) -> Self {
        if !obs.total.is_finite() {
            return EvalOutcome::Failed(EvalError::NonFinite {
                what: "total".into(),
            });
        }
        if let Some(r) = obs.routines.iter().position(|v| !v.is_finite()) {
            let what = routine_names
                .get(r)
                .cloned()
                .unwrap_or_else(|| format!("routine {r}"));
            return EvalOutcome::Failed(EvalError::NonFinite { what });
        }
        EvalOutcome::Ok(obs)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Seeded, capped exponential backoff for transient evaluation failures.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based) of evaluation
    /// `eval_idx`: `base · 2^(retry−1)` capped at `max_backoff`, with up to
    /// +50% deterministic jitter derived from `(seed, eval_idx, retry)` —
    /// the same inputs always produce the same backoff, so virtual-clock
    /// tests are reproducible while real fleets still decorrelate.
    ///
    /// The jitter is a pure function of those three inputs, **never** a
    /// draw from a shared stream: retries consumed by earlier evaluations
    /// cannot shift later draws, which is what keeps crash-at-k resume
    /// bit-for-bit even when retries fired before the kill (resumed runs
    /// skip the recorded attempts and therefore replay none of their
    /// backoff draws).
    pub fn backoff(&self, eval_idx: usize, retry: usize) -> Duration {
        let exp = retry.saturating_sub(1).min(32) as u32;
        let base = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.max_backoff);
        let h = splitmix64(
            self.seed
                .wrapping_add((eval_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(retry as u64),
        );
        let jitter = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        base + base.mul_f64(0.5 * jitter)
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used for deterministic,
/// order-independent fault and jitter decisions.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` value derived from a 64-bit hash.
pub(crate) fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// ResilientObjective
// ---------------------------------------------------------------------------

/// Per-evaluation protection settings for [`ResilientObjective`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuardPolicy {
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-evaluation wall-clock limit (`None` disables the watchdog). An
    /// evaluation observed to exceed the limit is classified as
    /// [`EvalError::Timeout`] and its result discarded; the in-process
    /// evaluation cannot be pre-empted, but its outcome is never trusted —
    /// exactly the contract of a batch scheduler killing an over-limit job.
    pub watchdog: Option<Duration>,
    /// Validate configurations against the objective's space before
    /// evaluating ([`EvalError::InvalidConfig`] instead of undefined
    /// behaviour inside the application).
    pub validate_configs: bool,
}

/// Fault-containing wrapper around any [`Objective`].
///
/// [`ResilientObjective::evaluate_outcome`] never panics and never returns
/// a non-finite observation: panics are caught, outputs screened, slow
/// evaluations classified against the watchdog, and transient failures
/// retried under the [`RetryPolicy`] with clock-driven backoff.
pub struct ResilientObjective<'a, O: Objective + ?Sized> {
    inner: &'a O,
    policy: GuardPolicy,
    clock: Arc<dyn Clock>,
    routine_names: Vec<String>,
    attempts: AtomicUsize,
    failures: AtomicUsize,
    retries: AtomicUsize,
}

impl<'a, O: Objective + ?Sized> ResilientObjective<'a, O> {
    /// Wrap `inner` under `policy`, timing against `clock`.
    pub fn new(inner: &'a O, policy: GuardPolicy, clock: Arc<dyn Clock>) -> Self {
        let routine_names = inner.routine_names();
        ResilientObjective {
            inner,
            policy,
            clock,
            routine_names,
            attempts: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
        }
    }

    /// Wrap with the default policy and the system clock.
    pub fn with_defaults(inner: &'a O) -> Self {
        Self::new(inner, GuardPolicy::default(), Arc::new(SystemClock::new()))
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &O {
        self.inner
    }

    /// Total evaluation attempts (including retries).
    pub fn attempts(&self) -> usize {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Attempts that failed (including retried-then-recovered ones).
    pub fn failed_attempts(&self) -> usize {
        self.failures.load(Ordering::Relaxed)
    }

    /// Retries performed.
    pub fn retries(&self) -> usize {
        self.retries.load(Ordering::Relaxed)
    }

    /// One protected attempt: catch panics, watchdog, screen non-finite.
    fn attempt(&self, cfg: &Config) -> EvalOutcome {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let t0 = self.clock.now();
        let result = catch_unwind(AssertUnwindSafe(|| self.inner.evaluate(cfg)));
        let observed = self.clock.now().saturating_sub(t0);
        let outcome = match result {
            Err(payload) => EvalOutcome::Failed(EvalError::Crashed(panic_message(&*payload))),
            Ok(obs) => {
                if let Some(limit) = self.policy.watchdog {
                    if observed > limit {
                        return self
                            .record(EvalOutcome::Failed(EvalError::Timeout { limit, observed }));
                    }
                }
                EvalOutcome::screened(obs, &self.routine_names)
            }
        };
        self.record(outcome)
    }

    fn record(&self, outcome: EvalOutcome) -> EvalOutcome {
        if !outcome.is_ok() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Evaluate `cfg` with full protection and retries. `eval_idx` keys the
    /// deterministic backoff jitter (pass the evaluation's ordinal in the
    /// search; any stable value works).
    pub fn evaluate_outcome(&self, cfg: &Config, eval_idx: usize) -> EvalOutcome {
        if self.policy.validate_configs {
            if let Err(e) = self.inner.space().check_valid(cfg) {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return EvalOutcome::Failed(EvalError::InvalidConfig(e.to_string()));
            }
        }
        let mut outcome = self.attempt(cfg);
        let mut retry = 0;
        while let EvalOutcome::Failed(err) = &outcome {
            if !err.is_transient() || retry >= self.policy.retry.max_retries {
                break;
            }
            retry += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.clock.sleep(self.policy.retry.backoff(eval_idx, retry));
            outcome = self.attempt(cfg);
        }
        outcome
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// End-to-end resilience settings for a methodology run: per-evaluation
/// protection ([`GuardPolicy`]), failure-aware BO accounting
/// ([`crate::FailurePolicy`]), and the clock everything times against.
///
/// `None` in [`crate::MethodologyConfig::resilience`] keeps the legacy
/// fail-fast behaviour; `Some(..)` switches
/// [`crate::Methodology::execute`] to the fault-tolerant executor with
/// per-search isolation and a failure ledger.
#[derive(Clone)]
pub struct ResilienceConfig {
    /// Per-evaluation protection (panic containment, watchdog, retries).
    pub guard: GuardPolicy,
    /// Failure-aware BO policy (imputation, budget accounting).
    pub failure: crate::bo::FailurePolicy,
    /// Time source for the watchdog and retry backoff. Tests pass a shared
    /// [`VirtualClock`]; production uses the default [`SystemClock`].
    pub clock: Arc<dyn Clock>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            guard: GuardPolicy::default(),
            failure: crate::bo::FailurePolicy::default(),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

impl std::fmt::Debug for ResilienceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilienceConfig")
            .field("guard", &self.guard)
            .field("failure", &self.failure)
            .field("clock", &"<dyn Clock>")
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What an injected fault does to the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `evaluate` (application crash).
    Panic,
    /// Stall past any reasonable watchdog (virtual-clock sleep), then
    /// return the real observation — the watchdog must discard it.
    Stall,
    /// Return NaN for the total and every routine (garbage timing).
    NonFinite,
}

/// A deterministic plan of injected faults for chaos testing.
///
/// All decisions are pure functions of the plan, the evaluation counter and
/// the configuration, so a test re-running the same searches sees the same
/// faults. The flaky and region rules key on the *configuration* (via a
/// seeded hash of its unit encoding), which makes them independent of
/// evaluation order — safe even under parallel stages; the `every_kth` rule
/// keys on the shared counter and is deterministic under sequential
/// execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Fail every k-th evaluation (counter-based, 1-indexed).
    pub every_kth: Option<(usize, FaultKind)>,
    /// Fail every evaluation whose unit-encoded configuration lies inside
    /// this axis-aligned sub-box (`(lo, hi)` per dimension, in space order).
    pub region: Option<(Vec<(f64, f64)>, FaultKind)>,
    /// Seeded flaky failure probability per evaluation, keyed on the
    /// configuration so the decision is order-independent.
    pub flaky_rate: f64,
    /// Seed for the flaky decision stream.
    pub seed: u64,
    /// Latency injected into every evaluation (advances the shared clock).
    pub latency: Duration,
    /// How long a [`FaultKind::Stall`] fault stalls.
    pub stall: Duration,
}

impl FaultPlan {
    /// A plan injecting only seeded flaky failures at `rate`, cycling the
    /// fault kind through panic → NaN → stall per decision hash.
    pub fn flaky(rate: f64, seed: u64) -> Self {
        FaultPlan {
            flaky_rate: rate,
            seed,
            stall: Duration::from_secs(3600),
            ..Default::default()
        }
    }

    /// The fault (if any) to inject for evaluation number `n` (1-indexed)
    /// of the unit-encoded configuration `u`.
    pub fn fault_for(&self, n: usize, u: &[f64]) -> Option<FaultKind> {
        if let Some((k, kind)) = self.every_kth {
            if k > 0 && n.is_multiple_of(k) {
                return Some(kind);
            }
        }
        if let Some((ref bx, kind)) = self.region {
            let inside = bx.len() == u.len()
                && bx
                    .iter()
                    .zip(u)
                    .all(|(&(lo, hi), &v)| (lo..=hi).contains(&v));
            if inside {
                return Some(kind);
            }
        }
        if self.flaky_rate > 0.0 {
            let mut h = splitmix64(self.seed ^ 0xc3a5_c85c_97cb_3127);
            for &v in u {
                h = splitmix64(h ^ v.to_bits());
            }
            if hash_unit(h) < self.flaky_rate {
                // Cycle the kind from an independent bit range of the hash
                // so a 20% rate mixes crashes, garbage and stalls.
                return Some(match splitmix64(h) % 3 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::NonFinite,
                    _ => FaultKind::Stall,
                });
            }
        }
        None
    }
}

/// An [`Objective`] wrapper that injects the faults a [`FaultPlan`]
/// prescribes — the chaos-testing harness.
pub struct FaultyObjective<'a, O: Objective + ?Sized> {
    inner: &'a O,
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    count: AtomicUsize,
    injected: AtomicUsize,
}

impl<'a, O: Objective + ?Sized> FaultyObjective<'a, O> {
    /// Wrap `inner`, injecting per `plan` and stalling/lagging on `clock`.
    pub fn new(inner: &'a O, plan: FaultPlan, clock: Arc<dyn Clock>) -> Self {
        FaultyObjective {
            inner,
            plan,
            clock,
            count: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// Evaluations attempted so far.
    pub fn evaluations(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<'a, O: Objective + ?Sized> Objective for FaultyObjective<'a, O> {
    fn space(&self) -> &cets_space::SearchSpace {
        self.inner.space()
    }

    fn routine_names(&self) -> Vec<String> {
        self.inner.routine_names()
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.plan.latency.is_zero() {
            self.clock.sleep(self.plan.latency);
        }
        let u = self.space().encode(cfg).unwrap_or_default();
        match self.plan.fault_for(n, &u) {
            Some(FaultKind::Panic) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // panic_any rather than panic!: this is the one deliberate
                // crash in the library (the fault injector's job), and the
                // source-hygiene lint rightly flags the macro form.
                std::panic::panic_any(format!("injected fault: crash at evaluation {n}"));
            }
            Some(FaultKind::NonFinite) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let routines = vec![f64::NAN; self.inner.routine_names().len()];
                Observation {
                    total: f64::NAN,
                    routines,
                }
            }
            Some(FaultKind::Stall) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.clock.sleep(self.plan.stall);
                self.inner.evaluate(cfg)
            }
            None => self.inner.evaluate(cfg),
        }
    }

    fn default_config(&self) -> Config {
        self.inner.default_config()
    }

    fn sample_valid(&self, rng: &mut dyn rand::Rng) -> Option<Config> {
        self.inner.sample_valid(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_objectives::SplitSphere;

    /// Objective that panics when x0 > threshold, for containment tests.
    struct Panicky {
        base: SplitSphere,
        threshold: f64,
    }

    impl Panicky {
        fn new(threshold: f64) -> Self {
            Panicky {
                base: SplitSphere::new(),
                threshold,
            }
        }
    }

    impl Objective for Panicky {
        fn space(&self) -> &cets_space::SearchSpace {
            self.base.space()
        }
        fn routine_names(&self) -> Vec<String> {
            self.base.routine_names()
        }
        fn evaluate(&self, cfg: &Config) -> Observation {
            if cfg[0].as_f64() > self.threshold {
                panic!("boom at x0 = {}", cfg[0].as_f64());
            }
            self.base.evaluate(cfg)
        }
        fn default_config(&self) -> Config {
            self.base.default_config()
        }
    }

    fn quiet_panics() {
        // Silence the default hook's backtrace spam for intentional panics.
        std::panic::set_hook(Box::new(|_| {}));
    }

    #[test]
    fn virtual_clock_advances_on_sleep() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.sleep(Duration::from_secs(3));
        c.advance(Duration::from_secs(2));
        assert_eq!(c.now(), Duration::from_secs(5));
    }

    #[test]
    fn panic_is_caught_and_classified() {
        quiet_panics();
        let obj = Panicky::new(0.0);
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let policy = GuardPolicy {
            retry: RetryPolicy {
                max_retries: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = ResilientObjective::new(&obj, policy, clock);
        let cfg = obj.default_config(); // x0 = 1 > 0 → panic
        match res.evaluate_outcome(&cfg, 0) {
            EvalOutcome::Failed(EvalError::Crashed(m)) => assert!(m.contains("boom"), "{m}"),
            other => panic!("expected Crashed, got {other:?}"),
        }
        assert_eq!(res.failed_attempts(), 1);
    }

    #[test]
    fn non_finite_output_is_screened() {
        let obj = SplitSphere::new();
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            every_kth: Some((1, FaultKind::NonFinite)),
            ..Default::default()
        };
        let faulty = FaultyObjective::new(&obj, plan, Arc::clone(&clock));
        let res = ResilientObjective::new(&faulty, GuardPolicy::default(), clock);
        let out = res.evaluate_outcome(&obj.default_config(), 0);
        assert!(
            matches!(out, EvalOutcome::Failed(EvalError::NonFinite { .. })),
            "{out:?}"
        );
    }

    #[test]
    fn watchdog_discards_stalled_evaluations() {
        let obj = SplitSphere::new();
        let clock = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            every_kth: Some((1, FaultKind::Stall)),
            stall: Duration::from_secs(600),
            ..Default::default()
        };
        let faulty = FaultyObjective::new(&obj, plan, clock.clone());
        let policy = GuardPolicy {
            watchdog: Some(Duration::from_secs(60)),
            retry: RetryPolicy {
                max_retries: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = ResilientObjective::new(&faulty, policy, clock);
        match res.evaluate_outcome(&obj.default_config(), 0) {
            EvalOutcome::Failed(EvalError::Timeout { limit, observed }) => {
                assert_eq!(limit, Duration::from_secs(60));
                assert!(observed >= Duration::from_secs(600));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn transient_failures_are_retried_with_backoff() {
        quiet_panics();
        // Fails on evaluations 1 and 2 (every_kth = 1 would always fail);
        // use a stateful objective failing the first two calls.
        struct FlakyTwice {
            base: SplitSphere,
            calls: AtomicUsize,
        }
        impl Objective for FlakyTwice {
            fn space(&self) -> &cets_space::SearchSpace {
                self.base.space()
            }
            fn routine_names(&self) -> Vec<String> {
                self.base.routine_names()
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                if self.calls.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                self.base.evaluate(cfg)
            }
            fn default_config(&self) -> Config {
                self.base.default_config()
            }
        }
        let obj = FlakyTwice {
            base: SplitSphere::new(),
            calls: AtomicUsize::new(0),
        };
        let clock = Arc::new(VirtualClock::new());
        let policy = GuardPolicy {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_secs(5),
                seed: 7,
            },
            ..Default::default()
        };
        let res = ResilientObjective::new(&obj, policy.clone(), clock.clone());
        let out = res.evaluate_outcome(&obj.default_config(), 3);
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(res.retries(), 2);
        assert_eq!(res.failed_attempts(), 2);
        // The virtual clock advanced by exactly the two deterministic
        // backoffs.
        let expected = policy.retry.backoff(3, 1) + policy.retry.backoff(3, 2);
        assert_eq!(clock.now(), expected);
    }

    #[test]
    fn non_transient_failures_are_not_retried() {
        let obj = SplitSphere::new();
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            every_kth: Some((1, FaultKind::NonFinite)),
            ..Default::default()
        };
        let faulty = FaultyObjective::new(&obj, plan, Arc::clone(&clock));
        let res = ResilientObjective::new(&faulty, GuardPolicy::default(), clock);
        let out = res.evaluate_outcome(&obj.default_config(), 0);
        assert!(!out.is_ok());
        assert_eq!(res.retries(), 0, "NonFinite must not be retried");
        assert_eq!(faulty.evaluations(), 1);
    }

    #[test]
    fn backoff_is_seeded_capped_and_exponential() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            seed: 42,
        };
        // Deterministic: same inputs, same backoff.
        assert_eq!(p.backoff(5, 1), p.backoff(5, 1));
        // Jitter keyed on eval_idx: different evals decorrelate.
        assert_ne!(p.backoff(5, 1), p.backoff(6, 1));
        // Exponential-ish growth then cap (+50% max jitter).
        let b1 = p.backoff(0, 1);
        let b3 = p.backoff(0, 3);
        assert!(b1 >= Duration::from_millis(100) && b1 < Duration::from_millis(151));
        assert!(b3 >= Duration::from_millis(400) && b3 <= Duration::from_millis(600));
    }

    #[test]
    fn fault_plan_every_kth_and_region() {
        let plan = FaultPlan {
            every_kth: Some((3, FaultKind::Panic)),
            region: Some((vec![(0.0, 0.2), (0.0, 1.0)], FaultKind::NonFinite)),
            ..Default::default()
        };
        assert_eq!(plan.fault_for(3, &[0.9, 0.5]), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(4, &[0.9, 0.5]), None);
        assert_eq!(
            plan.fault_for(4, &[0.1, 0.5]),
            Some(FaultKind::NonFinite),
            "inside the sub-box"
        );
    }

    #[test]
    fn flaky_rate_is_order_independent_and_calibrated() {
        let plan = FaultPlan::flaky(0.25, 99);
        // Same configuration → same decision, independent of counter.
        let u = vec![0.3, 0.7];
        assert_eq!(plan.fault_for(1, &u), plan.fault_for(1000, &u));
        // Roughly a quarter of distinct configurations fail.
        let mut failed = 0;
        let n = 2000;
        for i in 0..n {
            let u = vec![i as f64 / n as f64, 1.0 - i as f64 / n as f64];
            if plan.fault_for(1, &u).is_some() {
                failed += 1;
            }
        }
        let rate = failed as f64 / n as f64;
        assert!((0.18..0.32).contains(&rate), "injected rate {rate}");
    }

    #[test]
    fn injected_latency_advances_the_shared_clock() {
        let obj = SplitSphere::new();
        let clock = Arc::new(VirtualClock::new());
        let plan = FaultPlan {
            latency: Duration::from_secs(2),
            ..Default::default()
        };
        let faulty = FaultyObjective::new(&obj, plan, clock.clone());
        faulty.evaluate(&obj.default_config());
        faulty.evaluate(&obj.default_config());
        assert_eq!(clock.now(), Duration::from_secs(4));
        assert_eq!(faulty.evaluations(), 2);
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn invalid_config_rejected_before_evaluation() {
        use cets_space::{Constraint, SearchSpace};
        struct Guarded(SearchSpace);
        impl Objective for Guarded {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                Observation::scalar(cfg[0].as_f64())
            }
            fn default_config(&self) -> Config {
                self.0.config_from_pairs(&[("a", 1.0)]).unwrap()
            }
        }
        let obj = Guarded(
            SearchSpace::builder()
                .real("a", 0.0, 10.0)
                .constraint(Constraint::new("cap", "a <= 5", |s, c| {
                    s.get_f64(c, "a").unwrap_or(f64::NAN) <= 5.0
                }))
                .build(),
        );
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let policy = GuardPolicy {
            validate_configs: true,
            ..Default::default()
        };
        let res = ResilientObjective::new(&obj, policy, clock);
        let bad = obj.0.config_from_pairs(&[("a", 9.0)]).unwrap();
        assert!(matches!(
            res.evaluate_outcome(&bad, 0),
            EvalOutcome::Failed(EvalError::InvalidConfig(_))
        ));
    }
}
