//! Transfer learning between related tuning tasks.
//!
//! The paper seeds Case Study 2's search with Case Study 1's configuration
//! database ("to benefit from Case Study 1's configuration database and
//! increase the accuracy of the optimization search exploring space regions
//! that led to good minima in Case Study 1"). CETS implements the same
//! idea: the top-k configurations of a completed search are re-evaluated on
//! the *new* task as its initial design, replacing the cold Latin-hypercube
//! start. Re-evaluating (instead of importing prior objective values) keeps
//! the GP's data honest when the two tasks' runtime scales differ — e.g.
//! different FFT sizes between the paper's material systems.

use crate::bo::SearchOutcome;
use crate::Result;
use cets_gp::{Gp, GpConfig};
use cets_space::{Config, Subspace};

/// A pool of prior-task evaluations usable to warm-start a new search.
#[derive(Debug, Clone, Default)]
pub struct TransferSeed {
    /// `(full-space config, prior objective value)`, any order.
    pub points: Vec<(Config, f64)>,
}

impl TransferSeed {
    /// Collect a seed pool from a finished search on the prior task.
    pub fn from_outcome(subspace: &Subspace, outcome: &SearchOutcome) -> Result<Self> {
        let mut points = Vec::with_capacity(outcome.history.len());
        for (u, y) in &outcome.history {
            points.push((subspace.lift(u)?, *y));
        }
        Ok(TransferSeed { points })
    }

    /// Merge another pool (e.g. several prior searches).
    pub fn extend(&mut self, other: TransferSeed) {
        self.points.extend(other.points);
    }

    /// The `k` best prior configurations (by prior value, ascending).
    pub fn top_k(&self, k: usize) -> Vec<Config> {
        let mut sorted: Vec<&(Config, f64)> = self.points.iter().collect();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        sorted.into_iter().take(k).map(|(c, _)| c.clone()).collect()
    }

    /// Fit a Gaussian process to the prior task's data, projected into
    /// `new_subspace`'s unit cube — usable as the **prior mean** of a
    /// difference-GP search on the new task
    /// ([`crate::BoSearch::run_with_prior`]). Points that don't project
    /// (domain drift between tasks) are skipped; fitting needs at least
    /// two surviving points.
    pub fn prior_gp(&self, new_subspace: &Subspace, cfg: &GpConfig) -> Result<Gp> {
        let mut xs = Vec::with_capacity(self.points.len());
        let mut ys = Vec::with_capacity(self.points.len());
        for (config, y) in &self.points {
            if let Ok(u) = new_subspace.project(config) {
                xs.push(u);
                ys.push(*y);
            }
        }
        Ok(Gp::train(&xs, &ys, cfg)?)
    }

    /// Re-evaluate the top-`k` prior configurations on the **new** task,
    /// producing a history ready for
    /// [`crate::BoSearch::run_with_history`]. Configurations that don't
    /// project into the new subspace (domain changes between tasks) are
    /// skipped.
    pub fn seed_history(
        &self,
        new_subspace: &Subspace,
        f: impl Fn(&Config) -> f64,
        k: usize,
    ) -> Vec<(Vec<f64>, f64)> {
        let mut out = Vec::with_capacity(k);
        for cfg in self.top_k(k) {
            let Ok(u) = new_subspace.project(&cfg) else {
                continue;
            };
            // Re-lift so frozen defaults of the new task apply, then check
            // validity under the new task's constraints.
            let Ok(lifted) = new_subspace.lift(&u) else {
                continue;
            };
            if !new_subspace.space().is_valid(&lifted) {
                continue;
            }
            let y = f(&lifted);
            out.push((u, y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bo::{BoConfig, BoSearch};
    use crate::objective::test_objectives::SplitSphere;
    use crate::objective::Objective;

    fn quick(seed: u64, max_evals: usize) -> BoConfig {
        BoConfig {
            n_init: 5,
            max_evals,
            n_candidates: 48,
            n_local: 8,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn top_k_orders_by_value() {
        let obj = SplitSphere::new();
        let d = obj.default_config();
        let seed = TransferSeed {
            points: vec![(d.clone(), 3.0), (d.clone(), 1.0), (d.clone(), 2.0)],
        };
        let top = seed.top_k(2);
        assert_eq!(top.len(), 2);
        // Values 1.0 and 2.0 picked; we can't see values, but length and
        // determinism are the contract here.
        assert_eq!(seed.top_k(10).len(), 3);
    }

    #[test]
    fn warm_start_transfers_good_regions() {
        // Prior task: sphere. New task: shifted sphere (minimum at 0.5).
        // Seeding with prior optimum regions should give the warm search a
        // better start than a cold one at equal budget.
        let obj = SplitSphere::new();
        let sub = Subspace::full(obj.space(), obj.default_config()).unwrap();

        let prior = BoSearch::new(quick(1, 40))
            .run(&sub, |c| obj.evaluate(c).total)
            .unwrap();
        let seed = TransferSeed::from_outcome(&sub, &prior).unwrap();
        assert_eq!(seed.points.len(), 40);

        // New task is the same function here (the strongest transfer case).
        let new_f = |c: &Config| obj.evaluate(c).total;
        let history = seed.seed_history(&sub, new_f, 5);
        assert_eq!(history.len(), 5);
        let warm_first = history
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);

        // Cold initial design of the same size, same seed machinery.
        let cold = BoSearch::new(quick(2, 5))
            .run(&sub, new_f)
            .unwrap()
            .best_value;
        assert!(
            warm_first <= cold,
            "warm start {warm_first} worse than cold {cold}"
        );

        // And a full warm search is at least as good as the prior best.
        let warm = BoSearch::new(quick(2, 20))
            .run_with_history(&sub, new_f, history)
            .unwrap();
        assert!(warm.best_value <= prior.best_value + 1e-12);
    }

    #[test]
    fn invalid_prior_configs_skipped() {
        // New subspace freezes x0; prior configs still project fine (their
        // x0 is ignored), so all seeds survive — this asserts projection
        // tolerance rather than rejection.
        let obj = SplitSphere::new();
        let full = Subspace::full(obj.space(), obj.default_config()).unwrap();
        let prior = BoSearch::new(quick(4, 10))
            .run(&full, |c| obj.evaluate(c).total)
            .unwrap();
        let seed = TransferSeed::from_outcome(&full, &prior).unwrap();
        let narrow = Subspace::new(obj.space(), &["x2"], obj.default_config()).unwrap();
        let hist = seed.seed_history(&narrow, |c| obj.evaluate(c).total, 3);
        assert_eq!(hist.len(), 3);
        for (u, _) in &hist {
            assert_eq!(u.len(), 1);
        }
    }

    #[test]
    fn prior_gp_transfer_beats_cold_on_shifted_task() {
        use crate::objective::Observation;
        use cets_space::SearchSpace;

        // Prior task: 1-D quartic valley at x = 2. New task: same valley
        // shifted slightly to x = 2.4 — a classic "related task".
        struct Valley {
            space: SearchSpace,
            center: f64,
        }
        impl Objective for Valley {
            fn space(&self) -> &SearchSpace {
                &self.space
            }
            fn routine_names(&self) -> Vec<String> {
                vec!["r".into()]
            }
            fn evaluate(&self, cfg: &Config) -> Observation {
                let x = cfg[0].as_f64();
                Observation::scalar((x - self.center).powi(2) + 0.05 * (8.0 * x).sin())
            }
            fn default_config(&self) -> Config {
                self.space.decode(&[0.1]).unwrap()
            }
        }
        let mk = |center: f64| Valley {
            space: SearchSpace::builder().real("x", -5.0, 5.0).build(),
            center,
        };
        let prior_task = mk(2.0);
        let new_task = mk(2.4);
        let sub = Subspace::full(prior_task.space(), prior_task.default_config()).unwrap();

        // Collect prior data.
        let prior_run = BoSearch::new(quick(10, 30))
            .run(&sub, |c| prior_task.evaluate(c).total)
            .unwrap();
        let pool = TransferSeed::from_outcome(&sub, &prior_run).unwrap();
        let prior_gp = pool.prior_gp(&sub, &cets_gp::GpConfig::default()).unwrap();

        // Short searches on the new task: difference-GP vs cold.
        let f_new = |c: &Config| new_task.evaluate(c).total;
        let prior_mean = |u: &[f64]| prior_gp.predict_mean(u);
        let warm = BoSearch::new(quick(11, 12))
            .run_with_prior(&sub, f_new, Vec::new(), &prior_mean)
            .unwrap();
        let cold = BoSearch::new(quick(11, 12)).run(&sub, f_new).unwrap();
        // The informed search should be at least as good (allow a tiny
        // slack for acquisition randomness).
        assert!(
            warm.best_value <= cold.best_value + 0.05,
            "prior-mean search {} much worse than cold {}",
            warm.best_value,
            cold.best_value
        );
        // And it should land near the true optimum.
        let x_best = warm.best_config[0].as_f64();
        assert!((x_best - 2.4).abs() < 0.5, "x* = {x_best}");
    }

    #[test]
    fn extend_merges_pools() {
        let obj = SplitSphere::new();
        let d = obj.default_config();
        let mut a = TransferSeed {
            points: vec![(d.clone(), 1.0)],
        };
        a.extend(TransferSeed {
            points: vec![(d, 2.0)],
        });
        assert_eq!(a.points.len(), 2);
    }
}
