//! Descriptive statistics and modelling-sample-size guidelines.

use crate::{Result, StatsError};
use cets_linalg::vecops;

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty sample. NaNs are rejected.
    pub fn new(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if xs.iter().any(|v| v.is_nan()) {
            return Err(StatsError::Degenerate("NaN in sample".into()));
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary {
            n: xs.len(),
            mean: vecops::mean(xs),
            std_dev: vecops::std_dev(xs),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Dynamic range `max / min` (∞ when min is 0) — the paper observes
    /// runtime variability "of up to one order of magnitude" across sampled
    /// configurations, i.e. a range of ~10.
    pub fn dynamic_range(&self) -> f64 {
        if self.min == 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }
}

/// Linear-interpolation quantile of an already-sorted sample, `q ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The **one-in-ten rule** (Harrell): a regression-style model over `dims`
/// predictors needs at least `10 × dims` observations to be trustworthy.
/// The paper applies this before interpreting feature importance and also
/// derives its BO evaluation budget (`10 × num_parameters`) from it.
pub fn one_in_ten_ok(observations: usize, dims: usize) -> bool {
    observations >= 10 * dims
}

/// Evaluation budget the paper uses for each BO search: `10 × dims`.
pub fn bo_budget(dims: usize) -> usize {
    10 * dims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::new(&xs).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!(s.q1 <= s.median && s.median <= s.q3);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(matches!(
            Summary::new(&[]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(matches!(
            Summary::new(&[1.0, f64::NAN]),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        // Clamped out-of-range q.
        assert_eq!(quantile_sorted(&sorted, 2.0), 10.0);
    }

    #[test]
    fn dynamic_range() {
        let s = Summary::new(&[1.0, 10.0]).unwrap();
        assert!((s.dynamic_range() - 10.0).abs() < 1e-12);
        let z = Summary::new(&[0.0, 1.0]).unwrap();
        assert!(z.dynamic_range().is_infinite());
    }

    #[test]
    fn one_in_ten() {
        assert!(one_in_ten_ok(100, 10));
        assert!(!one_in_ten_ok(99, 10));
        assert!(one_in_ten_ok(0, 0));
        assert_eq!(bo_budget(20), 200);
    }

    #[test]
    fn single_element_summary() {
        let s = Summary::new(&[3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.iqr(), 0.0);
    }
}
