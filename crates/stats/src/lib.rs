//! # cets-stats
//!
//! The statistical toolkit behind the CETS methodology's "insights" phase
//! (paper Section IV-B) and its cheap interdependence analysis (Section
//! IV-C):
//!
//! * [`sensitivity`] — runtime **sensitivity analysis**: the mean relative
//!   variability each parameter induces in each routine's output when varied
//!   individually around a baseline. This is the paper's central
//!   cost-reduction: `D × V` observations instead of the combinatorial
//!   sample an orthogonality analysis needs;
//! * [`pearson()`] — Pearson correlation (pairwise and matrix), which the
//!   paper uses to spot the `tb`/`tb_sm` coupling (~0.6) induced by the
//!   occupancy constraint;
//! * [`forest`] — a from-scratch **random-forest regressor** with impurity
//!   and permutation **feature importance** (the paper's Random-Forest
//!   feature-importance step);
//! * [`describe`] — descriptive statistics and the **one-in-ten rule**
//!   sample-size guideline the paper cites for regression modelling.
//!
//! Everything is deterministic under a caller-provided seed and operates on
//! plain `f64` slices; driving an actual application (choosing variations,
//! evaluating configurations) lives in `cets-core`.

pub mod describe;
pub mod forest;
pub mod pearson;
pub mod sensitivity;

pub use describe::{one_in_ten_ok, Summary};
pub use forest::{MaxFeatures, RandomForest, RandomForestConfig};
pub use pearson::{partial_correlation_matrix, pearson, pearson_matrix, spearman};
pub use sensitivity::{SensitivityScores, VariabilityTable};

/// Errors from the statistics layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Input slices had inconsistent or empty shapes.
    BadShape(String),
    /// Not enough samples for the requested statistic.
    NotEnoughData { needed: usize, got: usize },
    /// A numeric degenerate case (zero variance, zero baseline...).
    Degenerate(String),
    /// A parallel worker died (panic in a scoped thread).
    Worker(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::BadShape(m) => write!(f, "bad shape: {m}"),
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::Degenerate(m) => write!(f, "degenerate input: {m}"),
            StatsError::Worker(m) => write!(f, "worker failure: {m}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
