//! Sensitivity analysis: mean relative variability per (parameter, routine).
//!
//! Paper Section IV-B: *"we establish one configuration as a baseline, and
//! then test V different variations individually on each parameter,
//! calculating the average runtime variability per parameter as
//! `1/V × Σ |(time_baseline − time_i) / time_baseline|`"*. Section IV-C
//! reuses the same statistic per routine to infer interdependence — that
//! reuse is the paper's key cost saving over a full orthogonality analysis.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Variability scores: `scores[p][r]` = mean relative variability of routine
/// `r`'s output under individual variations of parameter `p`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityScores {
    param_names: Vec<String>,
    routine_names: Vec<String>,
    scores: Vec<Vec<f64>>,
    /// Number of variations evaluated per parameter (the paper's `V`).
    variations: usize,
}

impl SensitivityScores {
    /// Compute scores from raw observations.
    ///
    /// * `baseline[r]` — routine `r`'s output at the baseline configuration;
    /// * `varied[p][v][r]` — routine `r`'s output with parameter `p` at its
    ///   `v`-th variation and everything else at baseline.
    ///
    /// Total observation cost is `1 + D × V` evaluations — the quantity the
    /// methodology minimizes (compare `O(2^D)`-ish full orthogonality
    /// designs). Zero baselines make relative variability undefined and are
    /// rejected.
    pub fn from_observations(
        param_names: &[String],
        routine_names: &[String],
        baseline: &[f64],
        varied: &[Vec<Vec<f64>>],
    ) -> Result<Self> {
        let (np, nr) = (param_names.len(), routine_names.len());
        if baseline.len() != nr {
            return Err(StatsError::BadShape(format!(
                "baseline has {} routines, expected {nr}",
                baseline.len()
            )));
        }
        if varied.len() != np {
            return Err(StatsError::BadShape(format!(
                "varied has {} params, expected {np}",
                varied.len()
            )));
        }
        if baseline.iter().any(|&b| b == 0.0 || !b.is_finite()) {
            return Err(StatsError::Degenerate(
                "baseline output is zero or non-finite".into(),
            ));
        }
        let v_count = varied.first().map_or(0, |v| v.len());
        if v_count == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let mut scores = vec![vec![0.0; nr]; np];
        for (p, rows) in varied.iter().enumerate() {
            if rows.len() != v_count {
                return Err(StatsError::BadShape(format!(
                    "param {p} has {} variations, expected {v_count}",
                    rows.len()
                )));
            }
            for row in rows {
                if row.len() != nr {
                    return Err(StatsError::BadShape(format!(
                        "variation row has {} routines, expected {nr}",
                        row.len()
                    )));
                }
                for (r, &out) in row.iter().enumerate() {
                    scores[p][r] += ((baseline[r] - out) / baseline[r]).abs();
                }
            }
            for s in &mut scores[p] {
                *s /= v_count as f64;
            }
        }
        Ok(SensitivityScores {
            param_names: param_names.to_vec(),
            routine_names: routine_names.to_vec(),
            scores,
            variations: v_count,
        })
    }

    /// Parameter names in order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Routine names in order.
    pub fn routine_names(&self) -> &[String] {
        &self.routine_names
    }

    /// The paper's `V`.
    pub fn variations(&self) -> usize {
        self.variations
    }

    /// Score of parameter `p` on routine `r` (indices).
    pub fn score(&self, p: usize, r: usize) -> f64 {
        self.scores[p][r]
    }

    /// Score row of a parameter across all routines.
    pub fn row(&self, p: usize) -> &[f64] {
        &self.scores[p]
    }

    /// Score by names.
    pub fn score_by_name(&self, param: &str, routine: &str) -> Option<f64> {
        let p = self.param_names.iter().position(|n| n == param)?;
        let r = self.routine_names.iter().position(|n| n == routine)?;
        Some(self.scores[p][r])
    }

    /// Top-`k` most sensitive parameters for routine `r`, descending — the
    /// layout of the paper's Tables II, V and VI.
    pub fn top_k(&self, routine: &str, k: usize) -> Option<VariabilityTable> {
        let r = self.routine_names.iter().position(|n| n == routine)?;
        let mut rows: Vec<(String, f64)> = self
            .param_names
            .iter()
            .cloned()
            .zip(self.scores.iter().map(|row| row[r]))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        rows.truncate(k);
        Some(VariabilityTable {
            routine: routine.to_string(),
            rows,
        })
    }

    /// Total number of application evaluations this analysis consumed
    /// (`1 + D × V`), for cost accounting against alternatives.
    pub fn observation_cost(&self) -> usize {
        1 + self.param_names.len() * self.variations
    }
}

/// Ranked variability rows for one routine, printable as a paper-style
/// table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityTable {
    /// Which routine this table describes.
    pub routine: String,
    /// `(parameter, variability)` sorted descending.
    pub rows: Vec<(String, f64)>,
}

impl std::fmt::Display for VariabilityTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:>12}",
            format!("[{}]", self.routine),
            "Variability"
        )?;
        for (name, v) in &self.rows {
            writeln!(f, "{:<14} {:>11.2}%", name, v * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn hand_computed_scores() {
        // One param, one routine, baseline 10, variations give 12 and 6:
        // mean(|10-12|/10, |10-6|/10) = mean(0.2, 0.4) = 0.3.
        let s = SensitivityScores::from_observations(
            &names("p", 1),
            &names("r", 1),
            &[10.0],
            &[vec![vec![12.0], vec![6.0]]],
        )
        .unwrap();
        assert!((s.score(0, 0) - 0.3).abs() < 1e-12);
        assert_eq!(s.variations(), 2);
        assert_eq!(s.observation_cost(), 3);
    }

    #[test]
    fn multi_routine_scores_are_independent() {
        // Param influences routine 0 strongly, routine 1 not at all.
        let s = SensitivityScores::from_observations(
            &names("p", 1),
            &names("r", 2),
            &[10.0, 5.0],
            &[vec![vec![20.0, 5.0], vec![5.0, 5.0]]],
        )
        .unwrap();
        assert!((s.score(0, 0) - 0.75).abs() < 1e-12);
        assert_eq!(s.score(0, 1), 0.0);
    }

    #[test]
    fn top_k_sorts_descending() {
        let s = SensitivityScores::from_observations(
            &names("p", 3),
            &names("r", 1),
            &[1.0],
            &[
                vec![vec![1.1]], // 10%
                vec![vec![2.0]], // 100%
                vec![vec![1.5]], // 50%
            ],
        )
        .unwrap();
        let t = s.top_k("r0", 2).unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].0, "p1");
        assert!((t.rows[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(t.rows[1].0, "p2");
        // Display renders percentages.
        let txt = t.to_string();
        assert!(txt.contains("100.00%"), "{txt}");
    }

    #[test]
    fn zero_baseline_rejected() {
        let r = SensitivityScores::from_observations(
            &names("p", 1),
            &names("r", 1),
            &[0.0],
            &[vec![vec![1.0]]],
        );
        assert!(matches!(r, Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn shape_errors() {
        // Wrong routine count in baseline.
        assert!(SensitivityScores::from_observations(
            &names("p", 1),
            &names("r", 2),
            &[1.0],
            &[vec![vec![1.0, 1.0]]],
        )
        .is_err());
        // Ragged variation rows.
        assert!(SensitivityScores::from_observations(
            &names("p", 2),
            &names("r", 1),
            &[1.0],
            &[vec![vec![1.0]], vec![vec![1.0], vec![2.0]]],
        )
        .is_err());
        // Empty variations.
        assert!(matches!(
            SensitivityScores::from_observations(&names("p", 1), &names("r", 1), &[1.0], &[vec![]]),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn score_by_name() {
        let s = SensitivityScores::from_observations(
            &["nbatches".to_string()],
            &["G1".to_string()],
            &[2.0],
            &[vec![vec![4.0]]],
        )
        .unwrap();
        assert_eq!(s.score_by_name("nbatches", "G1"), Some(1.0));
        assert_eq!(s.score_by_name("nope", "G1"), None);
    }
}
