//! Random-forest regression with feature importance, from scratch.
//!
//! The paper's insights phase runs "a feature importance analysis,
//! leveraging Random Forest trees" over sampled (configuration, runtime)
//! data. This module provides that tool: CART regression trees grown on
//! bootstrap resamples with per-split feature subsampling, plus the two
//! standard importance estimators —
//!
//! * **impurity importance** (mean decrease in variance, normalized), and
//! * **OOB permutation importance** (increase in out-of-bag squared error
//!   when one feature column is shuffled), which is robust to cardinality
//!   bias.
//!
//! Trees are trained in parallel with scoped threads (one task per tree —
//! coarse-grained, embarrassingly parallel, the Rayon-style sweet spot).

use crate::{Result, StatsError};
use cets_linalg::vecops;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic bagging).
    All,
    /// `ceil(sqrt(d))` — the usual random-forest default.
    Sqrt,
    /// An explicit count (clamped to `[1, d]`).
    Count(usize),
}

/// Forest hyperparameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split an internal node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Feature subsampling policy per split.
    pub max_features: MaxFeatures,
    /// Draw bootstrap resamples (true) or train every tree on the full set.
    pub bootstrap: bool,
    /// RNG seed; tree `t` uses `seed + t`.
    pub seed: u64,
    /// Number of training threads (1 = sequential).
    pub threads: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 100,
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            seed: 0,
            threads: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
    /// Sum of weighted impurity decreases per feature, for importance.
    impurity_decrease: Vec<f64>,
    /// Out-of-bag sample indices (empty when bootstrap = false).
    oob: Vec<usize>,
}

impl Tree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A trained random-forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<Tree>,
    n_features: usize,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fit a forest on rows `x` (shape `n × d`) and targets `y` (length `n`).
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &RandomForestConfig) -> Result<Self> {
        let n = x.len();
        if n == 0 || y.len() != n {
            return Err(StatsError::BadShape(format!(
                "fit: {n} rows vs {} targets",
                y.len()
            )));
        }
        let d = x[0].len();
        if d == 0 || x.iter().any(|r| r.len() != d) {
            return Err(StatsError::BadShape("fit: ragged or empty rows".into()));
        }
        if cfg.n_trees == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }

        let threads = cfg.threads.max(1).min(cfg.n_trees);
        let mut trees: Vec<Option<Tree>> = vec![None; cfg.n_trees];
        if threads == 1 {
            for (t, slot) in trees.iter_mut().enumerate() {
                *slot = Some(grow_tree(x, y, cfg, t as u64));
            }
        } else {
            // One worker per chunk of trees; each tree is seeded by its
            // global index so threading never changes results.
            let chunk = cfg.n_trees.div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (ci, slot_chunk) in trees.chunks_mut(chunk).enumerate() {
                    let base = ci * chunk;
                    s.spawn(move |_| {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            *slot = Some(grow_tree(x, y, cfg, (base + off) as u64));
                        }
                    });
                }
            })
            .map_err(|_| StatsError::Worker("forest worker panicked".into()))?;
        }
        let trees: Vec<Tree> = trees
            .into_iter()
            .map(|t| t.ok_or_else(|| StatsError::Worker("tree slot left unfilled".into())))
            .collect::<Result<_>>()?;

        // Impurity importances: average over trees, normalize to sum 1.
        let mut importances = vec![0.0; d];
        for t in &trees {
            for (f, v) in t.impurity_decrease.iter().enumerate() {
                importances[f] += v;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        Ok(RandomForest {
            trees,
            n_features: d,
            importances,
        })
    }

    /// Predict one row (mean of tree predictions).
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "predict: wrong feature count");
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict many rows.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Normalized impurity-based feature importances (sum to 1 unless the
    /// target was constant, in which case all are 0).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag R² score. `None` when bootstrap was disabled or no row
    /// ever landed out-of-bag.
    pub fn oob_r2(&self, x: &[Vec<f64>], y: &[f64]) -> Option<f64> {
        let preds = self.oob_predictions(x)?;
        let pairs: Vec<(f64, f64)> = preds
            .iter()
            .zip(y)
            .filter_map(|(p, &t)| p.map(|p| (p, t)))
            .collect();
        if pairs.len() < 2 {
            return None;
        }
        let targets: Vec<f64> = pairs.iter().map(|&(_, t)| t).collect();
        let my = vecops::mean(&targets);
        let ss_res: f64 = pairs.iter().map(|&(p, t)| (t - p) * (t - p)).sum();
        let ss_tot: f64 = targets.iter().map(|&t| (t - my) * (t - my)).sum();
        if ss_tot == 0.0 {
            return None;
        }
        Some(1.0 - ss_res / ss_tot)
    }

    /// OOB permutation importance: for each feature, the mean increase in
    /// out-of-bag squared error after shuffling that feature's column.
    /// Values near zero (or negative) mean the feature carries no signal —
    /// the paper drops such parameters from the search.
    pub fn permutation_importance(&self, x: &[Vec<f64>], y: &[f64], seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_err = self.oob_mse(x, y, None, &mut rng);
        (0..self.n_features)
            .map(|f| {
                let mut rng_f =
                    StdRng::seed_from_u64(seed ^ (f as u64).wrapping_mul(0x9E3779B97F4A7C15));
                let perm_err = self.oob_mse(x, y, Some(f), &mut rng_f);
                match (base_err, perm_err) {
                    (Some(b), Some(p)) => p - b,
                    _ => 0.0,
                }
            })
            .collect()
    }

    fn oob_predictions(&self, x: &[Vec<f64>]) -> Option<Vec<Option<f64>>> {
        let mut sums = vec![0.0; x.len()];
        let mut counts = vec![0usize; x.len()];
        let mut any = false;
        for t in &self.trees {
            for &i in &t.oob {
                sums[i] += t.predict(&x[i]);
                counts[i] += 1;
                any = true;
            }
        }
        if !any {
            return None;
        }
        Some(
            sums.iter()
                .zip(&counts)
                .map(|(&s, &c)| if c > 0 { Some(s / c as f64) } else { None })
                .collect(),
        )
    }

    fn oob_mse<R: Rng>(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        permute_feature: Option<usize>,
        rng: &mut R,
    ) -> Option<f64> {
        let mut err = 0.0;
        let mut count = 0usize;
        for t in &self.trees {
            if t.oob.is_empty() {
                continue;
            }
            // Shuffle the feature values *within the OOB set* of this tree.
            let shuffled: Option<Vec<f64>> = permute_feature.map(|f| {
                let mut vals: Vec<f64> = t.oob.iter().map(|&i| x[i][f]).collect();
                for k in (1..vals.len()).rev() {
                    let j = rng.random_range(0..=k);
                    vals.swap(k, j);
                }
                vals
            });
            for (pos, &i) in t.oob.iter().enumerate() {
                let pred = match (&shuffled, permute_feature) {
                    (Some(vals), Some(f)) => {
                        let mut row = x[i].clone();
                        row[f] = vals[pos];
                        t.predict(&row)
                    }
                    _ => t.predict(&x[i]),
                };
                let e = pred - y[i];
                err += e * e;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(err / count as f64)
        }
    }
}

/// Grow one tree on a bootstrap resample.
fn grow_tree(x: &[Vec<f64>], y: &[f64], cfg: &RandomForestConfig, tree_idx: u64) -> Tree {
    let n = x.len();
    let d = x[0].len();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(tree_idx));

    let (indices, oob) = if cfg.bootstrap {
        let mut in_bag = vec![false; n];
        let idx: Vec<usize> = (0..n)
            .map(|_| {
                let i = rng.random_range(0..n);
                in_bag[i] = true;
                i
            })
            .collect();
        let oob: Vec<usize> = (0..n).filter(|&i| !in_bag[i]).collect();
        (idx, oob)
    } else {
        ((0..n).collect(), vec![])
    };

    let m_features = match cfg.max_features {
        MaxFeatures::All => d,
        MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
        MaxFeatures::Count(c) => c.clamp(1, d),
    };

    let mut tree = Tree {
        nodes: Vec::new(),
        impurity_decrease: vec![0.0; d],
        oob,
    };
    build_node(
        x, y, indices, 0, cfg, m_features, &mut rng, &mut tree, n as f64,
    );
    tree
}

/// Recursively build a node; returns its index in `tree.nodes`.
#[allow(clippy::too_many_arguments)]
fn build_node(
    x: &[Vec<f64>],
    y: &[f64],
    indices: Vec<usize>,
    depth: usize,
    cfg: &RandomForestConfig,
    m_features: usize,
    rng: &mut StdRng,
    tree: &mut Tree,
    n_total: f64,
) -> usize {
    let ys: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
    let node_mean = vecops::mean(&ys);
    let node_var = population_variance(&ys);

    let make_leaf =
        depth >= cfg.max_depth || indices.len() < cfg.min_samples_split || node_var <= 1e-24;
    if !make_leaf {
        if let Some(split) = best_split(x, y, &indices, m_features, cfg.min_samples_leaf, rng) {
            let (feature, threshold, gain, left_idx, right_idx) = split;
            // Weighted impurity decrease for importance accounting.
            tree.impurity_decrease[feature] += gain * indices.len() as f64 / n_total;
            let placeholder = tree.nodes.len();
            tree.nodes.push(Node::Leaf { value: node_mean }); // patched below
            let left = build_node(
                x,
                y,
                left_idx,
                depth + 1,
                cfg,
                m_features,
                rng,
                tree,
                n_total,
            );
            let right = build_node(
                x,
                y,
                right_idx,
                depth + 1,
                cfg,
                m_features,
                rng,
                tree,
                n_total,
            );
            tree.nodes[placeholder] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            return placeholder;
        }
    }
    tree.nodes.push(Node::Leaf { value: node_mean });
    tree.nodes.len() - 1
}

fn population_variance(ys: &[f64]) -> f64 {
    if ys.is_empty() {
        return 0.0;
    }
    let m = vecops::mean(ys);
    ys.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / ys.len() as f64
}

type Split = (usize, f64, f64, Vec<usize>, Vec<usize>);

/// Best variance-reducing split over a random feature subset.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    m_features: usize,
    min_leaf: usize,
    rng: &mut StdRng,
) -> Option<Split> {
    let d = x[0].len();
    // Sample features without replacement (partial Fisher-Yates).
    let mut feats: Vec<usize> = (0..d).collect();
    for k in 0..m_features.min(d) {
        let j = rng.random_range(k..d);
        feats.swap(k, j);
    }
    let feats = &feats[..m_features.min(d)];

    let n = indices.len() as f64;
    let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();
    let parent_imp = total_sq / n - (total_sum / n) * (total_sum / n);

    let mut best: Option<Split> = None;
    let mut best_gain = 1e-12; // require strictly positive gain

    for &f in feats {
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for k in 0..order.len().saturating_sub(1) {
            let yi = y[order[k]];
            left_sum += yi;
            left_sq += yi * yi;
            let nl = (k + 1) as f64;
            let nr = n - nl;
            // Can't split between equal feature values.
            if x[order[k]][f] == x[order[k + 1]][f] {
                continue;
            }
            if (k + 1) < min_leaf || (order.len() - k - 1) < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let imp_l = left_sq / nl - (left_sum / nl) * (left_sum / nl);
            let imp_r = right_sq / nr - (right_sum / nr) * (right_sum / nr);
            let gain = parent_imp - (nl / n) * imp_l - (nr / n) * imp_r;
            if gain > best_gain {
                best_gain = gain;
                let threshold = 0.5 * (x[order[k]][f] + x[order[k + 1]][f]);
                let (l, r): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x[i][f] <= threshold);
                best = Some((f, threshold, gain, l, r));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y depends only on feature 0; feature 1 is noise.
    fn signal_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.random_range(-1.0..1.0);
            let b: f64 = rng.random_range(-1.0..1.0);
            x.push(vec![a, b]);
            y.push(3.0 * a + 0.01 * rng.random::<f64>());
        }
        (x, y)
    }

    #[test]
    fn fits_and_predicts_signal() {
        let (x, y) = signal_data(200);
        let f = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        // Prediction at a known point should be close to 3*a.
        let p = f.predict(&[0.5, 0.0]);
        assert!((p - 1.5).abs() < 0.5, "prediction {p} too far from 1.5");
    }

    #[test]
    fn importance_identifies_signal_feature() {
        let (x, y) = signal_data(300);
        let f = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        let imp = f.feature_importances();
        assert!(imp[0] > 0.8, "signal importance {:.3} too low", imp[0]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_importance_agrees() {
        let (x, y) = signal_data(300);
        let f = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        let pi = f.permutation_importance(&x, &y, 11);
        assert!(pi[0] > 10.0 * pi[1].abs().max(1e-9), "{pi:?}");
    }

    #[test]
    fn oob_r2_high_for_learnable_signal() {
        let (x, y) = signal_data(400);
        let f = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        let r2 = f.oob_r2(&x, &y).unwrap();
        assert!(r2 > 0.8, "OOB R² {r2:.3} too low");
    }

    #[test]
    fn constant_target_gives_zero_importance() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y = vec![5.0; 50];
        let f = RandomForest::fit(&x, &y, &RandomForestConfig::default()).unwrap();
        assert!(f.feature_importances().iter().all(|&v| v == 0.0));
        assert_eq!(f.predict(&[25.0, -25.0]), 5.0);
    }

    #[test]
    fn deterministic_under_seed_and_threads() {
        let (x, y) = signal_data(100);
        let mut cfg = RandomForestConfig {
            n_trees: 20,
            ..Default::default()
        };
        cfg.threads = 1;
        let f1 = RandomForest::fit(&x, &y, &cfg).unwrap();
        cfg.threads = 4;
        let f2 = RandomForest::fit(&x, &y, &cfg).unwrap();
        let probe = vec![0.3, -0.2];
        assert_eq!(f1.predict(&probe), f2.predict(&probe));
        assert_eq!(f1.feature_importances(), f2.feature_importances());
    }

    #[test]
    fn shape_errors() {
        assert!(RandomForest::fit(&[], &[], &RandomForestConfig::default()).is_err());
        assert!(
            RandomForest::fit(&[vec![1.0]], &[1.0, 2.0], &RandomForestConfig::default()).is_err()
        );
        assert!(RandomForest::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            &RandomForestConfig::default()
        )
        .is_err());
        let cfg = RandomForestConfig {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&[vec![1.0]], &[1.0], &cfg).is_err());
    }

    #[test]
    fn no_bootstrap_has_no_oob() {
        let (x, y) = signal_data(50);
        let cfg = RandomForestConfig {
            bootstrap: false,
            n_trees: 5,
            ..Default::default()
        };
        let f = RandomForest::fit(&x, &y, &cfg).unwrap();
        assert!(f.oob_r2(&x, &y).is_none());
    }

    #[test]
    fn single_tree_step_function() {
        // A single deep tree should fit a step function exactly.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let cfg = RandomForestConfig {
            n_trees: 1,
            bootstrap: false,
            max_features: MaxFeatures::All,
            ..Default::default()
        };
        let f = RandomForest::fit(&x, &y, &cfg).unwrap();
        assert_eq!(f.predict(&[3.0]), 0.0);
        assert_eq!(f.predict(&[15.0]), 1.0);
    }
}
