//! Pearson linear correlation.

use crate::{Result, StatsError};
use cets_linalg::vecops;

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns an error for fewer than two points or zero-variance inputs
/// (where the coefficient is undefined). The paper uses this to detect the
/// `tb`/`tb_sm` coupling (~0.6) created by the occupancy constraint, and to
/// confirm the *absence* of linear dependence between synthetic variables.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::BadShape(format!(
            "pearson: {} vs {} samples",
            x.len(),
            y.len()
        )));
    }
    if x.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: x.len(),
        });
    }
    let (mx, my) = (vecops::mean(x), vecops::mean(y));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::Degenerate("zero variance in pearson".into()));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Full correlation matrix of column-wise features.
///
/// `columns[j]` is feature `j`'s sample vector. Diagonal is 1; undefined
/// entries (zero-variance features) are reported as 0 so downstream ranking
/// treats them as uncorrelated rather than failing the whole analysis.
pub fn pearson_matrix(columns: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let d = columns.len();
    if d == 0 {
        return Ok(vec![]);
    }
    let n = columns[0].len();
    if columns.iter().any(|c| c.len() != n) {
        return Err(StatsError::BadShape("ragged feature columns".into()));
    }
    let mut m = vec![vec![0.0; d]; d];
    #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
    for i in 0..d {
        m[i][i] = 1.0;
        for j in (i + 1)..d {
            let r = pearson(&columns[i], &columns[j]).unwrap_or(0.0);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    Ok(m)
}

/// Pairs `(i, j, r)` with `|r| >= threshold`, sorted by `|r|` descending —
/// the paper's "correlated parameters might be grouped in a search" signal.
pub fn correlated_pairs(columns: &[Vec<f64>], threshold: f64) -> Result<Vec<(usize, usize, f64)>> {
    let m = pearson_matrix(columns)?;
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // upper-triangle walk needs indices
    for i in 0..m.len() {
        for j in (i + 1)..m.len() {
            if m[i][j].abs() >= threshold {
                out.push((i, j, m[i][j]));
            }
        }
    }
    out.sort_by(|a, b| {
        b.2.abs()
            .partial_cmp(&a.2.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Spearman rank correlation: Pearson on the rank-transformed samples.
/// Robust to monotone nonlinearities and outliers — a useful cross-check
/// when the runtime distribution is heavily skewed (the paper reports up
/// to an order of magnitude of spread across sampled configurations).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::BadShape(format!(
            "spearman: {} vs {} samples",
            x.len(),
            y.len()
        )));
    }
    pearson(&ranks(x), &ranks(y))
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie run i..=j (1-based ranks).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Partial correlation matrix: the correlation between each pair of
/// features *controlling for all others*, computed from the inverse of the
/// (regularized) correlation matrix.
///
/// The paper notes partial correlation "requires larger samples" — the
/// matrix inversion amplifies sampling noise, which is why the methodology
/// relies on plain Pearson plus sensitivity analysis instead. Provided for
/// completeness; the one-in-ten rule should be comfortably satisfied
/// before trusting the output.
pub fn partial_correlation_matrix(columns: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    use cets_linalg::{Lu, Matrix};
    let corr = pearson_matrix(columns)?;
    let d = corr.len();
    if d == 0 {
        return Ok(vec![]);
    }
    let mut m = Matrix::from_fn(d, d, |i, j| corr[i][j]);
    // Ridge regularization keeps near-collinear feature sets invertible.
    m.add_diag(1e-8);
    let inv = Lu::new(&m)
        .map_err(|e| StatsError::Degenerate(format!("correlation matrix singular: {e}")))?
        .inverse();
    let mut out = vec![vec![0.0; d]; d];
    for i in 0..d {
        out[i][i] = 1.0;
        for j in (i + 1)..d {
            let denom = (inv[(i, i)] * inv[(j, j)]).sqrt();
            let r = if denom > 0.0 {
                -inv[(i, j)] / denom
            } else {
                0.0
            };
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_correlation_orthogonal() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn errors() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diag() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 2.0, 3.0, 5.0],
            vec![4.0, 3.0, 2.0, 1.0],
        ];
        let m = pearson_matrix(&cols).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert!(m[0][2] < -0.99);
    }

    #[test]
    fn constant_column_reports_zero() {
        let cols = vec![vec![1.0, 1.0, 1.0], vec![1.0, 2.0, 3.0]];
        let m = pearson_matrix(&cols).unwrap();
        assert_eq!(m[0][1], 0.0);
    }

    #[test]
    fn correlated_pairs_filter_and_sort() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.1, 1.9, 3.2, 3.9],  // ~1.0 with col 0
            vec![0.5, -0.2, 0.7, 0.1], // weak
        ];
        let pairs = correlated_pairs(&cols, 0.6).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
        assert!(pairs[0].2 > 0.9);
    }

    #[test]
    fn empty_matrix() {
        assert!(pearson_matrix(&[]).unwrap().is_empty());
        assert!(partial_correlation_matrix(&[]).unwrap().is_empty());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x³ is perfectly rank-correlated, imperfectly Pearson.
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let rs = spearman(&x, &y).unwrap();
        assert!((rs - 1.0).abs() < 1e-12, "{rs}");
        let rp = pearson(&x, &y).unwrap();
        assert!(rp < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[3.0, 1.0, 3.0]), vec![2.5, 1.0, 2.5]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }

    #[test]
    fn partial_correlation_removes_confounder() {
        // z drives both x and y; given z, x and y are (nearly)
        // conditionally independent.
        let n = 200;
        let mut z = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // Deterministic pseudo-noise to keep the test reproducible.
        let mut s = 1u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            let zi = next();
            z.push(zi);
            x.push(zi + 0.1 * next());
            y.push(zi + 0.1 * next());
        }
        let cols = vec![x.clone(), y.clone(), z];
        let plain = pearson(&x, &y).unwrap();
        let partial = partial_correlation_matrix(&cols).unwrap();
        assert!(
            plain > 0.8,
            "confounded correlation should be strong: {plain}"
        );
        assert!(
            partial[0][1].abs() < 0.3,
            "partial correlation should shrink: {} (plain {plain})",
            partial[0][1]
        );
    }

    #[test]
    fn partial_correlation_diag_is_one() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0, 5.5], vec![2.0, 1.0, 4.0, 3.0, 5.0]];
        let m = partial_correlation_matrix(&cols).unwrap();
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[1][1], 1.0);
        assert!((-1.0..=1.0).contains(&m[0][1]));
    }
}
