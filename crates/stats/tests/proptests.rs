//! Property-based tests for the statistics toolkit.

use cets_stats::describe::quantile_sorted;
use cets_stats::{pearson, RandomForest, RandomForestConfig, SensitivityScores, Summary};
use proptest::prelude::*;

fn names(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pearson_bounded(
        x in proptest::collection::vec(-100.0..100.0f64, 3..30),
    ) {
        // Build y as a noisy affine map of x to avoid degenerate variance.
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| 0.5 * v + (i as f64) * 0.37).collect();
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn pearson_affine_invariant(
        x in proptest::collection::vec(-100.0..100.0f64, 5..20),
        scale in 0.1..10.0f64,
        shift in -100.0..100.0f64,
    ) {
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| v + (i % 3) as f64).collect();
        let Ok(r1) = pearson(&x, &y) else { return Ok(()); };
        let x2: Vec<f64> = x.iter().map(|&v| scale * v + shift).collect();
        let r2 = pearson(&x2, &y).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-8, "{r1} vs {r2}");
    }

    #[test]
    fn pearson_symmetric(
        x in proptest::collection::vec(-10.0..10.0f64, 5..15),
    ) {
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| v * v + i as f64).collect();
        let (Ok(a), Ok(b)) = (pearson(&x, &y), pearson(&y, &x)) else { return Ok(()); };
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn summary_orders_quantiles(xs in proptest::collection::vec(-1e6..1e6f64, 1..50)) {
        let s = Summary::new(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn quantile_monotone_in_q(xs in proptest::collection::vec(-100.0..100.0f64, 2..30)) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = quantile_sorted(&sorted, k as f64 / 10.0);
            prop_assert!(q >= prev - 1e-12);
            prev = q;
        }
    }

    #[test]
    fn sensitivity_scale_invariant(
        base in 1.0..100.0f64,
        deltas in proptest::collection::vec(-0.9..2.0f64, 3),
        scale in 0.1..10.0f64,
    ) {
        // Scores are relative: scaling every output by a constant leaves
        // them unchanged.
        let outs: Vec<Vec<f64>> = deltas.iter().map(|d| vec![base * (1.0 + d)]).collect();
        let s1 = SensitivityScores::from_observations(
            &names("p", 1), &names("r", 1), &[base], std::slice::from_ref(&outs),
        ).unwrap();
        let scaled: Vec<Vec<f64>> = outs.iter().map(|row| vec![row[0] * scale]).collect();
        let s2 = SensitivityScores::from_observations(
            &names("p", 1), &names("r", 1), &[base * scale], &[scaled],
        ).unwrap();
        prop_assert!((s1.score(0, 0) - s2.score(0, 0)).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_zero_for_constant_output(base in 1.0..100.0f64, v in 1usize..10) {
        let outs = vec![vec![base]; v];
        let s = SensitivityScores::from_observations(
            &names("p", 1), &names("r", 1), &[base], &[outs],
        ).unwrap();
        prop_assert_eq!(s.score(0, 0), 0.0);
    }

    #[test]
    fn sensitivity_nonnegative(
        base in 1.0..10.0f64,
        outs in proptest::collection::vec(0.1..100.0f64, 1..8),
    ) {
        let rows: Vec<Vec<f64>> = outs.iter().map(|&o| vec![o]).collect();
        let s = SensitivityScores::from_observations(
            &names("p", 1), &names("r", 1), &[base], &[rows],
        ).unwrap();
        prop_assert!(s.score(0, 0) >= 0.0);
    }
}

proptest! {
    // Forest training is slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn forest_predictions_within_target_range(
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let cfg = RandomForestConfig { n_trees: 15, seed, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg).unwrap();
        let (lo, hi) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
        // Tree means can never extrapolate beyond the target range.
        for probe in &x {
            let p = forest.predict(probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn forest_importances_normalized(seed in 0u64..1000) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let cfg = RandomForestConfig { n_trees: 10, seed, ..Default::default() };
        let forest = RandomForest::fit(&x, &y, &cfg).unwrap();
        let sum: f64 = forest.feature_importances().iter().sum();
        prop_assert!(forest.feature_importances().iter().all(|&v| v >= 0.0));
        prop_assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0, "sum = {sum}");
    }
}
