//! Property-based tests for search-space encoding, sampling and
//! subspaces.

use cets_space::{Constraint, ParamDef, Sampler, SearchSpace, Subspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_space() -> SearchSpace {
    SearchSpace::builder()
        .real("x", -50.0, 50.0)
        .integer("tb", 32, 1024)
        .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
        .categorical("mode", vec!["a".into(), "b".into(), "c".into()])
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_always_in_domain(u in proptest::collection::vec(-0.5..1.5f64, 4)) {
        // Even out-of-range unit coords clamp into the domain.
        let s = mixed_space();
        let cfg = s.decode(&u).unwrap();
        for (def, v) in s.defs().iter().zip(&cfg) {
            prop_assert!(def.contains(v), "{def:?} does not contain {v:?}");
        }
    }

    #[test]
    fn encode_decode_roundtrip(u in proptest::collection::vec(0.0..1.0f64, 4)) {
        let s = mixed_space();
        let cfg = s.decode(&u).unwrap();
        let enc = s.encode(&cfg).unwrap();
        let cfg2 = s.decode(&enc).unwrap();
        // decode∘encode is the identity on decoded configs (bin centers).
        prop_assert_eq!(cfg, cfg2);
    }

    #[test]
    fn encoded_coords_in_unit_cube(u in proptest::collection::vec(0.0..1.0f64, 4)) {
        let s = mixed_space();
        let cfg = s.decode(&u).unwrap();
        for e in s.encode(&cfg).unwrap() {
            prop_assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn uniform_sampling_valid(seed in 0u64..10_000) {
        let s = SearchSpace::builder()
            .integer("a", 0, 31)
            .integer("b", 0, 31)
            .constraint(Constraint::new("sum", "a+b <= 40", |s, c| {
                s.get_i64(c, "a").unwrap() + s.get_i64(c, "b").unwrap() <= 40
            }))
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Sampler::new(&s).uniform(&mut rng).unwrap();
        prop_assert!(s.is_valid(&cfg));
    }

    #[test]
    fn lhs_size_and_validity(n in 1usize..30, seed in 0u64..1000) {
        let s = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfgs = Sampler::new(&s).latin_hypercube(n, &mut rng).unwrap();
        prop_assert_eq!(cfgs.len(), n);
        for c in &cfgs {
            prop_assert!(s.is_valid(c));
        }
    }

    #[test]
    fn neighbour_valid_and_in_domain(seed in 0u64..1000, step in 0.01..0.5f64) {
        let s = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Sampler::new(&s).uniform(&mut rng).unwrap();
        let n = Sampler::new(&s).neighbour(&base, 0.5, step, &mut rng).unwrap();
        prop_assert!(s.is_valid(&n));
    }

    #[test]
    fn subspace_lift_project_roundtrip(u in proptest::collection::vec(0.0..1.0f64, 2)) {
        let s = mixed_space();
        let defaults = s.decode(&[0.5, 0.5, 0.5, 0.5]).unwrap();
        let sub = Subspace::new(&s, &["x", "u"], defaults.clone()).unwrap();
        let cfg = sub.lift(&u).unwrap();
        // Frozen params untouched.
        prop_assert_eq!(&cfg[1], &defaults[1]);
        prop_assert_eq!(&cfg[3], &defaults[3]);
        // Roundtrip: project then lift is the identity on lifted configs.
        let u2 = sub.project(&cfg).unwrap();
        prop_assert_eq!(sub.lift(&u2).unwrap(), cfg);
    }

    #[test]
    fn config_from_pairs_consistent(u in proptest::collection::vec(0.0..1.0f64, 4)) {
        let s = mixed_space();
        let cfg = s.decode(&u).unwrap();
        let pairs: Vec<(&str, f64)> = s
            .names()
            .iter()
            .zip(&cfg)
            .map(|(n, v)| (n.as_str(), v.as_f64()))
            .collect();
        let rebuilt = s.config_from_pairs(&pairs).unwrap();
        prop_assert_eq!(rebuilt, cfg);
    }

    #[test]
    fn integer_bins_unbiased_at_edges(lo in -10i64..0, hi_off in 1i64..20) {
        let hi = lo + hi_off;
        let def = ParamDef::Integer { lo, hi };
        // First and last bins decode to the endpoints.
        prop_assert_eq!(def.decode(0.0).as_i64(), lo);
        prop_assert_eq!(def.decode(1.0 - 1e-12).as_i64(), hi);
    }

    #[test]
    fn format_config_mentions_every_param(u in proptest::collection::vec(0.0..1.0f64, 4)) {
        let s = mixed_space();
        let cfg = s.decode(&u).unwrap();
        let txt = s.format_config(&cfg);
        for name in s.names() {
            prop_assert!(txt.contains(name.as_str()));
        }
    }
}
