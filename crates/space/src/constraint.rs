//! Validity constraints over configurations.

use crate::space::{Config, SearchSpace};
use std::fmt;
use std::sync::Arc;

type Predicate = dyn Fn(&SearchSpace, &Config) -> bool + Send + Sync;

/// A named validity predicate over full configurations.
///
/// Constraints are how domain experts encode platform rules — the paper's
/// examples are the A100 occupancy rule (`tb * tb_sm` must not exceed the
/// maximum active threads per SM) and the MPI-grid rule
/// (`nstb * nkpb * nspb` ≤ allocated cores). A configuration is *valid* only
/// if every constraint accepts it.
///
/// The predicate receives the owning [`SearchSpace`] so it can look up
/// parameters by name, which keeps constraints robust to parameter
/// reordering.
#[derive(Clone)]
pub struct Constraint {
    name: String,
    description: String,
    pred: Arc<Predicate>,
}

impl Constraint {
    /// Create a constraint. `name` is a short identifier, `description` a
    /// human-readable statement of the rule (surfaced in reports and DOT
    /// exports).
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        pred: impl Fn(&SearchSpace, &Config) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint {
            name: name.into(),
            description: description.into(),
            pred: Arc::new(pred),
        }
    }

    /// Short identifier.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable rule statement.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Evaluate the predicate.
    pub fn check(&self, space: &SearchSpace, cfg: &Config) -> bool {
        (self.pred)(space, cfg)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchSpace;

    #[test]
    fn constraint_checks_by_name() {
        let space = SearchSpace::builder()
            .integer("tb", 32, 1024)
            .integer("tb_sm", 1, 32)
            .constraint(Constraint::new(
                "occupancy",
                "tb * tb_sm <= 2048",
                |s, c| s.get_i64(c, "tb").unwrap() * s.get_i64(c, "tb_sm").unwrap() <= 2048,
            ))
            .build();
        let ok = space
            .config_from_pairs(&[("tb", 64.0), ("tb_sm", 32.0)])
            .unwrap();
        let bad = space
            .config_from_pairs(&[("tb", 1024.0), ("tb_sm", 32.0)])
            .unwrap();
        assert!(space.is_valid(&ok));
        assert!(!space.is_valid(&bad));
    }

    #[test]
    fn debug_does_not_panic() {
        let c = Constraint::new("x", "always true", |_, _| true);
        let s = format!("{c:?}");
        assert!(s.contains("always true"));
    }
}
