//! Samplers: uniform rejection sampling, Latin hypercube, neighbourhood
//! perturbation.

use crate::{Config, ParamDef, Result, SearchSpace, SpaceError};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Draws valid configurations from a [`SearchSpace`].
///
/// All sampling is rejection-based: draw from the unconstrained product
/// space, keep only configurations accepted by every constraint. The
/// attempt budget ([`Sampler::with_max_attempts`]) makes the paper's
/// observation concrete that *heavily constrained high-dimensional spaces
/// defeat blind candidate generation* — when the budget is exhausted the
/// sampler returns [`SpaceError::SamplingExhausted`] instead of spinning.
#[derive(Debug, Clone)]
pub struct Sampler<'a> {
    space: &'a SearchSpace,
    max_attempts: usize,
    unit_box: Option<Vec<(f64, f64)>>,
    unit_slabs: Option<Vec<Vec<(f64, f64)>>>,
}

impl<'a> Sampler<'a> {
    /// A sampler with the default attempt budget (10 000 per draw).
    pub fn new(space: &'a SearchSpace) -> Self {
        Sampler {
            space,
            max_attempts: 10_000,
            unit_box: None,
            unit_slabs: None,
        }
    }

    /// Override the per-draw rejection budget.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Restrict draws to an axis-aligned sub-box of the unit cube — the
    /// contraction-aware sampling path.
    ///
    /// `bounds[j] = (lo, hi)` gives the unit-coordinate interval dimension
    /// `j` is drawn from; a statically contracted box (see `cets-lint`'s
    /// `analyze_space`) raises the density of constraint-satisfying draws
    /// without excluding any feasible configuration. Bounds are clamped to
    /// `[0, 1]`; a mismatched length or an inverted pair falls back to the
    /// full cube for that draw call (sound, just not narrowed). Note an
    /// all-`(0, 1)` box is the identity mapping bit-for-bit, so callers may
    /// pass it unconditionally.
    pub fn with_unit_box(mut self, bounds: Vec<(f64, f64)>) -> Self {
        let ok = bounds.len() == self.space.dim()
            && bounds
                .iter()
                .all(|&(lo, hi)| (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0);
        self.unit_box = ok.then_some(bounds);
        self
    }

    /// The active unit sub-box, when one was installed.
    pub fn unit_box(&self) -> Option<&[(f64, f64)]> {
        self.unit_box.as_deref()
    }

    /// Restrict draws to a *union of slabs* per dimension — the
    /// disjunctive contraction-aware path.
    ///
    /// `slabs[j]` lists the unit-coordinate intervals dimension `j` may
    /// take, as produced by branch-and-prune over `or` constraints
    /// (`cets-lint`'s slab analysis): a raw draw is mapped into the union
    /// measure-proportionally, so `a <= 1 || a >= 9` draws from both
    /// feasible islands and never lands in the infeasible gap between
    /// them. A dimension with a single slab is mapped bit-identically to
    /// [`Sampler::with_unit_box`] on that slab, so callers may pass
    /// single-slab lists unconditionally. Malformed input (wrong arity,
    /// an empty slab list, bounds outside `[0, 1]` or inverted) falls
    /// back to the full cube — sound, just not narrowed. Takes precedence
    /// over any installed unit box.
    pub fn with_unit_slabs(mut self, slabs: Vec<Vec<(f64, f64)>>) -> Self {
        let ok = slabs.len() == self.space.dim()
            && slabs.iter().all(|dim| {
                !dim.is_empty()
                    && dim
                        .iter()
                        .all(|&(lo, hi)| (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0)
            });
        self.unit_slabs = ok.then_some(slabs);
        self
    }

    /// The active unit slab union, when one was installed.
    pub fn unit_slabs(&self) -> Option<&[Vec<(f64, f64)>]> {
        self.unit_slabs.as_deref()
    }

    /// Map a raw `[0, 1)` draw for dimension `j` into the unit box or
    /// slab union.
    #[inline]
    fn map_unit(&self, j: usize, r: f64) -> f64 {
        if let Some(s) = &self.unit_slabs {
            return map_slabs(&s[j], r);
        }
        match &self.unit_box {
            Some(b) => {
                let (lo, hi) = b[j];
                lo + r * (hi - lo)
            }
            None => r,
        }
    }

    /// One uniform draw from the constrained space.
    pub fn uniform<R: Rng>(&self, rng: &mut R) -> Result<Config> {
        for _ in 0..self.max_attempts {
            let u: Vec<f64> = (0..self.space.dim())
                .map(|j| self.map_unit(j, rng.random::<f64>()))
                .collect();
            let cfg = self.space.decode(&u)?;
            if self.space.is_valid(&cfg) {
                return Ok(cfg);
            }
        }
        Err(SpaceError::SamplingExhausted {
            attempts: self.max_attempts,
        })
    }

    /// `n` uniform draws.
    pub fn uniform_n<R: Rng>(&self, n: usize, rng: &mut R) -> Result<Vec<Config>> {
        (0..n).map(|_| self.uniform(rng)).collect()
    }

    /// Latin-hypercube sample of `n` configurations.
    ///
    /// Each dimension is divided into `n` strata; each stratum is visited
    /// exactly once per dimension with independently shuffled assignments —
    /// the standard initial design for Bayesian optimization (GPTune uses
    /// the same family). Constraint-violating rows are re-drawn uniformly,
    /// so the stratification is exact only for loosely constrained spaces.
    pub fn latin_hypercube<R: Rng>(&self, n: usize, rng: &mut R) -> Result<Vec<Config>> {
        if n == 0 {
            return Ok(vec![]);
        }
        let d = self.space.dim();
        // perms[j][i] = stratum of dimension j for sample i.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut p: Vec<usize> = (0..n).collect();
            p.shuffle(rng);
            perms.push(p);
        }
        let mut out = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // i indexes parallel permutation columns
        for i in 0..n {
            let u: Vec<f64> = (0..d)
                .map(|j| self.map_unit(j, (perms[j][i] as f64 + rng.random::<f64>()) / n as f64))
                .collect();
            let cfg = self.space.decode(&u)?;
            if self.space.is_valid(&cfg) {
                out.push(cfg);
            } else {
                out.push(self.uniform(rng)?);
            }
        }
        Ok(out)
    }

    /// Low-discrepancy (Halton-sequence) sample of `n` configurations.
    ///
    /// Deterministic space-filling design: dimension `j` uses the radical
    /// inverse in the `j`-th prime base, with a fixed index offset (20) to
    /// skip the sequence's degenerate prefix. Useful when a *reproducible*
    /// initial design is wanted independent of any RNG (e.g. comparing
    /// search engines); constraint-violating points are replaced with
    /// uniform draws like in [`Sampler::latin_hypercube`]. Halton's
    /// uniformity degrades past ~6 dimensions — prefer LHS for the
    /// methodology's capped searches, Halton for low-dim sweeps.
    pub fn halton<R: Rng>(&self, n: usize, rng: &mut R) -> Result<Vec<Config>> {
        let d = self.space.dim();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let u: Vec<f64> = (0..d)
                .map(|j| self.map_unit(j, radical_inverse(i as u64 + 20, PRIMES[j % PRIMES.len()])))
                .collect();
            let cfg = self.space.decode(&u)?;
            if self.space.is_valid(&cfg) {
                out.push(cfg);
            } else {
                out.push(self.uniform(rng)?);
            }
        }
        Ok(out)
    }

    /// Perturb `cfg` into a valid neighbour: each coordinate moves with
    /// probability `move_prob`; continuous/integer coordinates take a
    /// Gaussian-ish step of relative scale `step` in unit space, ordinals
    /// step ±1 bin, categoricals resample. Used by the acquisition
    /// optimizer's local-refinement stage.
    pub fn neighbour<R: Rng>(
        &self,
        cfg: &Config,
        move_prob: f64,
        step: f64,
        rng: &mut R,
    ) -> Result<Config> {
        let u0 = self.space.encode(cfg)?;
        for _ in 0..self.max_attempts {
            let mut u = u0.clone();
            let mut moved = false;
            for (j, uj) in u.iter_mut().enumerate() {
                if rng.random::<f64>() >= move_prob {
                    continue;
                }
                moved = true;
                match &self.space.defs()[j] {
                    ParamDef::Real { .. } | ParamDef::Integer { .. } => {
                        // Triangular step ≈ cheap Gaussian substitute.
                        let delta = (rng.random::<f64>() - rng.random::<f64>()) * step;
                        *uj = (*uj + delta).clamp(0.0, 1.0);
                    }
                    ParamDef::Ordinal { values } => {
                        let n = values.len() as f64;
                        let dir = if rng.random::<bool>() { 1.0 } else { -1.0 };
                        *uj = (*uj + dir / n).clamp(0.0, 1.0);
                    }
                    ParamDef::Categorical { .. } => {
                        *uj = rng.random::<f64>();
                    }
                }
            }
            if !moved {
                // Force at least one move so the neighbour differs.
                let j = rng.random_range(0..u.len());
                u[j] = rng.random::<f64>();
            }
            let cand = self.space.decode(&u)?;
            if self.space.is_valid(&cand) {
                return Ok(cand);
            }
        }
        Err(SpaceError::SamplingExhausted {
            attempts: self.max_attempts,
        })
    }
}

/// Map a raw `[0, 1)` draw into a union of unit-space slabs,
/// measure-proportionally. The single-slab fast path reproduces the
/// unit-box affine map (`lo + r * (hi - lo)`) bit-for-bit; a zero-measure
/// union (all point slabs) collapses onto the first slab's point. Public
/// so search loops that draw raw unit coordinates themselves (e.g. the
/// BO candidate loop in `cets-core`) can share the exact mapping the
/// [`Sampler`] uses.
pub fn map_slabs(slabs: &[(f64, f64)], r: f64) -> f64 {
    if let [(lo, hi)] = slabs {
        return lo + r * (hi - lo);
    }
    let total: f64 = slabs.iter().map(|(lo, hi)| hi - lo).sum();
    if total <= 0.0 {
        return slabs[0].0;
    }
    let mut t = r * total;
    for &(lo, hi) in slabs {
        let w = hi - lo;
        if t <= w {
            return (lo + t).min(hi);
        }
        t -= w;
    }
    slabs[slabs.len() - 1].1
}

/// First 25 primes — Halton bases for up to 25 dimensions (cycled after).
const PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Van-der-Corput radical inverse of `i` in base `b` — the Halton kernel.
fn radical_inverse(mut i: u64, b: u64) -> f64 {
    let mut inv = 0.0;
    let mut denom = 1.0;
    while i > 0 {
        denom *= b as f64;
        inv += (i % b) as f64 / denom;
        i /= b;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, SearchSpace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .real("x", -50.0, 50.0)
            .integer("tb", 32, 1024)
            .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
            .build()
    }

    #[test]
    fn uniform_draws_are_valid_and_deterministic() {
        let s = space();
        let sam = Sampler::new(&s);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = sam.uniform_n(10, &mut r1).unwrap();
        let b = sam.uniform_n(10, &mut r2).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|c| s.is_valid(c)));
    }

    #[test]
    fn lhs_stratifies_unconstrained_dims() {
        let s = SearchSpace::builder().real("x", 0.0, 1.0).build();
        let sam = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10;
        let cfgs = sam.latin_hypercube(n, &mut rng).unwrap();
        // Exactly one sample per stratum [k/n, (k+1)/n).
        let mut strata = vec![0usize; n];
        for c in &cfgs {
            let x = c[0].as_f64();
            let k = ((x * n as f64) as usize).min(n - 1);
            strata[k] += 1;
        }
        assert!(strata.iter().all(|&c| c == 1), "{strata:?}");
    }

    #[test]
    fn lhs_zero_is_empty() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Sampler::new(&s)
            .latin_hypercube(0, &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn halton_is_deterministic_and_space_filling() {
        let s = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .real("y", 0.0, 1.0)
            .build();
        let sam = Sampler::new(&s);
        let mut r1 = StdRng::seed_from_u64(0);
        let mut r2 = StdRng::seed_from_u64(999); // RNG unused when all valid
        let a = sam.halton(16, &mut r1).unwrap();
        let b = sam.halton(16, &mut r2).unwrap();
        assert_eq!(a, b, "Halton must not depend on the RNG when unconstrained");
        // Space-filling: each quadrant of the unit square gets hits.
        let mut quads = [0usize; 4];
        for c in &a {
            let (x, y) = (c[0].as_f64(), c[1].as_f64());
            let q = (x >= 0.5) as usize * 2 + (y >= 0.5) as usize;
            quads[q] += 1;
        }
        assert!(quads.iter().all(|&q| q >= 2), "{quads:?}");
    }

    #[test]
    fn radical_inverse_known_values() {
        // Base 2: 1 -> 0.5, 2 -> 0.25, 3 -> 0.75.
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(0, 2), 0.0);
        // Base 3: 1 -> 1/3, 2 -> 2/3.
        assert!((radical_inverse(1, 3) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn rejection_respects_constraints() {
        let s = SearchSpace::builder()
            .integer("a", 0, 10)
            .integer("b", 0, 10)
            .constraint(Constraint::new("sum", "a + b <= 10", |s, c| {
                s.get_i64(c, "a").unwrap() + s.get_i64(c, "b").unwrap() <= 10
            }))
            .build();
        let sam = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = sam.uniform(&mut rng).unwrap();
            assert!(s.get_i64(&c, "a").unwrap() + s.get_i64(&c, "b").unwrap() <= 10);
        }
    }

    #[test]
    fn impossible_constraint_exhausts() {
        let s = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .constraint(Constraint::new("never", "false", |_, _| false))
            .build();
        let sam = Sampler::new(&s).with_max_attempts(50);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            sam.uniform(&mut rng),
            Err(SpaceError::SamplingExhausted { attempts: 50 })
        ));
    }

    #[test]
    fn unit_box_narrows_draws() {
        let s = SearchSpace::builder().real("x", 0.0, 100.0).build();
        let sam = Sampler::new(&s).with_unit_box(vec![(0.25, 0.5)]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let c = sam.uniform(&mut rng).unwrap();
            let x = c[0].as_f64();
            assert!((25.0..=50.0).contains(&x), "draw {x} escaped the box");
        }
        // Latin hypercube stratifies within the box.
        let cfgs = sam.latin_hypercube(8, &mut rng).unwrap();
        assert!(cfgs.iter().all(|c| (25.0..=50.0).contains(&c[0].as_f64())));
    }

    #[test]
    fn full_unit_box_is_identity() {
        let s = space();
        let plain = Sampler::new(&s);
        let boxed = Sampler::new(&s).with_unit_box(vec![(0.0, 1.0); s.dim()]);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            plain.uniform_n(20, &mut r1).unwrap(),
            boxed.uniform_n(20, &mut r2).unwrap(),
            "an all-(0,1) box must be bit-identical to no box"
        );
    }

    #[test]
    fn malformed_unit_box_is_ignored() {
        let s = space();
        // Wrong arity and inverted bounds both fall back to the full cube.
        assert!(Sampler::new(&s)
            .with_unit_box(vec![(0.0, 1.0)])
            .unit_box()
            .is_none());
        assert!(Sampler::new(&s)
            .with_unit_box(vec![(0.9, 0.1); 3])
            .unit_box()
            .is_none());
        assert!(Sampler::new(&s)
            .with_unit_box(vec![(0.1, 0.9); 3])
            .unit_box()
            .is_some());
    }

    #[test]
    fn unit_slabs_draw_from_both_islands_and_skip_the_gap() {
        let s = SearchSpace::builder().integer("a", 0, 10).build();
        // Unit-space image of the integer slabs {0..1} ∪ {9..10}: bin k
        // maps from [k/11, (k+1)/11).
        let sam =
            Sampler::new(&s).with_unit_slabs(vec![vec![(0.0, 2.0 / 11.0), (9.0 / 11.0, 1.0)]]);
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let c = sam.uniform(&mut rng).unwrap();
            let a = s.get_i64(&c, "a").unwrap();
            assert!(a <= 1 || a >= 9, "draw {a} landed in the gap");
            seen.insert(a);
        }
        assert!(seen.contains(&0) || seen.contains(&1), "low island unseen");
        assert!(
            seen.contains(&9) || seen.contains(&10),
            "high island unseen"
        );
    }

    #[test]
    fn single_slab_is_bit_identical_to_unit_box() {
        let s = space();
        let boxed = Sampler::new(&s).with_unit_box(vec![(0.25, 0.5); 3]);
        let slabbed = Sampler::new(&s).with_unit_slabs(vec![vec![(0.25, 0.5)]; 3]);
        let mut r1 = StdRng::seed_from_u64(21);
        let mut r2 = StdRng::seed_from_u64(21);
        assert_eq!(
            boxed.uniform_n(20, &mut r1).unwrap(),
            slabbed.uniform_n(20, &mut r2).unwrap(),
            "single-slab unions must reproduce the unit-box path exactly"
        );
    }

    #[test]
    fn malformed_unit_slabs_are_ignored() {
        let s = space();
        // Wrong arity, an empty per-dimension list, and out-of-range
        // bounds all fall back to the full cube.
        assert!(Sampler::new(&s)
            .with_unit_slabs(vec![vec![(0.0, 1.0)]])
            .unit_slabs()
            .is_none());
        let mut dims = vec![vec![(0.0, 1.0)]; 3];
        dims[1].clear();
        assert!(Sampler::new(&s)
            .with_unit_slabs(dims)
            .unit_slabs()
            .is_none());
        assert!(Sampler::new(&s)
            .with_unit_slabs(vec![vec![(0.2, 1.4)]; 3])
            .unit_slabs()
            .is_none());
        assert!(Sampler::new(&s)
            .with_unit_slabs(vec![vec![(0.2, 0.4), (0.6, 0.8)]; 3])
            .unit_slabs()
            .is_some());
    }

    #[test]
    fn map_slabs_is_measure_proportional() {
        let slabs = [(0.0, 0.1), (0.8, 0.9)];
        // Half the raw mass lands in each equal-measure slab.
        assert!(map_slabs(&slabs, 0.25) < 0.1);
        assert!(map_slabs(&slabs, 0.75) > 0.8);
        assert!(map_slabs(&slabs, 0.999) <= 0.9);
        // Degenerate all-point union collapses deterministically.
        assert_eq!(map_slabs(&[(0.3, 0.3), (0.7, 0.7)], 0.5), 0.3);
    }

    #[test]
    fn neighbour_differs_and_is_valid() {
        let s = space();
        let sam = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(9);
        let base = sam.uniform(&mut rng).unwrap();
        let mut changed = 0;
        for _ in 0..20 {
            let n = sam.neighbour(&base, 0.5, 0.1, &mut rng).unwrap();
            assert!(s.is_valid(&n));
            if n != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "perturbation almost never changed the config");
    }

    #[test]
    fn neighbour_resamples_categoricals() {
        let s = SearchSpace::builder()
            .categorical("mode", (0..8).map(|i| format!("opt{i}")).collect())
            .build();
        let sam = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(2);
        let base = s.decode(&[0.01]).unwrap(); // option 0
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            let n = sam.neighbour(&base, 1.0, 0.1, &mut rng).unwrap();
            seen.insert(n[0].as_usize());
        }
        // Categorical moves are resamples, not ±1 steps: several distinct
        // options should appear, not just the adjacent one.
        assert!(seen.len() >= 4, "only saw options {seen:?}");
    }

    #[test]
    fn neighbour_stays_local_for_small_steps() {
        let s = SearchSpace::builder().real("x", 0.0, 100.0).build();
        let sam = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(11);
        let base = s.config_from_pairs(&[("x", 50.0)]).unwrap();
        for _ in 0..50 {
            let n = sam.neighbour(&base, 1.0, 0.05, &mut rng).unwrap();
            let x = n[0].as_f64();
            assert!((x - 50.0).abs() <= 10.0, "step too large: {x}");
        }
    }
}
