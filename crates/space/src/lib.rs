//! # cets-space
//!
//! Search-space definition, encoding, constraints and sampling for the CETS
//! tuning methodology.
//!
//! A tuning problem is described by a [`SearchSpace`]: an ordered list of
//! named [`ParamDef`]s (real / integer / ordinal / categorical) plus a set of
//! [`Constraint`] predicates that mark configurations invalid (e.g. the
//! paper's `tb * tb_sm <= max_threads_per_sm` A100 rule, or
//! `nstb * nkpb * nspb <= cores`).
//!
//! Configurations travel in two representations:
//!
//! * a **natural** [`Config`] — one [`ParamValue`] per parameter, what
//!   objectives consume;
//! * a **unit-cube encoding** `Vec<f64>` in `[0, 1]^d`, what the Gaussian
//!   process and acquisition optimizers operate on.
//!
//! [`Subspace`] projects a search onto a subset of parameters with frozen
//! defaults for the rest — this is how the methodology's decomposed
//! lower-dimensional searches (its central contribution) are expressed.
//!
//! ```
//! use cets_space::{SearchSpace, ParamDef, Sampler};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder()
//!     .real("x", -50.0, 50.0)
//!     .integer("tb", 32, 1024)
//!     .build();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = Sampler::new(&space).uniform(&mut rng).unwrap();
//! assert!(space.is_valid(&cfg));
//! ```

mod constraint;
mod param;
mod sample;
mod space;
mod subspace;

pub use constraint::Constraint;
pub use param::{ParamDef, ParamValue};
pub use sample::{map_slabs, Sampler};
pub use space::{Config, SearchSpace, SearchSpaceBuilder};
pub use subspace::Subspace;

/// Errors from space construction, encoding and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// No parameter with this name exists in the space.
    UnknownParam(String),
    /// A parameter was defined twice.
    DuplicateParam(String),
    /// A definition was internally inconsistent (empty range, no options...).
    InvalidDef { name: String, reason: String },
    /// A config had the wrong arity or a value outside its parameter domain.
    InvalidConfig(String),
    /// Rejection sampling failed to find a valid configuration within the
    /// attempt budget — the constraint set is too tight for blind sampling.
    /// This is exactly the failure mode the paper reports for joint 20-dim
    /// and 17-dim GPTune searches on RT-TDDFT.
    SamplingExhausted { attempts: usize },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::UnknownParam(n) => write!(f, "unknown parameter: {n}"),
            SpaceError::DuplicateParam(n) => write!(f, "duplicate parameter: {n}"),
            SpaceError::InvalidDef { name, reason } => {
                write!(f, "invalid definition for {name}: {reason}")
            }
            SpaceError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SpaceError::SamplingExhausted { attempts } => write!(
                f,
                "could not sample a valid configuration in {attempts} attempts \
                 (constraint set too tight for rejection sampling)"
            ),
        }
    }
}

impl std::error::Error for SpaceError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SpaceError>;
