//! Projection of a search onto a subset of parameters.

use crate::{Config, Result, SearchSpace, SpaceError};

/// A view of a [`SearchSpace`] restricted to a subset of *active*
/// parameters, with every frozen parameter pinned to a default value.
///
/// This is the paper's decomposition mechanism made concrete: the
/// methodology's output is a set of lower-dimensional searches, each of
/// which explores only its own routine's parameters (plus any merged-in
/// interdependent ones) while the rest of the application keeps defaults or
/// previously-tuned values. The Gaussian process operates in the
/// `active.len()`-dimensional unit cube; [`Subspace::lift`] expands a point
/// back to a full-space [`Config`] for objective evaluation, so full-space
/// constraints keep applying.
#[derive(Debug, Clone)]
pub struct Subspace {
    space: SearchSpace,
    active: Vec<usize>,
    defaults: Config,
}

impl Subspace {
    /// Create a view with `active_names` free and everything else pinned to
    /// `defaults` (a full-space config).
    pub fn new(space: &SearchSpace, active_names: &[&str], defaults: Config) -> Result<Self> {
        space.check_valid(&defaults)?;
        let mut active = Vec::with_capacity(active_names.len());
        for name in active_names {
            let i = space.index_of(name)?;
            if active.contains(&i) {
                return Err(SpaceError::DuplicateParam(name.to_string()));
            }
            active.push(i);
        }
        Ok(Subspace {
            space: space.clone(),
            active,
            defaults,
        })
    }

    /// The full-space view of all parameters (identity projection); useful
    /// for expressing a fully-joint search in the same machinery.
    pub fn full(space: &SearchSpace, defaults: Config) -> Result<Self> {
        let names: Vec<&str> = space.names().iter().map(|s| s.as_str()).collect();
        Self::new(space, &names, defaults)
    }

    /// The active dimensionality (what the GP sees).
    pub fn dim(&self) -> usize {
        self.active.len()
    }

    /// The underlying full space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Indices of the active parameters in full-space order.
    pub fn active_indices(&self) -> &[usize] {
        &self.active
    }

    /// Names of the active parameters.
    pub fn active_names(&self) -> Vec<&str> {
        self.active
            .iter()
            .map(|&i| self.space.names()[i].as_str())
            .collect()
    }

    /// The frozen default configuration.
    pub fn defaults(&self) -> &Config {
        &self.defaults
    }

    /// Replace the defaults (e.g. after an upstream search fixed `nbatches`;
    /// the paper tunes the batch size first, then freezes it for the GPU
    /// kernel searches).
    pub fn set_defaults(&mut self, defaults: Config) -> Result<()> {
        self.space.check_valid(&defaults)?;
        self.defaults = defaults;
        Ok(())
    }

    /// Expand an active-space unit point into a full config: active
    /// coordinates decoded, frozen ones taken from the defaults.
    pub fn lift(&self, u_active: &[f64]) -> Result<Config> {
        if u_active.len() != self.dim() {
            return Err(SpaceError::InvalidConfig(format!(
                "subspace arity {} != {}",
                u_active.len(),
                self.dim()
            )));
        }
        let mut cfg = self.defaults.clone();
        for (&idx, &u) in self.active.iter().zip(u_active) {
            cfg[idx] = self.space.defs()[idx].decode(u);
        }
        Ok(cfg)
    }

    /// Project a full config onto the active unit coordinates.
    pub fn project(&self, cfg: &Config) -> Result<Vec<f64>> {
        let full = self.space.encode(cfg)?;
        Ok(self.active.iter().map(|&i| full[i]).collect())
    }

    /// Is the lifted configuration valid in the full space?
    pub fn is_valid_active(&self, u_active: &[f64]) -> bool {
        self.lift(u_active)
            .map(|c| self.space.is_valid(&c))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, ParamValue};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .real("x", 0.0, 10.0)
            .integer("tb", 32, 1024)
            .integer("tb_sm", 1, 32)
            .constraint(Constraint::new("occ", "tb*tb_sm<=2048", |s, c| {
                s.get_i64(c, "tb").unwrap() * s.get_i64(c, "tb_sm").unwrap() <= 2048
            }))
            .build()
    }

    fn defaults(s: &SearchSpace) -> Config {
        s.config_from_pairs(&[("x", 5.0), ("tb", 64.0), ("tb_sm", 2.0)])
            .unwrap()
    }

    #[test]
    fn lift_pins_frozen_params() {
        let s = space();
        let sub = Subspace::new(&s, &["x"], defaults(&s)).unwrap();
        assert_eq!(sub.dim(), 1);
        let cfg = sub.lift(&[0.0]).unwrap();
        assert_eq!(s.get_f64(&cfg, "x").unwrap(), 0.0);
        assert_eq!(s.get_i64(&cfg, "tb").unwrap(), 64);
        assert_eq!(s.get_i64(&cfg, "tb_sm").unwrap(), 2);
    }

    #[test]
    fn project_roundtrip() {
        let s = space();
        let sub = Subspace::new(&s, &["tb", "tb_sm"], defaults(&s)).unwrap();
        let cfg = s
            .config_from_pairs(&[("x", 5.0), ("tb", 128.0), ("tb_sm", 4.0)])
            .unwrap();
        let u = sub.project(&cfg).unwrap();
        let lifted = sub.lift(&u).unwrap();
        assert_eq!(lifted, cfg);
    }

    #[test]
    fn constraints_apply_after_lift() {
        let s = space();
        let sub = Subspace::new(&s, &["tb", "tb_sm"], defaults(&s)).unwrap();
        // tb=1024 (u≈1.0), tb_sm=32 (u≈1.0) violates occupancy.
        assert!(!sub.is_valid_active(&[0.9999, 0.9999]));
        // tb=32 (u≈0), tb_sm=1 (u≈0) is fine.
        assert!(sub.is_valid_active(&[0.0, 0.0]));
    }

    #[test]
    fn unknown_and_duplicate_active_names() {
        let s = space();
        assert!(matches!(
            Subspace::new(&s, &["nope"], defaults(&s)),
            Err(SpaceError::UnknownParam(_))
        ));
        assert!(matches!(
            Subspace::new(&s, &["x", "x"], defaults(&s)),
            Err(SpaceError::DuplicateParam(_))
        ));
    }

    #[test]
    fn invalid_defaults_rejected() {
        let s = space();
        let bad = s.config_from_pairs(&[("x", 5.0), ("tb", 1024.0), ("tb_sm", 32.0)]);
        // config_from_pairs doesn't run constraints; build raw then check.
        let bad = bad.unwrap();
        assert!(Subspace::new(&s, &["x"], bad).is_err());
    }

    #[test]
    fn set_defaults_revalidates() {
        let s = space();
        let mut sub = Subspace::new(&s, &["x"], defaults(&s)).unwrap();
        let mut d2 = defaults(&s);
        d2[1] = ParamValue::Int(2048); // out of tb's domain
        assert!(sub.set_defaults(d2).is_err());
        let d3 = s
            .config_from_pairs(&[("x", 1.0), ("tb", 256.0), ("tb_sm", 8.0)])
            .unwrap();
        sub.set_defaults(d3).unwrap();
        let cfg = sub.lift(&[0.5]).unwrap();
        assert_eq!(s.get_i64(&cfg, "tb").unwrap(), 256);
    }

    #[test]
    fn full_view_covers_all_params() {
        let s = space();
        let sub = Subspace::full(&s, defaults(&s)).unwrap();
        assert_eq!(sub.dim(), 3);
        assert_eq!(sub.active_names(), vec!["x", "tb", "tb_sm"]);
    }
}
