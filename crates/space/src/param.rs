//! Parameter definitions and values.

use serde::{Deserialize, Serialize};

/// The domain of a single tuning parameter.
///
/// The four kinds cover everything in the paper's two evaluations:
///
/// * [`ParamDef::Real`] — the synthetic functions' `x_i ∈ [-50, 50]`;
/// * [`ParamDef::Integer`] — GPU threadblock counts, stream counts;
/// * [`ParamDef::Ordinal`] — explicit value lists with a meaningful order,
///   e.g. the unroll factor `u ∈ {1, 2, 4, 8}` or `nstb` restricted to the
///   divisors of the band count (the paper's expert constraint);
/// * [`ParamDef::Categorical`] — unordered choices (kept for completeness;
///   encoded by index like ordinals but *perturbed* by resampling, not by
///   stepping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamDef {
    /// Continuous value in `[lo, hi]`.
    Real { lo: f64, hi: f64 },
    /// Integer in `[lo, hi]` inclusive.
    Integer { lo: i64, hi: i64 },
    /// One of an explicit, ordered list of numeric values.
    Ordinal { values: Vec<f64> },
    /// One of an explicit list of unordered labels.
    Categorical { options: Vec<String> },
}

impl ParamDef {
    /// Number of distinct values; `None` for continuous parameters.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            ParamDef::Real { .. } => None,
            ParamDef::Integer { lo, hi } => Some((hi - lo + 1).max(0) as usize),
            ParamDef::Ordinal { values } => Some(values.len()),
            ParamDef::Categorical { options } => Some(options.len()),
        }
    }

    /// Check definition consistency (non-empty range / option list).
    pub fn validate(&self) -> std::result::Result<(), String> {
        match self {
            ParamDef::Real { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite()) {
                    Err("bounds must be finite".into())
                } else if lo >= hi {
                    Err(format!("empty range [{lo}, {hi}]"))
                } else {
                    Ok(())
                }
            }
            ParamDef::Integer { lo, hi } => {
                if lo > hi {
                    Err(format!("empty range [{lo}, {hi}]"))
                } else {
                    Ok(())
                }
            }
            ParamDef::Ordinal { values } => {
                if values.is_empty() {
                    Err("empty value list".into())
                } else if values.iter().any(|v| !v.is_finite()) {
                    Err("non-finite ordinal value".into())
                } else {
                    Ok(())
                }
            }
            ParamDef::Categorical { options } => {
                if options.is_empty() {
                    Err("empty option list".into())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Does `v` lie in this parameter's domain?
    pub fn contains(&self, v: &ParamValue) -> bool {
        match (self, v) {
            (ParamDef::Real { lo, hi }, ParamValue::Real(x)) => {
                x.is_finite() && *x >= *lo && *x <= *hi
            }
            (ParamDef::Integer { lo, hi }, ParamValue::Int(x)) => x >= lo && x <= hi,
            (ParamDef::Ordinal { values }, ParamValue::Real(x)) => values.iter().any(|v| v == x),
            (ParamDef::Categorical { options }, ParamValue::Index(i)) => *i < options.len(),
            _ => false,
        }
    }

    /// Map a unit-interval coordinate `u ∈ [0, 1]` to a domain value.
    ///
    /// Discrete parameters partition `[0, 1]` into equal bins, the standard
    /// BO treatment for mixed spaces; the GP sees a continuous coordinate,
    /// the objective sees a snapped value.
    pub fn decode(&self, u: f64) -> ParamValue {
        let u = u.clamp(0.0, 1.0);
        match self {
            ParamDef::Real { lo, hi } => ParamValue::Real(lo + u * (hi - lo)),
            ParamDef::Integer { lo, hi } => {
                let n = (hi - lo + 1) as f64;
                let k = (u * n).floor().min(n - 1.0) as i64;
                ParamValue::Int(lo + k)
            }
            ParamDef::Ordinal { values } => {
                let n = values.len() as f64;
                let k = (u * n).floor().min(n - 1.0) as usize;
                ParamValue::Real(values[k])
            }
            ParamDef::Categorical { options } => {
                let n = options.len() as f64;
                let k = (u * n).floor().min(n - 1.0) as usize;
                ParamValue::Index(k)
            }
        }
    }

    /// The unit-interval bin `[k/n, (k+1)/n)` of the `k`-th declared
    /// value (ordinal) or option (categorical) — the exact pre-image of
    /// that choice under [`ParamDef::decode`]. `None` for the unbounded
    /// kinds, or when `k` is out of range. Set-restricted samplers use
    /// this to draw from surviving choices only.
    pub fn unit_bin(&self, k: usize) -> Option<(f64, f64)> {
        let n = match self {
            ParamDef::Ordinal { values } => values.len(),
            ParamDef::Categorical { options } => options.len(),
            ParamDef::Real { .. } | ParamDef::Integer { .. } => return None,
        };
        if k >= n {
            return None;
        }
        let n = n as f64;
        Some((k as f64 / n, (k + 1) as f64 / n))
    }

    /// Map a domain value back to the **center** of its unit-interval bin.
    ///
    /// `decode(encode(v)) == v` for every in-domain value (round-trip tested
    /// by property tests); the reverse composition snaps to bin centers.
    pub fn encode(&self, v: &ParamValue) -> std::result::Result<f64, String> {
        match (self, v) {
            (ParamDef::Real { lo, hi }, ParamValue::Real(x)) => {
                if x < lo || x > hi {
                    return Err(format!("{x} outside [{lo}, {hi}]"));
                }
                Ok((x - lo) / (hi - lo))
            }
            (ParamDef::Integer { lo, hi }, ParamValue::Int(x)) => {
                if x < lo || x > hi {
                    return Err(format!("{x} outside [{lo}, {hi}]"));
                }
                let n = (hi - lo + 1) as f64;
                Ok(((x - lo) as f64 + 0.5) / n)
            }
            (ParamDef::Ordinal { values }, ParamValue::Real(x)) => {
                let k = values
                    .iter()
                    .position(|v| v == x)
                    .ok_or_else(|| format!("{x} not an ordinal value"))?;
                Ok((k as f64 + 0.5) / values.len() as f64)
            }
            (ParamDef::Categorical { options }, ParamValue::Index(i)) => {
                if *i >= options.len() {
                    return Err(format!("index {i} out of {} options", options.len()));
                }
                Ok((*i as f64 + 0.5) / options.len() as f64)
            }
            _ => Err("value kind does not match parameter kind".into()),
        }
    }
}

/// A concrete value of one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Real-valued (also carries ordinal values, which are numeric).
    Real(f64),
    /// Integer-valued.
    Int(i64),
    /// Categorical option index.
    Index(usize),
}

impl ParamValue {
    /// Numeric view: real as-is, int cast, categorical index cast.
    ///
    /// Sensitivity analysis and the GP treat everything numerically; this is
    /// the single conversion point.
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Real(x) => *x,
            ParamValue::Int(x) => *x as f64,
            ParamValue::Index(i) => *i as f64,
        }
    }

    /// Integer view; rounds reals.
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Real(x) => x.round() as i64,
            ParamValue::Int(x) => *x,
            ParamValue::Index(i) => *i as i64,
        }
    }

    /// Integer view as usize, clamped at zero.
    pub fn as_usize(&self) -> usize {
        self.as_i64().max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_decode_endpoints() {
        let p = ParamDef::Real {
            lo: -50.0,
            hi: 50.0,
        };
        assert_eq!(p.decode(0.0), ParamValue::Real(-50.0));
        assert_eq!(p.decode(1.0), ParamValue::Real(50.0));
        assert_eq!(p.decode(0.5), ParamValue::Real(0.0));
        // Out-of-range unit coords clamp.
        assert_eq!(p.decode(2.0), ParamValue::Real(50.0));
        assert_eq!(p.decode(-1.0), ParamValue::Real(-50.0));
    }

    #[test]
    fn integer_decode_covers_all_bins() {
        let p = ParamDef::Integer { lo: 1, hi: 4 };
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..100 {
            if let ParamValue::Int(v) = p.decode(i as f64 / 99.0) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn ordinal_decode_snaps_to_values() {
        let p = ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0, 8.0],
        };
        assert_eq!(p.decode(0.1), ParamValue::Real(1.0));
        assert_eq!(p.decode(0.9), ParamValue::Real(8.0));
    }

    #[test]
    fn encode_decode_roundtrip_discrete() {
        let p = ParamDef::Integer { lo: 32, hi: 1024 };
        for v in [32, 33, 500, 1024] {
            let u = p.encode(&ParamValue::Int(v)).unwrap();
            assert_eq!(p.decode(u), ParamValue::Int(v));
        }
        let o = ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0, 8.0],
        };
        for v in [1.0, 2.0, 4.0, 8.0] {
            let u = o.encode(&ParamValue::Real(v)).unwrap();
            assert_eq!(o.decode(u), ParamValue::Real(v));
        }
    }

    #[test]
    fn encode_rejects_out_of_domain() {
        let p = ParamDef::Real { lo: 0.0, hi: 1.0 };
        assert!(p.encode(&ParamValue::Real(2.0)).is_err());
        assert!(p.encode(&ParamValue::Int(0)).is_err());
        let o = ParamDef::Ordinal {
            values: vec![1.0, 2.0],
        };
        assert!(o.encode(&ParamValue::Real(3.0)).is_err());
    }

    #[test]
    fn validate_catches_bad_defs() {
        assert!(ParamDef::Real { lo: 1.0, hi: 1.0 }.validate().is_err());
        assert!(ParamDef::Real {
            lo: 0.0,
            hi: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ParamDef::Integer { lo: 5, hi: 4 }.validate().is_err());
        assert!(ParamDef::Ordinal { values: vec![] }.validate().is_err());
        assert!(ParamDef::Ordinal {
            values: vec![f64::NAN]
        }
        .validate()
        .is_err());
        assert!(ParamDef::Categorical { options: vec![] }
            .validate()
            .is_err());
        assert!(ParamDef::Real { lo: 0.0, hi: 1.0 }.validate().is_ok());
    }

    #[test]
    fn contains_checks_domain_and_kind() {
        let p = ParamDef::Integer { lo: 0, hi: 10 };
        assert!(p.contains(&ParamValue::Int(5)));
        assert!(!p.contains(&ParamValue::Int(11)));
        assert!(!p.contains(&ParamValue::Real(5.0)));
        let r = ParamDef::Real { lo: 0.0, hi: 1.0 };
        assert!(!r.contains(&ParamValue::Real(f64::NAN)));
    }

    #[test]
    fn cardinality() {
        assert_eq!(ParamDef::Real { lo: 0.0, hi: 1.0 }.cardinality(), None);
        assert_eq!(ParamDef::Integer { lo: 1, hi: 32 }.cardinality(), Some(32));
        assert_eq!(
            ParamDef::Ordinal {
                values: vec![1.0, 2.0, 4.0, 8.0]
            }
            .cardinality(),
            Some(4)
        );
    }

    #[test]
    fn unit_bin_is_the_decode_preimage() {
        let o = ParamDef::Ordinal {
            values: vec![1.0, 2.0, 4.0, 8.0],
        };
        let (lo, hi) = o.unit_bin(2).unwrap();
        assert_eq!((lo, hi), (0.5, 0.75));
        assert_eq!(o.decode(lo), ParamValue::Real(4.0));
        assert_eq!(o.decode(hi - 1e-9), ParamValue::Real(4.0));
        let c = ParamDef::Categorical {
            options: vec!["a".into(), "b".into()],
        };
        assert_eq!(c.unit_bin(1), Some((0.5, 1.0)));
        assert_eq!(c.unit_bin(2), None);
        assert_eq!(ParamDef::Integer { lo: 0, hi: 9 }.unit_bin(0), None);
    }

    #[test]
    fn value_numeric_views() {
        assert_eq!(ParamValue::Real(2.6).as_i64(), 3);
        assert_eq!(ParamValue::Int(-2).as_usize(), 0);
        assert_eq!(ParamValue::Index(3).as_f64(), 3.0);
    }
}
