//! The search space: named parameters + constraints.

use crate::{Constraint, ParamDef, ParamValue, Result, SpaceError};

/// A full configuration: one [`ParamValue`] per parameter, in space order.
pub type Config = Vec<ParamValue>;

/// An ordered collection of named parameters with validity constraints.
///
/// Parameter order is significant: it defines the layout of unit-cube
/// encodings and of every score vector produced by the statistics layer.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    names: Vec<String>,
    defs: Vec<ParamDef>,
    constraints: Vec<Constraint>,
}

impl SearchSpace {
    /// Start building a space.
    pub fn builder() -> SearchSpaceBuilder {
        SearchSpaceBuilder::default()
    }

    /// Number of parameters (the search dimensionality `D`).
    pub fn dim(&self) -> usize {
        self.defs.len()
    }

    /// Total number of *unconstrained* configurations — the product of the
    /// discrete parameters' cardinalities. `None` if any parameter is
    /// continuous (infinite) or on overflow. This is the headline number
    /// HPC papers quote for their search spaces (the CETS paper's Table IV
    /// reports 41,943,040 × the MPI-grid sizes for its GPU parameters);
    /// constraints shrink the *valid* count further.
    pub fn cardinality(&self) -> Option<u128> {
        let mut total: u128 = 1;
        for def in &self.defs {
            let c = def.cardinality()? as u128;
            total = total.checked_mul(c)?;
        }
        Some(total)
    }

    /// Parameter names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Parameter definitions in order.
    pub fn defs(&self) -> &[ParamDef] {
        &self.defs
    }

    /// The constraint set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SpaceError::UnknownParam(name.to_string()))
    }

    /// The definition of parameter `name`.
    pub fn def_of(&self, name: &str) -> Result<&ParamDef> {
        Ok(&self.defs[self.index_of(name)?])
    }

    /// Get a parameter's value from a config by name.
    pub fn get(&self, cfg: &Config, name: &str) -> Result<ParamValue> {
        let i = self.index_of(name)?;
        cfg.get(i)
            .cloned()
            .ok_or_else(|| SpaceError::InvalidConfig(format!("config too short for {name}")))
    }

    /// Numeric view of a parameter's value.
    pub fn get_f64(&self, cfg: &Config, name: &str) -> Result<f64> {
        Ok(self.get(cfg, name)?.as_f64())
    }

    /// Integer view of a parameter's value.
    pub fn get_i64(&self, cfg: &Config, name: &str) -> Result<i64> {
        Ok(self.get(cfg, name)?.as_i64())
    }

    /// Replace one named value, returning the modified config.
    pub fn with_value(&self, cfg: &Config, name: &str, v: ParamValue) -> Result<Config> {
        let i = self.index_of(name)?;
        if !self.defs[i].contains(&v) {
            return Err(SpaceError::InvalidConfig(format!(
                "value {v:?} outside domain of {name}"
            )));
        }
        let mut out = cfg.clone();
        out[i] = v;
        Ok(out)
    }

    /// Does `cfg` have the right arity, in-domain values, and satisfy every
    /// constraint?
    pub fn is_valid(&self, cfg: &Config) -> bool {
        self.check_valid(cfg).is_ok()
    }

    /// Like [`SearchSpace::is_valid`] but reports *why* a config is invalid.
    pub fn check_valid(&self, cfg: &Config) -> Result<()> {
        if cfg.len() != self.dim() {
            return Err(SpaceError::InvalidConfig(format!(
                "arity {} != {}",
                cfg.len(),
                self.dim()
            )));
        }
        for ((def, v), name) in self.defs.iter().zip(cfg).zip(&self.names) {
            if !def.contains(v) {
                return Err(SpaceError::InvalidConfig(format!(
                    "{name}: {v:?} outside domain"
                )));
            }
        }
        for c in &self.constraints {
            if !c.check(self, cfg) {
                return Err(SpaceError::InvalidConfig(format!(
                    "constraint '{}' violated ({})",
                    c.name(),
                    c.description()
                )));
            }
        }
        Ok(())
    }

    /// Encode a config into the unit cube `[0, 1]^D`.
    pub fn encode(&self, cfg: &Config) -> Result<Vec<f64>> {
        if cfg.len() != self.dim() {
            return Err(SpaceError::InvalidConfig(format!(
                "arity {} != {}",
                cfg.len(),
                self.dim()
            )));
        }
        self.defs
            .iter()
            .zip(cfg)
            .zip(&self.names)
            .map(|((def, v), name)| {
                def.encode(v).map_err(|reason| SpaceError::InvalidDef {
                    name: name.clone(),
                    reason,
                })
            })
            .collect()
    }

    /// Decode a unit-cube point into a config (coordinates are clamped).
    pub fn decode(&self, u: &[f64]) -> Result<Config> {
        if u.len() != self.dim() {
            return Err(SpaceError::InvalidConfig(format!(
                "arity {} != {}",
                u.len(),
                self.dim()
            )));
        }
        Ok(self
            .defs
            .iter()
            .zip(u)
            .map(|(def, &x)| def.decode(x))
            .collect())
    }

    /// Build a config from `(name, numeric value)` pairs — every parameter
    /// must appear exactly once. Reals are taken verbatim, integers rounded,
    /// ordinals matched exactly, categorical values interpreted as indices.
    pub fn config_from_pairs(&self, pairs: &[(&str, f64)]) -> Result<Config> {
        if pairs.len() != self.dim() {
            return Err(SpaceError::InvalidConfig(format!(
                "{} pairs for {} parameters",
                pairs.len(),
                self.dim()
            )));
        }
        let mut cfg: Vec<Option<ParamValue>> = vec![None; self.dim()];
        for (name, x) in pairs {
            let i = self.index_of(name)?;
            if cfg[i].is_some() {
                return Err(SpaceError::DuplicateParam(name.to_string()));
            }
            let v = match &self.defs[i] {
                ParamDef::Real { .. } => ParamValue::Real(*x),
                ParamDef::Integer { .. } => ParamValue::Int(x.round() as i64),
                ParamDef::Ordinal { .. } => ParamValue::Real(*x),
                ParamDef::Categorical { .. } => ParamValue::Index(x.round().max(0.0) as usize),
            };
            if !self.defs[i].contains(&v) {
                return Err(SpaceError::InvalidConfig(format!(
                    "{name}: {x} outside domain"
                )));
            }
            cfg[i] = Some(v);
        }
        Ok(cfg.into_iter().map(|v| v.expect("all set")).collect())
    }

    /// Render the space definition as a markdown table (parameters,
    /// domains, cardinalities) plus the constraint list — used by tuning
    /// reports.
    pub fn describe_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "| Parameter | Domain | Values |").unwrap();
        writeln!(s, "|---|---|---|").unwrap();
        for (name, def) in self.names.iter().zip(&self.defs) {
            let (domain, card) = match def {
                ParamDef::Real { lo, hi } => (format!("real [{lo}, {hi}]"), "∞".to_string()),
                ParamDef::Integer { lo, hi } => (
                    format!("integer [{lo}, {hi}]"),
                    def.cardinality().map_or("?".into(), |c| c.to_string()),
                ),
                ParamDef::Ordinal { values } => (
                    format!(
                        "ordinal {{{}}}",
                        values
                            .iter()
                            .map(|v| format!("{v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    values.len().to_string(),
                ),
                ParamDef::Categorical { options } => (
                    format!("categorical {{{}}}", options.join(", ")),
                    options.len().to_string(),
                ),
            };
            writeln!(s, "| {name} | {domain} | {card} |").unwrap();
        }
        if let Some(total) = self.cardinality() {
            writeln!(
                s,
                "
Unconstrained configurations: {total}"
            )
            .unwrap();
        }
        if !self.constraints.is_empty() {
            writeln!(
                s,
                "
Constraints:"
            )
            .unwrap();
            for c in &self.constraints {
                writeln!(s, "- **{}**: {}", c.name(), c.description()).unwrap();
            }
        }
        s
    }

    /// Render a config as `name=value` pairs for logs and reports.
    pub fn format_config(&self, cfg: &Config) -> String {
        self.names
            .iter()
            .zip(cfg)
            .map(|(n, v)| match v {
                ParamValue::Real(x) => format!("{n}={x:.4}"),
                ParamValue::Int(x) => format!("{n}={x}"),
                ParamValue::Index(i) => format!("{n}=#{i}"),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Fluent builder for [`SearchSpace`].
#[derive(Default)]
pub struct SearchSpaceBuilder {
    names: Vec<String>,
    defs: Vec<ParamDef>,
    constraints: Vec<Constraint>,
}

impl SearchSpaceBuilder {
    /// Add a real parameter in `[lo, hi]`.
    pub fn real(self, name: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.param(name, ParamDef::Real { lo, hi })
    }

    /// Add an integer parameter in `[lo, hi]` inclusive.
    pub fn integer(self, name: impl Into<String>, lo: i64, hi: i64) -> Self {
        self.param(name, ParamDef::Integer { lo, hi })
    }

    /// Add an ordinal parameter over an explicit value list.
    pub fn ordinal(self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.param(name, ParamDef::Ordinal { values })
    }

    /// Add a categorical parameter over labels.
    pub fn categorical(self, name: impl Into<String>, options: Vec<String>) -> Self {
        self.param(name, ParamDef::Categorical { options })
    }

    /// Add a parameter with an explicit definition.
    pub fn param(mut self, name: impl Into<String>, def: ParamDef) -> Self {
        self.names.push(name.into());
        self.defs.push(def);
        self
    }

    /// Add a validity constraint.
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Validate and build. Panics on duplicate names or inconsistent
    /// definitions — space construction is programmer-driven setup code, so
    /// failing fast beats threading `Result` through every call site; use
    /// [`SearchSpaceBuilder::try_build`] when definitions come from data.
    pub fn build(self) -> SearchSpace {
        self.try_build().expect("invalid search space definition")
    }

    /// Validate and build, returning errors instead of panicking.
    pub fn try_build(self) -> Result<SearchSpace> {
        for (i, name) in self.names.iter().enumerate() {
            if self.names[..i].contains(name) {
                return Err(SpaceError::DuplicateParam(name.clone()));
            }
        }
        for (name, def) in self.names.iter().zip(&self.defs) {
            def.validate().map_err(|reason| SpaceError::InvalidDef {
                name: name.clone(),
                reason,
            })?;
        }
        Ok(SearchSpace {
            names: self.names,
            defs: self.defs,
            constraints: self.constraints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .real("x", -50.0, 50.0)
            .integer("tb", 32, 1024)
            .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
            .build()
    }

    #[test]
    fn basic_introspection() {
        let s = space();
        assert_eq!(s.dim(), 3);
        assert_eq!(s.index_of("tb").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert!(matches!(s.def_of("u").unwrap(), ParamDef::Ordinal { .. }));
    }

    #[test]
    fn cardinality_products() {
        let s = SearchSpace::builder()
            .integer("a", 1, 4)
            .ordinal("u", vec![1.0, 2.0, 4.0, 8.0])
            .categorical("m", vec!["x".into(), "y".into()])
            .build();
        assert_eq!(s.cardinality(), Some(32));
        // Continuous parameter => unbounded.
        let c = SearchSpace::builder().real("x", 0.0, 1.0).build();
        assert_eq!(c.cardinality(), None);
    }

    #[test]
    fn duplicate_name_rejected() {
        let r = SearchSpace::builder()
            .real("x", 0.0, 1.0)
            .real("x", 0.0, 2.0)
            .try_build();
        assert!(matches!(r, Err(SpaceError::DuplicateParam(_))));
    }

    #[test]
    fn invalid_def_rejected() {
        let r = SearchSpace::builder().real("x", 1.0, 0.0).try_build();
        assert!(matches!(r, Err(SpaceError::InvalidDef { .. })));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = space();
        let cfg = s
            .config_from_pairs(&[("x", 10.0), ("tb", 64.0), ("u", 4.0)])
            .unwrap();
        let u = s.encode(&cfg).unwrap();
        assert!(u.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = s.decode(&u).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn decode_wrong_arity() {
        let s = space();
        assert!(s.decode(&[0.5, 0.5]).is_err());
        assert!(s.encode(&vec![ParamValue::Real(0.0)]).is_err());
    }

    #[test]
    fn config_from_pairs_errors() {
        let s = space();
        // missing param
        assert!(s.config_from_pairs(&[("x", 0.0), ("tb", 64.0)]).is_err());
        // duplicate
        assert!(s
            .config_from_pairs(&[("x", 0.0), ("x", 1.0), ("tb", 64.0)])
            .is_err());
        // out of domain
        assert!(s
            .config_from_pairs(&[("x", 500.0), ("tb", 64.0), ("u", 4.0)])
            .is_err());
        // ordinal must match exactly
        assert!(s
            .config_from_pairs(&[("x", 0.0), ("tb", 64.0), ("u", 3.0)])
            .is_err());
    }

    #[test]
    fn with_value_replaces_and_checks() {
        let s = space();
        let cfg = s
            .config_from_pairs(&[("x", 0.0), ("tb", 64.0), ("u", 1.0)])
            .unwrap();
        let c2 = s.with_value(&cfg, "tb", ParamValue::Int(128)).unwrap();
        assert_eq!(s.get_i64(&c2, "tb").unwrap(), 128);
        assert!(s.with_value(&cfg, "tb", ParamValue::Int(7)).is_err());
    }

    #[test]
    fn check_valid_reports_reason() {
        let s = space();
        let short = vec![ParamValue::Real(0.0)];
        let err = s.check_valid(&short).unwrap_err();
        assert!(matches!(err, SpaceError::InvalidConfig(_)));
    }

    #[test]
    fn describe_markdown_lists_everything() {
        let s = SearchSpace::builder()
            .integer("tb", 32, 1024)
            .ordinal("u", vec![1.0, 2.0])
            .constraint(crate::Constraint::new("occ", "tb*tb_sm <= 2048", |_, _| {
                true
            }))
            .build();
        let md = s.describe_markdown();
        assert!(md.contains("| tb | integer [32, 1024] | 993 |"));
        assert!(md.contains("ordinal {1, 2}"));
        assert!(md.contains("Unconstrained configurations: 1986"));
        assert!(md.contains("**occ**: tb*tb_sm <= 2048"));
    }

    #[test]
    fn format_config_is_readable() {
        let s = space();
        let cfg = s
            .config_from_pairs(&[("x", 1.5), ("tb", 64.0), ("u", 2.0)])
            .unwrap();
        let txt = s.format_config(&cfg);
        assert!(txt.contains("tb=64"));
        assert!(txt.contains("x=1.5000"));
    }
}
