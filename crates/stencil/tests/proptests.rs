//! Property-based tests for the stencil mini-app simulator.

use cets_core::Objective;
use cets_space::Sampler;
use cets_stencil::{StencilApp, StencilProblem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_configs_simulate_finite(seed in 0u64..2000) {
        let app = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Sampler::new(app.space()).uniform(&mut rng).unwrap();
        let (c, h, r, t) = app.simulate(&cfg);
        prop_assert!(c > 0.0 && h > 0.0 && r > 0.0);
        prop_assert!((t - (c + h + r)).abs() < 1e-12);
        let obs = app.evaluate(&cfg);
        prop_assert_eq!(obs.routines.len(), 4);
        prop_assert_eq!(obs.total, t);
    }

    #[test]
    fn deeper_halo_never_more_exchange_time(seed in 0u64..500) {
        let app = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Sampler::new(app.space()).uniform(&mut rng).unwrap();
        let sp = app.space();
        let h1 = sp.with_value(&base, "halo_depth", cets_space::ParamValue::Int(1)).unwrap();
        let h4 = sp.with_value(&base, "halo_depth", cets_space::ParamValue::Int(4)).unwrap();
        let (c1, t1, _, _) = app.simulate(&h1);
        let (c4, t4, _, _) = app.simulate(&h4);
        prop_assert!(t4 <= t1 + 1e-12, "halo {t4} > {t1}");
        prop_assert!(c4 >= c1 - 1e-12, "compute {c4} < {c1}");
    }

    #[test]
    fn more_ranks_not_slower_compute(seed in 0u64..500) {
        // Growing the rank grid (same shape family) cannot increase the
        // critical rank's compute time.
        let app = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Sampler::new(app.space()).uniform(&mut rng).unwrap();
        let sp = app.space();
        let small = sp
            .with_value(&base, "px", cets_space::ParamValue::Int(2))
            .and_then(|c| sp.with_value(&c, "py", cets_space::ParamValue::Int(2)))
            .unwrap();
        let big = sp
            .with_value(&base, "px", cets_space::ParamValue::Int(4))
            .and_then(|c| sp.with_value(&c, "py", cets_space::ParamValue::Int(4)))
            .unwrap();
        let (c_small, ..) = app.simulate(&small);
        let (c_big, ..) = app.simulate(&big);
        prop_assert!(c_big <= c_small + 1e-12);
    }

    #[test]
    fn reduce_interval_only_moves_reduce(seed in 0u64..500, interval in 2i64..50) {
        let app = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Sampler::new(app.space()).uniform(&mut rng).unwrap();
        let sp = app.space();
        let changed = sp
            .with_value(&base, "reduce_every", cets_space::ParamValue::Int(interval))
            .unwrap();
        let (c1, h1, _, _) = app.simulate(&base);
        let (c2, h2, _, _) = app.simulate(&changed);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn noise_bounded(seed in 0u64..300) {
        let noisy = StencilApp::new(StencilProblem::benchmark()).with_seed(seed);
        let clean = StencilApp::new(StencilProblem::benchmark()).with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Sampler::new(noisy.space()).uniform(&mut rng).unwrap();
        let a = noisy.evaluate(&cfg).total;
        let b = clean.evaluate(&cfg).total;
        prop_assert!((a / b - 1.0).abs() < 0.2, "{a} vs {b}");
    }
}
