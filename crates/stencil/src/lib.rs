//! # cets-stencil
//!
//! A distributed 3D Jacobi-stencil mini-app **performance simulator** — a
//! second tuning domain, independent of RT-TDDFT, demonstrating the
//! paper's closing claim that the methodology's "adaptability and
//! efficiency extend beyond RT-TDDFT, making it valuable for related
//! applications in HPC".
//!
//! ## The application
//!
//! A 7-point Jacobi sweep over an `n³` grid, 2D-decomposed over
//! `px × py` MPI ranks, running `steps` time steps. Three observable
//! routines:
//!
//! * **Compute** — the blocked, vectorized stencil sweep;
//! * **Halo** — ghost-cell exchange with the four neighbours;
//! * **Reduce** — the global residual norm.
//!
//! ## The tuning problem (11 parameters)
//!
//! | Parameter | Role |
//! |---|---|
//! | `px`, `py` | rank grid (constraint: `px·py ≤ ranks`) |
//! | `tile_x/y/z` | cache blocking of the sweep |
//! | `unroll` | inner-loop unrolling |
//! | `vec_width` | SIMD width |
//! | `halo_depth` | ghost layers per exchange (deep halo trading) |
//! | `aggregate` | message aggregation factor |
//! | `comm_overlap` | overlap protocol aggressiveness |
//! | `reduce_every` | residual-check interval |
//!
//! ## The interdependence
//!
//! `halo_depth` is the classic *deep halo* trade: a depth-`h` exchange
//! happens only every `h` steps (Halo gets cheaper) but the sweep must
//! redundantly update `h−1` ghost shells (Compute gets slower) — one
//! parameter, two routines, exactly the cross-influence the CETS
//! sensitivity analysis is built to catch. Tile sizes also leak into Halo
//! (packing strided faces is slower when the x-tile is small), while
//! `reduce_every` stays orthogonal. The expected plan is therefore a
//! merged `Compute+Halo` search plus an independent `Reduce` search.

use cets_core::{Objective, Observation};
use cets_space::{Config, Constraint, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilProblem {
    /// Grid points per side (`n³` cells total).
    pub n: usize,
    /// Available MPI ranks.
    pub ranks: usize,
    /// Time steps per run.
    pub steps: usize,
}

impl StencilProblem {
    /// The default benchmark instance: 512³ cells, 16 ranks, 100 steps.
    pub fn benchmark() -> Self {
        StencilProblem {
            n: 512,
            ranks: 16,
            steps: 100,
        }
    }
}

/// Machine constants for the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilArch {
    /// Peak per-rank flop rate, flop/s.
    pub flops: f64,
    /// Per-rank memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// L2-equivalent cache per rank, bytes.
    pub cache_bytes: f64,
    /// Network latency, seconds.
    pub net_latency: f64,
    /// Network bandwidth per rank, bytes/s.
    pub net_bw: f64,
    /// Fixed per-exchange synchronization/progress overhead, seconds
    /// (neighbour sync, MPI progression, kernel interruption). This is
    /// what the deep-halo optimization amortizes.
    pub sync_overhead: f64,
}

impl Default for StencilArch {
    fn default() -> Self {
        StencilArch {
            flops: 80.0e9,
            mem_bw: 25.0e9,
            cache_bytes: 2.0 * 1024.0 * 1024.0,
            net_latency: 1.5e-6,
            net_bw: 10.0e9,
            sync_overhead: 150.0e-6,
        }
    }
}

/// The stencil mini-app simulator.
#[derive(Debug, Clone)]
pub struct StencilApp {
    problem: StencilProblem,
    arch: StencilArch,
    space: SearchSpace,
    noise_sigma: f64,
    seed: u64,
}

impl StencilApp {
    /// Build with the benchmark problem and 1% noise.
    pub fn new(problem: StencilProblem) -> Self {
        let space = Self::build_space(&problem);
        StencilApp {
            problem,
            arch: StencilArch::default(),
            space,
            noise_sigma: 0.01,
            seed: 0,
        }
    }

    /// Override noise (0 disables).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Override the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The problem instance.
    pub fn problem(&self) -> &StencilProblem {
        &self.problem
    }

    /// Parameter→routine ownership for the methodology.
    pub fn owners() -> Vec<(String, String)> {
        [
            ("px", "Decomp"),
            ("py", "Decomp"),
            ("tile_x", "Compute"),
            ("tile_y", "Compute"),
            ("tile_z", "Compute"),
            ("unroll", "Compute"),
            ("vec_width", "Compute"),
            ("halo_depth", "Halo"),
            ("aggregate", "Halo"),
            ("comm_overlap", "Halo"),
            ("reduce_every", "Reduce"),
        ]
        .iter()
        .map(|(p, r)| (p.to_string(), r.to_string()))
        .collect()
    }

    fn build_space(problem: &StencilProblem) -> SearchSpace {
        let ranks = problem.ranks as i64;
        let pow2: Vec<f64> = (2..=8).map(|k| (1usize << k) as f64).collect(); // 4..256
        SearchSpace::builder()
            .integer("px", 1, ranks)
            .integer("py", 1, ranks)
            .ordinal("tile_x", pow2.clone())
            .ordinal("tile_y", pow2.clone())
            .ordinal("tile_z", pow2)
            .ordinal("unroll", vec![1.0, 2.0, 4.0, 8.0])
            .ordinal("vec_width", vec![2.0, 4.0, 8.0])
            .integer("halo_depth", 1, 4)
            .integer("aggregate", 1, 16)
            .integer("comm_overlap", 0, 3)
            .integer("reduce_every", 1, 50)
            .constraint(Constraint::new(
                "rank-grid",
                "px·py <= ranks",
                move |s, c| {
                    s.get_i64(c, "px").unwrap_or(i64::MAX) * s.get_i64(c, "py").unwrap_or(1)
                        <= ranks
                },
            ))
            .build()
    }

    /// Deterministic simulation (no noise), returning
    /// `(compute, halo, reduce, total)` in seconds for the whole run.
    pub fn simulate(&self, cfg: &Config) -> (f64, f64, f64, f64) {
        let sp = &self.space;
        let a = &self.arch;
        let g = |n: &str| sp.get_f64(cfg, n).unwrap();
        let (px, py) = (g("px").max(1.0), g("py").max(1.0));
        let (tx, ty, tz) = (g("tile_x"), g("tile_y"), g("tile_z"));
        let unroll = g("unroll");
        let vecw = g("vec_width");
        let halo = g("halo_depth").max(1.0);
        let aggregate = g("aggregate").max(1.0);
        let overlap = g("comm_overlap");
        let reduce_every = g("reduce_every").max(1.0);

        let n = self.problem.n as f64;
        let steps = self.problem.steps as f64;
        // Local block (ceil-split drives the critical rank).
        let lx = (n / px).ceil();
        let ly = (n / py).ceil();
        let cells = lx * ly * n;

        // ---- Compute: 8 flops/cell, memory-bound floor, tiling efficiency.
        // A tile of tx·ty·tz cells (3 arrays × 8 B) should fit in cache.
        let tile_bytes = tx * ty * tz * 8.0 * 3.0;
        let fit = (a.cache_bytes / tile_bytes).min(1.0);
        // Cache reuse: full reuse at fit=1 halves traffic; thrashing at
        // fit<1 degrades smoothly.
        let traffic_per_cell = 16.0 * (2.0 - fit); // bytes
                                                   // Vectorization/unroll efficiency: best at vec 8 with unroll 4;
                                                   // tiny x-tiles defeat vectorization (partial vectors).
        let vec_eff = (vecw / 8.0).powf(0.5) * (tx / (tx + vecw)).min(1.0);
        let unroll_eff = 1.0 / (1.0 + 0.1 * ((unroll.log2() - 2.0).abs()));
        let eff = (vec_eff * unroll_eff).clamp(0.05, 1.0);
        // Deep halo: h−1 redundant ghost shells swept each step, on both
        // faces of both decomposed dimensions, including the deepening
        // stencil footprint (≈2x the plain face volume once corner regions
        // and the second array's ghost writes are counted).
        let ghost_cells = 4.0 * (halo - 1.0) * (lx * n + ly * n);
        let sweep_cells = cells + ghost_cells;
        let t_flops = sweep_cells * 8.0 / (a.flops * eff);
        // Poor vectorization also degrades *achieved* memory bandwidth
        // (scalar loads can't saturate the load/store units), so the
        // memory-bound branch sees a milder version of the same penalty.
        let mem_eff = 0.6 + 0.4 * eff;
        let t_mem = sweep_cells * traffic_per_cell / (a.mem_bw * mem_eff);
        let compute_per_step = t_flops.max(t_mem);
        let compute = steps * compute_per_step;

        // ---- Halo: exchange every `halo` steps with 4 neighbours.
        let exchanges = (steps / halo).ceil();
        let face_bytes = (lx * n + ly * n) * halo * 8.0;
        // Packing strided faces costs more when the x-tile is small
        // (gather inefficiency) — the Compute→Halo coupling.
        let pack_penalty = 1.0 + 16.0 / tx;
        let msgs = (4.0 / aggregate).max(1.0).ceil();
        // Overlap protocol hides a fraction of the wire time.
        let hidden = match overlap as u32 {
            0 => 1.0,
            1 => 0.7,
            2 => 0.5,
            _ => 0.45, // aggressive overlap: slightly worse than 2 due to
                       // progression overhead... kept monotone-ish
        };
        let wire = msgs * a.net_latency + face_bytes * 2.0 / a.net_bw * hidden;
        let pack = face_bytes * 2.0 * pack_penalty / a.mem_bw;
        let halo_t = exchanges * (a.sync_overhead + wire + pack);

        // ---- Reduce: allreduce of one scalar every `reduce_every` steps.
        let p = px * py;
        let reductions = (steps / reduce_every).ceil();
        let reduce_t = reductions * (p.log2().ceil().max(1.0) * a.net_latency + 64.0 / a.net_bw)
            + reductions * cells * 8.0 / a.mem_bw * 0.25; // local norm pass

        let total = compute + halo_t + reduce_t;
        (compute, halo_t, reduce_t, total)
    }

    fn noise_factor(&self, cfg: &Config, salt: u64) -> f64 {
        if self.noise_sigma == 0.0 {
            return 1.0;
        }
        let mut h = self.seed ^ salt ^ 0x517c_c1b7_2722_0a95;
        for v in cfg {
            h = h
                .rotate_left(21)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(v.as_f64().to_bits());
        }
        let mut rng = StdRng::seed_from_u64(h);
        (1.0 + cets_core::normal::sample(&mut rng, 0.0, self.noise_sigma)).max(0.5)
    }
}

impl Objective for StencilApp {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn routine_names(&self) -> Vec<String> {
        vec![
            "Compute".into(),
            "Halo".into(),
            "Reduce".into(),
            "Decomp".into(),
        ]
    }

    fn evaluate(&self, cfg: &Config) -> Observation {
        let (c, h, r, t) = self.simulate(cfg);
        let noisy = |v: f64, s: u64| v * self.noise_factor(cfg, s);
        let total = noisy(t, 3);
        // "Decomp" observable = the whole run (the decomposition is tuned
        // against the total, like the paper's MPI grid).
        Observation {
            total,
            routines: vec![noisy(c, 0), noisy(h, 1), noisy(r, 2), total],
        }
    }

    fn default_config(&self) -> Config {
        self.space
            .config_from_pairs(&[
                ("px", 4.0),
                ("py", 4.0),
                ("tile_x", 16.0),
                ("tile_y", 16.0),
                ("tile_z", 16.0),
                ("unroll", 1.0),
                ("vec_width", 2.0),
                ("halo_depth", 1.0),
                ("aggregate", 1.0),
                ("comm_overlap", 0.0),
                ("reduce_every", 1.0),
            ])
            .expect("default stencil config valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cets_core::{routine_sensitivity, VariationPolicy};

    fn app() -> StencilApp {
        StencilApp::new(StencilProblem::benchmark()).with_noise(0.0)
    }

    #[test]
    fn space_shape() {
        let a = app();
        assert_eq!(a.space().dim(), 11);
        assert_eq!(StencilApp::owners().len(), 11);
        assert!(a.space().is_valid(&a.default_config()));
    }

    #[test]
    fn simulate_finite_positive() {
        let a = app();
        let (c, h, r, t) = a.simulate(&a.default_config());
        assert!(c > 0.0 && h > 0.0 && r > 0.0);
        assert!((t - (c + h + r)).abs() < 1e-12);
    }

    #[test]
    fn rank_grid_constraint() {
        let a = app();
        let sp = a.space();
        let bad = sp
            .with_value(&a.default_config(), "px", cets_space::ParamValue::Int(8))
            .and_then(|c| sp.with_value(&c, "py", cets_space::ParamValue::Int(8)));
        assert!(!sp.is_valid(&bad.unwrap()));
    }

    #[test]
    fn deep_halo_trades_compute_for_comm() {
        let a = app();
        let sp = a.space();
        let shallow = a.default_config(); // halo_depth = 1
        let deep = sp
            .with_value(&shallow, "halo_depth", cets_space::ParamValue::Int(4))
            .unwrap();
        let (c1, h1, _, _) = a.simulate(&shallow);
        let (c4, h4, _, _) = a.simulate(&deep);
        assert!(h4 < h1, "deep halo must cut exchange time: {h4} !< {h1}");
        assert!(
            c4 > c1,
            "deep halo must add redundant compute: {c4} !> {c1}"
        );
    }

    #[test]
    fn small_x_tile_hurts_halo_packing() {
        let a = app();
        let sp = a.space();
        let base = a.default_config();
        let narrow = sp
            .with_value(&base, "tile_x", cets_space::ParamValue::Real(4.0))
            .unwrap();
        let wide = sp
            .with_value(&base, "tile_x", cets_space::ParamValue::Real(256.0))
            .unwrap();
        let (_, h_narrow, _, _) = a.simulate(&narrow);
        let (_, h_wide, _, _) = a.simulate(&wide);
        assert!(h_narrow > h_wide, "{h_narrow} !> {h_wide}");
    }

    #[test]
    fn cache_resident_tiles_beat_thrashing_tiles() {
        let a = app();
        let sp = a.space();
        let base = a.default_config();
        // 16x16x16 tile = 98 KB (fits 2 MB); 256x256x256 = 400 MB (thrash).
        let big = sp
            .with_value(&base, "tile_x", cets_space::ParamValue::Real(256.0))
            .and_then(|c| sp.with_value(&c, "tile_y", cets_space::ParamValue::Real(256.0)))
            .and_then(|c| sp.with_value(&c, "tile_z", cets_space::ParamValue::Real(256.0)))
            .unwrap();
        let (c_fit, ..) = a.simulate(&base);
        let (c_thrash, ..) = a.simulate(&big);
        assert!(
            c_thrash > c_fit,
            "cache thrash should cost compute: {c_thrash} !> {c_fit}"
        );
    }

    #[test]
    fn wider_simd_is_faster() {
        let a = app();
        let sp = a.space();
        let base = a.default_config(); // vec_width = 2
        let wide = sp
            .with_value(&base, "vec_width", cets_space::ParamValue::Real(8.0))
            .unwrap();
        let (c2, ..) = a.simulate(&base);
        let (c8, ..) = a.simulate(&wide);
        assert!(c8 < c2, "{c8} !< {c2}");
    }

    #[test]
    fn reduce_orthogonal_to_compute_params() {
        let a = app();
        let sp = a.space();
        let base = a.default_config();
        let tiled = sp
            .with_value(&base, "tile_y", cets_space::ParamValue::Real(128.0))
            .unwrap();
        let (_, _, r1, _) = a.simulate(&base);
        let (_, _, r2, _) = a.simulate(&tiled);
        assert_eq!(r1, r2);
    }

    /// The methodology's sensitivity pass detects the deep-halo coupling:
    /// halo_depth influences both Compute and Halo above a 10% cut-off,
    /// while reduce_every influences only Reduce.
    #[test]
    fn sensitivity_detects_halo_coupling() {
        let a = app();
        let scores = routine_sensitivity(
            &a,
            &a.default_config(),
            &VariationPolicy::Spread { count: 4 },
        )
        .unwrap();
        let s = |p: &str, r: &str| scores.score_by_name(p, r).unwrap();
        assert!(s("halo_depth", "Halo") > 0.1, "{}", s("halo_depth", "Halo"));
        assert!(
            s("halo_depth", "Compute") > 0.01,
            "halo->compute coupling missed: {}",
            s("halo_depth", "Compute")
        );
        assert!(s("reduce_every", "Reduce") > 0.1);
        assert!(s("reduce_every", "Compute") < 1e-9);
        assert!(s("tile_x", "Halo") > 0.01, "{}", s("tile_x", "Halo"));
    }

    #[test]
    fn noise_deterministic() {
        let a = StencilApp::new(StencilProblem::benchmark()).with_seed(7);
        let cfg = a.default_config();
        assert_eq!(a.evaluate(&cfg), a.evaluate(&cfg));
        let b = StencilApp::new(StencilProblem::benchmark()).with_seed(8);
        assert_ne!(a.evaluate(&cfg), b.evaluate(&cfg));
    }
}
