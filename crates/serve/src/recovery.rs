//! WAL replay: rebuilding service state from the durable record stream.
//!
//! [`ServiceState::replay`] folds a WAL record sequence (the valid prefix
//! [`crate::wal::read_frames`] recovered) into per-campaign state:
//! per-stage `EvalRecord` histories, the stage cursor, restart counts, and
//! terminal outcomes. Replay is **strict** — the WAL is written by one
//! code path, so any semantically impossible sequence (an evaluation for
//! an unknown campaign, a non-dense attempt index, a record after a
//! terminal) means the file was not produced by this service and surfaces
//! as [`ServeError::Corrupt`] rather than being papered over.
//!
//! The rebuilt histories feed straight back into
//! `BoSearch::run_resilient_with_records`, whose trajectory is a pure
//! function of its record prefix — which is what makes recovery
//! *bit-for-bit*: the restarted search proposes exactly the points the
//! uninterrupted one would have.

use crate::spec::CampaignSpec;
use crate::wal::WalRecord;
use crate::{Result, ServeError};
use cets_core::{EvalRecord, FailedEval, FailureKind, FailureStats};

/// How a campaign ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminal {
    /// All stages completed.
    Finished {
        /// Best observed objective value across all stages.
        best_value: f64,
        /// Hash of the final folded configuration.
        config_hash: String,
    },
    /// The restart budget was exhausted.
    Failed {
        /// Terminal error description.
        reason: String,
    },
}

/// The observable lifecycle phase of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Submitted, no evaluation recorded yet.
    Pending,
    /// At least one record, not yet terminal.
    Running,
    /// Finished with every attempt successful and no restarts.
    Completed,
    /// Finished, but some attempts failed or the campaign was restarted.
    Degraded,
    /// Exhausted its restart budget.
    Failed,
}

impl CampaignPhase {
    /// Stable lowercase tag (summary rendering).
    pub fn as_str(&self) -> &'static str {
        match self {
            CampaignPhase::Pending => "pending",
            CampaignPhase::Running => "running",
            CampaignPhase::Completed => "completed",
            CampaignPhase::Degraded => "degraded",
            CampaignPhase::Failed => "failed",
        }
    }
}

/// Replayed state of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignState {
    /// The accepted job description (embedded in `CampaignSubmitted`).
    pub spec: CampaignSpec,
    /// Evaluation history per stage, in attempt order. Always holds
    /// `spec.n_stages()` entries; stages past the cursor are empty.
    pub stages: Vec<Vec<EvalRecord>>,
    /// Stages completed so far (the stage cursor: records append to
    /// `stages[advanced]` while `advanced < n_stages`).
    pub advanced: usize,
    /// Supervisor restarts recorded for this campaign.
    pub restarts: usize,
    /// Terminal outcome, once reached.
    pub terminal: Option<Terminal>,
}

impl CampaignState {
    /// Fresh state for a just-submitted campaign.
    pub fn new(spec: CampaignSpec) -> Self {
        let n = spec.n_stages();
        CampaignState {
            spec,
            stages: vec![Vec::new(); n],
            advanced: 0,
            restarts: 0,
            terminal: None,
        }
    }

    /// Lifecycle phase implied by the replayed records.
    pub fn phase(&self) -> CampaignPhase {
        match &self.terminal {
            Some(Terminal::Failed { .. }) => CampaignPhase::Failed,
            Some(Terminal::Finished { .. }) => {
                if self.restarts == 0 && self.failure_stats().n_failed() == 0 {
                    CampaignPhase::Completed
                } else {
                    CampaignPhase::Degraded
                }
            }
            None => {
                if self.stages.iter().all(|s| s.is_empty()) {
                    CampaignPhase::Pending
                } else {
                    CampaignPhase::Running
                }
            }
        }
    }

    /// Attempt accounting aggregated over every stage.
    pub fn failure_stats(&self) -> FailureStats {
        let mut stats = FailureStats::default();
        for stage in &self.stages {
            stats.merge(&FailureStats::from_records(stage));
        }
        stats
    }

    /// Total recorded attempts across all stages.
    pub fn total_attempts(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    fn apply(&mut self, rec: &WalRecord) -> Result<()> {
        let corrupt = |msg: String| Err(ServeError::Corrupt(msg));
        if self.terminal.is_some() {
            return corrupt(format!(
                "campaign `{}`: record after terminal state",
                self.spec.id
            ));
        }
        match rec {
            WalRecord::EvalCompleted {
                stage, idx, u, y, ..
            } => self.push_eval(*stage, *idx, EvalRecord::ok(u.clone(), *y)),
            WalRecord::EvalFailed {
                stage,
                idx,
                u,
                kind,
                message,
                ..
            } => {
                let kind = FailureKind::parse(kind).ok_or_else(|| {
                    ServeError::Corrupt(format!(
                        "campaign `{}`: unknown failure kind `{kind}`",
                        self.spec.id
                    ))
                })?;
                self.push_eval(
                    *stage,
                    *idx,
                    EvalRecord::failed(
                        u.clone(),
                        FailedEval {
                            kind,
                            message: message.clone(),
                        },
                    ),
                )
            }
            WalRecord::StageAdvanced { stage, .. } => {
                if *stage != self.advanced {
                    return corrupt(format!(
                        "campaign `{}`: stage {stage} advanced while cursor is at {}",
                        self.spec.id, self.advanced
                    ));
                }
                if self.advanced >= self.stages.len() {
                    return corrupt(format!(
                        "campaign `{}`: advance past the last stage",
                        self.spec.id
                    ));
                }
                self.advanced += 1;
                Ok(())
            }
            WalRecord::CampaignRestarted { attempt, .. } => {
                if *attempt != self.restarts + 1 {
                    return corrupt(format!(
                        "campaign `{}`: restart attempt {attempt} after {} restarts",
                        self.spec.id, self.restarts
                    ));
                }
                self.restarts = *attempt;
                Ok(())
            }
            WalRecord::CampaignFinished {
                best_value,
                config_hash,
                ..
            } => {
                if self.advanced != self.stages.len() {
                    return corrupt(format!(
                        "campaign `{}`: finished with {}/{} stages advanced",
                        self.spec.id,
                        self.advanced,
                        self.stages.len()
                    ));
                }
                self.terminal = Some(Terminal::Finished {
                    best_value: *best_value,
                    config_hash: config_hash.clone(),
                });
                Ok(())
            }
            WalRecord::CampaignFailed { reason, .. } => {
                self.terminal = Some(Terminal::Failed {
                    reason: reason.clone(),
                });
                Ok(())
            }
            WalRecord::CampaignSubmitted { .. } | WalRecord::SpoolRejected { .. } => {
                corrupt("service-level record routed to a campaign".into())
            }
        }
    }

    fn push_eval(&mut self, stage: usize, idx: usize, rec: EvalRecord) -> Result<()> {
        if stage != self.advanced || stage >= self.stages.len() {
            return Err(ServeError::Corrupt(format!(
                "campaign `{}`: evaluation for stage {stage} while cursor is at {} of {}",
                self.spec.id,
                self.advanced,
                self.stages.len()
            )));
        }
        let cur = &mut self.stages[stage];
        if idx != cur.len() {
            return Err(ServeError::Corrupt(format!(
                "campaign `{}`: attempt index {idx} is not dense (stage {stage} holds {})",
                self.spec.id,
                cur.len()
            )));
        }
        cur.push(rec);
        Ok(())
    }
}

/// Replayed state of the whole service.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceState {
    /// Campaigns in submission order.
    pub campaigns: Vec<CampaignState>,
    /// Spool files rejected at intake (`(file name, reason)`) — re-scans
    /// skip these without re-validating.
    pub rejected: Vec<(String, String)>,
}

impl ServiceState {
    /// Fold a WAL record sequence into service state. Strict: any
    /// sequence this service could not have written is
    /// [`ServeError::Corrupt`].
    pub fn replay(records: &[WalRecord]) -> Result<ServiceState> {
        let mut state = ServiceState::default();
        for rec in records {
            match rec {
                WalRecord::CampaignSubmitted { spec } => {
                    if state.campaign(&spec.id).is_some() {
                        return Err(ServeError::Corrupt(format!(
                            "campaign `{}` submitted twice",
                            spec.id
                        )));
                    }
                    state.campaigns.push(CampaignState::new(spec.clone()));
                }
                WalRecord::SpoolRejected { file, reason } => {
                    state.rejected.push((file.clone(), reason.clone()));
                }
                other => {
                    let id = other.campaign_id().ok_or_else(|| {
                        ServeError::Corrupt("campaign record without an id".into())
                    })?;
                    let campaign = state.campaign_mut(id).ok_or_else(|| {
                        ServeError::Corrupt(format!(
                            "record for unknown campaign `{id}` (no CampaignSubmitted)"
                        ))
                    })?;
                    campaign.apply(other)?;
                }
            }
        }
        Ok(state)
    }

    /// Look up a campaign by id.
    pub fn campaign(&self, id: &str) -> Option<&CampaignState> {
        self.campaigns.iter().find(|c| c.spec.id == id)
    }

    fn campaign_mut(&mut self, id: &str) -> Option<&mut CampaignState> {
        self.campaigns.iter_mut().find(|c| c.spec.id == id)
    }

    /// Has a spool file already been rejected?
    pub fn is_rejected(&self, file: &str) -> bool {
        self.rejected.iter().any(|(f, _)| f == file)
    }

    /// Campaigns that still need supervisor work (not terminal).
    pub fn open_campaigns(&self) -> impl Iterator<Item = &CampaignState> {
        self.campaigns.iter().filter(|c| c.terminal.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submitted(id: &str) -> WalRecord {
        let mut spec = CampaignSpec::new(id, "sphere", 3);
        spec.stages = vec![vec!["x0".into()], vec!["x1".into(), "x2".into()]];
        WalRecord::CampaignSubmitted { spec }
    }

    fn eval_ok(id: &str, stage: usize, idx: usize, y: f64) -> WalRecord {
        WalRecord::EvalCompleted {
            id: id.into(),
            stage,
            idx,
            u: vec![0.5],
            y,
        }
    }

    #[test]
    fn replay_rebuilds_stage_cursor_and_histories() {
        let records = vec![
            submitted("a"),
            eval_ok("a", 0, 0, 3.0),
            eval_ok("a", 0, 1, 2.0),
            WalRecord::EvalFailed {
                id: "a".into(),
                stage: 0,
                idx: 2,
                u: vec![0.25],
                kind: "crashed".into(),
                message: "boom".into(),
            },
            WalRecord::StageAdvanced {
                id: "a".into(),
                stage: 0,
            },
            eval_ok("a", 1, 0, 1.5),
        ];
        let state = ServiceState::replay(&records).unwrap();
        let c = state.campaign("a").unwrap();
        assert_eq!(c.advanced, 1);
        assert_eq!(c.stages[0].len(), 3);
        assert_eq!(c.stages[1].len(), 1);
        assert_eq!(c.phase(), CampaignPhase::Running);
        let stats = c.failure_stats();
        assert_eq!((stats.n_ok, stats.n_crashed), (3, 1));
    }

    #[test]
    fn finished_with_failures_is_degraded_without_is_completed() {
        let mut clean = vec![
            submitted("a"),
            eval_ok("a", 0, 0, 3.0),
            WalRecord::StageAdvanced {
                id: "a".into(),
                stage: 0,
            },
            eval_ok("a", 1, 0, 1.0),
            WalRecord::StageAdvanced {
                id: "a".into(),
                stage: 1,
            },
            WalRecord::CampaignFinished {
                id: "a".into(),
                best_value: 1.0,
                config_hash: "fnv1a:00".into(),
            },
        ];
        let state = ServiceState::replay(&clean).unwrap();
        assert_eq!(
            state.campaign("a").unwrap().phase(),
            CampaignPhase::Completed
        );

        // Same trajectory with one failed attempt mixed in → Degraded.
        clean.insert(
            1,
            WalRecord::EvalFailed {
                id: "a".into(),
                stage: 0,
                idx: 0,
                u: vec![0.1],
                kind: "timeout".into(),
                message: "slow".into(),
            },
        );
        // Re-index the following success to keep the stream dense.
        if let WalRecord::EvalCompleted { idx, .. } = &mut clean[2] {
            *idx = 1;
        }
        let state = ServiceState::replay(&clean).unwrap();
        assert_eq!(
            state.campaign("a").unwrap().phase(),
            CampaignPhase::Degraded
        );
    }

    #[test]
    fn impossible_sequences_are_corrupt_not_ignored() {
        // Unknown campaign.
        assert!(matches!(
            ServiceState::replay(&[eval_ok("ghost", 0, 0, 1.0)]),
            Err(ServeError::Corrupt(_))
        ));
        // Duplicate submission.
        assert!(matches!(
            ServiceState::replay(&[submitted("a"), submitted("a")]),
            Err(ServeError::Corrupt(_))
        ));
        // Non-dense attempt index.
        assert!(matches!(
            ServiceState::replay(&[submitted("a"), eval_ok("a", 0, 5, 1.0)]),
            Err(ServeError::Corrupt(_))
        ));
        // Evaluation for a stage the cursor is not at.
        assert!(matches!(
            ServiceState::replay(&[submitted("a"), eval_ok("a", 1, 0, 1.0)]),
            Err(ServeError::Corrupt(_))
        ));
        // Record after terminal.
        assert!(matches!(
            ServiceState::replay(&[
                submitted("a"),
                WalRecord::CampaignFailed {
                    id: "a".into(),
                    reason: "out of restarts".into()
                },
                eval_ok("a", 0, 0, 1.0),
            ]),
            Err(ServeError::Corrupt(_))
        ));
        // Finishing with stages left.
        assert!(matches!(
            ServiceState::replay(&[
                submitted("a"),
                WalRecord::CampaignFinished {
                    id: "a".into(),
                    best_value: 1.0,
                    config_hash: "fnv1a:00".into()
                },
            ]),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn rejected_spool_files_are_remembered() {
        let records = vec![WalRecord::SpoolRejected {
            file: "bad.json".into(),
            reason: "C002: unknown objective".into(),
        }];
        let state = ServiceState::replay(&records).unwrap();
        assert!(state.is_rejected("bad.json"));
        assert!(!state.is_rejected("good.json"));
    }
}
