//! The service write-ahead log.
//!
//! ## On-disk format
//!
//! ```text
//! CETSWAL1                              8-byte magic, written at creation
//! [u32 LE payload length]               per record
//! [u64 LE FNV-1a of payload]
//! [payload: one JSON object]
//! ...
//! ```
//!
//! Payloads are single-key JSON objects (`{"eval_completed": {...}}`) via
//! the vendored serde facade, whose float formatting is shortest-roundtrip
//! — values survive the log **bit-exactly**, which is what makes WAL
//! replay equivalent to in-memory history.
//!
//! ## Recovery semantics
//!
//! [`read_frames`] scans the log and stops at the first bad frame — a
//! truncated header, a length pointing past the end of the file (torn
//! tail), a checksum mismatch (bit-flip), an oversized length, or an
//! unparseable payload. Everything before the bad frame is returned as
//! the valid prefix; nothing after it is trusted ("never fabricates a
//! record"). [`Wal::open`] then *repairs* the file by truncating to the
//! valid prefix before appending anything new, so a torn tail cannot
//! corrupt later appends.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy::Always`] calls `sync_data` after every append: a record
//! returned as durable survives `kill -9` and power loss. `Never` leaves
//! flushing to the OS — faster, still crash-consistent (the reader
//! truncates at the torn tail), but the last few records may be lost on
//! power failure. Tests use `Never` plus [`KillSpec`] to simulate both.

use crate::spec::CampaignSpec;
use crate::{Result, ServeError};
use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Log file magic: identifies the format and its version.
pub const WAL_MAGIC: &[u8; 8] = b"CETSWAL1";

/// Conventional WAL file name inside a service data directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// Hard cap on a single record payload; a length beyond this is corruption,
/// not a record.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of frame header before the payload (length + checksum).
const FRAME_HEADER: usize = 4 + 8;

/// FNV-1a 64-bit hash (the WAL record checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every append: durable against power loss.
    Always,
    /// Leave flushing to the OS: crash-consistent but the tail may be
    /// lost on power failure. Used by tests and simulation.
    Never,
}

/// A simulated process kill, injected at the WAL append boundary.
///
/// When the log holds `after_records` records and the next append
/// arrives, the WAL writes only the first `torn_bytes` bytes of the new
/// frame (simulating a write torn mid-frame by the crash) and returns
/// [`ServeError::SimulatedCrash`]. Every subsequent append also fails, so
/// the whole service winds down exactly as if the process had died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Kill once this many records are durable.
    pub after_records: usize,
    /// Bytes of the next frame that land on disk before "death" (torn
    /// write). 0 = clean kill at the record boundary.
    pub torn_bytes: usize,
}

/// One durable service event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A campaign passed intake validation; the spec is embedded so
    /// recovery never needs the spool file again.
    CampaignSubmitted {
        /// The accepted job description.
        spec: CampaignSpec,
    },
    /// A spool file failed validation (keyed by file name: re-scans skip
    /// it without re-validating).
    SpoolRejected {
        /// Spool file name (not path).
        file: String,
        /// First validation error.
        reason: String,
    },
    /// One successful evaluation attempt of a campaign stage.
    EvalCompleted {
        /// Campaign id.
        id: String,
        /// Stage ordinal the attempt belongs to.
        stage: usize,
        /// Attempt ordinal within the stage (dense, 0-based).
        idx: usize,
        /// Active-space unit point evaluated.
        u: Vec<f64>,
        /// Observed objective total.
        y: f64,
    },
    /// One failed evaluation attempt (after any retries).
    EvalFailed {
        /// Campaign id.
        id: String,
        /// Stage ordinal the attempt belongs to.
        stage: usize,
        /// Attempt ordinal within the stage (dense, 0-based).
        idx: usize,
        /// Active-space unit point attempted.
        u: Vec<f64>,
        /// Stable failure-kind tag (`FailureKind::as_str`).
        kind: String,
        /// Human-readable failure description.
        message: String,
    },
    /// A stage completed; its best configuration folds into the defaults
    /// of every later stage.
    StageAdvanced {
        /// Campaign id.
        id: String,
        /// The stage that finished (0-based).
        stage: usize,
    },
    /// The supervisor restarted a campaign after a campaign-level error.
    CampaignRestarted {
        /// Campaign id.
        id: String,
        /// Restart ordinal (1-based).
        attempt: usize,
        /// What went wrong.
        reason: String,
    },
    /// All stages finished.
    CampaignFinished {
        /// Campaign id.
        id: String,
        /// Best observed objective value across all stages.
        best_value: f64,
        /// [`crate::spec::config_hash`] of the final folded configuration.
        config_hash: String,
    },
    /// The campaign exhausted its restart budget.
    CampaignFailed {
        /// Campaign id.
        id: String,
        /// Terminal error description.
        reason: String,
    },
}

impl WalRecord {
    /// The campaign id this record belongs to, if any.
    pub fn campaign_id(&self) -> Option<&str> {
        match self {
            WalRecord::CampaignSubmitted { spec } => Some(&spec.id),
            WalRecord::SpoolRejected { .. } => None,
            WalRecord::EvalCompleted { id, .. }
            | WalRecord::EvalFailed { id, .. }
            | WalRecord::StageAdvanced { id, .. }
            | WalRecord::CampaignRestarted { id, .. }
            | WalRecord::CampaignFinished { id, .. }
            | WalRecord::CampaignFailed { id, .. } => Some(id),
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Serialize for WalRecord {
    fn serialize(&self) -> Value {
        let (tag, body) = match self {
            WalRecord::CampaignSubmitted { spec } => {
                ("campaign_submitted", obj(vec![("spec", spec.serialize())]))
            }
            WalRecord::SpoolRejected { file, reason } => (
                "spool_rejected",
                obj(vec![
                    ("file", Value::String(file.clone())),
                    ("reason", Value::String(reason.clone())),
                ]),
            ),
            WalRecord::EvalCompleted {
                id,
                stage,
                idx,
                u,
                y,
            } => (
                "eval_completed",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("stage", stage.serialize()),
                    ("idx", idx.serialize()),
                    ("u", u.serialize()),
                    ("y", y.serialize()),
                ]),
            ),
            WalRecord::EvalFailed {
                id,
                stage,
                idx,
                u,
                kind,
                message,
            } => (
                "eval_failed",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("stage", stage.serialize()),
                    ("idx", idx.serialize()),
                    ("u", u.serialize()),
                    ("kind", Value::String(kind.clone())),
                    ("message", Value::String(message.clone())),
                ]),
            ),
            WalRecord::StageAdvanced { id, stage } => (
                "stage_advanced",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("stage", stage.serialize()),
                ]),
            ),
            WalRecord::CampaignRestarted {
                id,
                attempt,
                reason,
            } => (
                "campaign_restarted",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("attempt", attempt.serialize()),
                    ("reason", Value::String(reason.clone())),
                ]),
            ),
            WalRecord::CampaignFinished {
                id,
                best_value,
                config_hash,
            } => (
                "campaign_finished",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("best_value", best_value.serialize()),
                    ("config_hash", Value::String(config_hash.clone())),
                ]),
            ),
            WalRecord::CampaignFailed { id, reason } => (
                "campaign_failed",
                obj(vec![
                    ("id", Value::String(id.clone())),
                    ("reason", Value::String(reason.clone())),
                ]),
            ),
        };
        Value::Object(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for WalRecord {
    fn deserialize(v: &Value) -> std::result::Result<Self, DeError> {
        let (tag, body) = v.as_variant()?;
        let s = |field: &str| -> std::result::Result<String, DeError> {
            String::deserialize(body.get_field(field))
                .map_err(|e| DeError(format!("{tag}.{field}: {e}")))
        };
        let n = |field: &str| -> std::result::Result<usize, DeError> {
            body.get_field(field)
                .as_u64()
                .map(|x| x as usize)
                .map_err(|e| DeError(format!("{tag}.{field}: {e}")))
        };
        let f = |field: &str| -> std::result::Result<f64, DeError> {
            let x = body
                .get_field(field)
                .as_f64()
                .map_err(|e| DeError(format!("{tag}.{field}: {e}")))?;
            if x.is_nan() && matches!(body.get_field(field), Value::Null) {
                return Err(DeError(format!("{tag}.{field}: missing")));
            }
            Ok(x)
        };
        match tag {
            "campaign_submitted" => Ok(WalRecord::CampaignSubmitted {
                spec: CampaignSpec::deserialize(body.get_field("spec"))
                    .map_err(|e| DeError(format!("{tag}.spec: {e}")))?,
            }),
            "spool_rejected" => Ok(WalRecord::SpoolRejected {
                file: s("file")?,
                reason: s("reason")?,
            }),
            "eval_completed" => Ok(WalRecord::EvalCompleted {
                id: s("id")?,
                stage: n("stage")?,
                idx: n("idx")?,
                u: Deserialize::deserialize(body.get_field("u"))
                    .map_err(|e| DeError(format!("{tag}.u: {e}")))?,
                y: f("y")?,
            }),
            "eval_failed" => Ok(WalRecord::EvalFailed {
                id: s("id")?,
                stage: n("stage")?,
                idx: n("idx")?,
                u: Deserialize::deserialize(body.get_field("u"))
                    .map_err(|e| DeError(format!("{tag}.u: {e}")))?,
                kind: s("kind")?,
                message: s("message")?,
            }),
            "stage_advanced" => Ok(WalRecord::StageAdvanced {
                id: s("id")?,
                stage: n("stage")?,
            }),
            "campaign_restarted" => Ok(WalRecord::CampaignRestarted {
                id: s("id")?,
                attempt: n("attempt")?,
                reason: s("reason")?,
            }),
            "campaign_finished" => Ok(WalRecord::CampaignFinished {
                id: s("id")?,
                best_value: f("best_value")?,
                config_hash: s("config_hash")?,
            }),
            "campaign_failed" => Ok(WalRecord::CampaignFailed {
                id: s("id")?,
                reason: s("reason")?,
            }),
            other => Err(DeError(format!("unknown WAL record type `{other}`"))),
        }
    }
}

/// Encode one record as a framed byte sequence (header + JSON payload).
pub fn encode_frame(rec: &WalRecord) -> Result<Vec<u8>> {
    let payload = serde_json::to_string(&rec.serialize())
        .map_err(|e| ServeError::Io(format!("encode WAL record: {e}")))?;
    let payload = payload.as_bytes();
    if payload.len() > MAX_RECORD_LEN as usize {
        return Err(ServeError::Io(format!(
            "record payload of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// What the recovery reader found in a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix.
    pub records: usize,
    /// Byte length of the valid prefix (including the magic).
    pub valid_bytes: u64,
    /// Why scanning stopped before the end of the file, if it did. The
    /// bytes past `valid_bytes` are untrusted and are truncated away by
    /// [`Wal::open`].
    pub truncated: Option<String>,
}

/// Decode every valid record from raw log bytes (magic included),
/// stopping at the first torn or corrupt frame. Pure function of the
/// bytes — the WAL-robustness proptests drive it directly.
pub fn read_frames(bytes: &[u8]) -> Result<(Vec<WalRecord>, RecoveryReport)> {
    if bytes.len() < WAL_MAGIC.len() {
        // A file created but killed before the magic landed: treat as
        // empty and let `Wal::open` re-initialize it.
        return Ok((
            Vec::new(),
            RecoveryReport {
                records: 0,
                valid_bytes: 0,
                truncated: (!bytes.is_empty()).then(|| "incomplete file magic".to_string()),
            },
        ));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // A complete-but-wrong magic is a foreign file, not a torn tail:
        // refuse to touch it.
        return Err(ServeError::Corrupt(
            "file magic mismatch: not a CETS WAL (refusing to repair or append)".into(),
        ));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut truncated = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER {
            truncated = Some(format!("torn frame header at byte {pos}"));
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD_LEN as usize {
            truncated = Some(format!(
                "frame length {len} at byte {pos} exceeds the record cap"
            ));
            break;
        }
        if rest.len() < FRAME_HEADER + len {
            truncated = Some(format!("torn payload at byte {pos}"));
            break;
        }
        let stored = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if fnv1a(payload) != stored {
            truncated = Some(format!("checksum mismatch at byte {pos}"));
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                truncated = Some(format!("non-UTF-8 payload at byte {pos}"));
                break;
            }
        };
        let value: Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => {
                truncated = Some(format!("unparseable payload at byte {pos}: {e}"));
                break;
            }
        };
        match WalRecord::deserialize(&value) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                truncated = Some(format!("undecodable record at byte {pos}: {e}"));
                break;
            }
        }
        pos += FRAME_HEADER + len;
    }
    let n = records.len();
    Ok((
        records,
        RecoveryReport {
            records: n,
            valid_bytes: pos as u64,
            truncated,
        },
    ))
}

/// The append-side handle on a service log.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    fsync: FsyncPolicy,
    /// Valid records currently in the file.
    total: usize,
    kill: Option<KillSpec>,
    kill_tripped: bool,
}

impl Wal {
    /// Open (or create) the log at `path`, repairing any torn tail:
    /// returns the handle positioned for append, the valid record prefix,
    /// and the recovery report. Refuses files whose magic is not a CETS
    /// WAL.
    pub fn open(path: &Path, fsync: FsyncPolicy) -> Result<(Wal, Vec<WalRecord>, RecoveryReport)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(ServeError::Io(format!("read {}: {e}", path.display()))),
        };
        let (records, mut report) = read_frames(&bytes)?;
        let io = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io)?;
        if report.valid_bytes == 0 {
            // Fresh (or pre-magic-torn) file: (re)write the magic.
            file.set_len(0).map_err(io)?;
            file.write_all(WAL_MAGIC).map_err(io)?;
            file.sync_all().map_err(io)?;
            report.valid_bytes = WAL_MAGIC.len() as u64;
        } else if (bytes.len() as u64) > report.valid_bytes {
            // Repair: drop the torn/corrupt tail so later appends start
            // at a record boundary.
            file.set_len(report.valid_bytes).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        file.seek(SeekFrom::End(0)).map_err(io)?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            fsync,
            total: records.len(),
            kill: None,
            kill_tripped: false,
        };
        Ok((wal, records, report))
    }

    /// Arm a simulated process kill (see [`KillSpec`]).
    pub fn with_kill(mut self, kill: Option<KillSpec>) -> Self {
        self.kill = kill;
        self
    }

    /// Has the armed [`KillSpec`] fired?
    pub fn kill_tripped(&self) -> bool {
        self.kill_tripped
    }

    /// Valid records currently in the log.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Append one record durably (per the fsync policy). Returns the
    /// record's ordinal in the log.
    pub fn append(&mut self, rec: &WalRecord) -> Result<usize> {
        if self.kill_tripped {
            return Err(ServeError::SimulatedCrash {
                records: self.total,
            });
        }
        let frame = encode_frame(rec)?;
        let io = |e: std::io::Error| ServeError::Io(format!("{}: {e}", self.path.display()));
        if let Some(kill) = self.kill {
            if self.total >= kill.after_records {
                // Simulated death mid-append: the first `torn_bytes` of
                // the frame land, the rest never will.
                let torn = kill.torn_bytes.min(frame.len());
                self.file.write_all(&frame[..torn]).map_err(io)?;
                self.file.flush().map_err(io)?;
                self.kill_tripped = true;
                return Err(ServeError::SimulatedCrash {
                    records: self.total,
                });
            }
        }
        self.file.write_all(&frame).map_err(io)?;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data().map_err(io)?;
        }
        self.total += 1;
        Ok(self.total - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cets_wal_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CampaignSubmitted {
                spec: CampaignSpec::new("c1", "sphere", 7),
            },
            WalRecord::EvalCompleted {
                id: "c1".into(),
                stage: 0,
                idx: 0,
                u: vec![0.125, 0.75, 0.5],
                y: 2.625,
            },
            WalRecord::EvalFailed {
                id: "c1".into(),
                stage: 0,
                idx: 1,
                u: vec![0.1, 0.2, 0.3],
                kind: "crashed".into(),
                message: "boom".into(),
            },
            WalRecord::StageAdvanced {
                id: "c1".into(),
                stage: 0,
            },
            WalRecord::CampaignRestarted {
                id: "c1".into(),
                attempt: 1,
                reason: "stalled".into(),
            },
            WalRecord::CampaignFinished {
                id: "c1".into(),
                best_value: 2.625,
                config_hash: "fnv1a:0123456789abcdef".into(),
            },
            WalRecord::CampaignFailed {
                id: "c1".into(),
                reason: "restart budget exhausted".into(),
            },
            WalRecord::SpoolRejected {
                file: "bad.json".into(),
                reason: "C001: missing id".into(),
            },
        ]
    }

    #[test]
    fn append_reopen_roundtrips_every_record_type() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE_NAME);
        std::fs::remove_file(&path).ok();
        let recs = sample_records();
        {
            let (mut wal, existing, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(existing.is_empty());
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let (wal, back, report) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(back, recs);
        assert_eq!(wal.len(), recs.len());
        assert!(report.truncated.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE_NAME);
        std::fs::remove_file(&path).ok();
        let recs = sample_records();
        {
            let (mut wal, _, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            for r in &recs[..3] {
                wal.append(r).unwrap();
            }
        }
        // Tear the file mid-frame, then append after reopening.
        let bytes = std::fs::read(&path).unwrap();
        let mut torn = bytes.clone();
        torn.extend_from_slice(&42u32.to_le_bytes()); // header fragment
        std::fs::write(&path, &torn).unwrap();
        {
            let (mut wal, back, report) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            assert_eq!(back, recs[..3]);
            assert!(report.truncated.is_some());
            wal.append(&recs[3]).unwrap();
        }
        let (_, finals, report) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(finals, recs[..4]);
        assert!(report.truncated.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_truncates_from_the_flipped_record() {
        let dir = tmp_dir("bitflip");
        let path = dir.join(WAL_FILE_NAME);
        std::fs::remove_file(&path).ok();
        let recs = sample_records();
        {
            let (mut wal, _, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the third record's payload.
        let (_, clean) = {
            let (r, rep) = read_frames(&bytes).unwrap();
            (r, rep)
        };
        assert!(clean.truncated.is_none());
        let flip_at = bytes.len() / 2;
        bytes[flip_at] ^= 0x10;
        let (prefix, report) = read_frames(&bytes).unwrap();
        assert!(report.truncated.is_some());
        assert!(prefix.len() < recs.len());
        assert_eq!(prefix, recs[..prefix.len()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_file_refused_not_clobbered() {
        let dir = tmp_dir("foreign");
        let path = dir.join(WAL_FILE_NAME);
        std::fs::write(&path, b"definitely not a WAL file").unwrap();
        assert!(matches!(
            Wal::open(&path, FsyncPolicy::Never),
            Err(ServeError::Corrupt(_))
        ));
        // Untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a WAL file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_spec_tears_the_frame_and_poisons_the_handle() {
        let dir = tmp_dir("kill");
        let path = dir.join(WAL_FILE_NAME);
        std::fs::remove_file(&path).ok();
        let recs = sample_records();
        let (wal, _, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let mut wal = wal.with_kill(Some(KillSpec {
            after_records: 2,
            torn_bytes: 7,
        }));
        wal.append(&recs[0]).unwrap();
        wal.append(&recs[1]).unwrap();
        assert!(matches!(
            wal.append(&recs[2]),
            Err(ServeError::SimulatedCrash { records: 2 })
        ));
        assert!(wal.kill_tripped());
        // Poisoned: later appends die too.
        assert!(matches!(
            wal.append(&recs[3]),
            Err(ServeError::SimulatedCrash { .. })
        ));
        drop(wal);
        // Recovery sees exactly the 2 durable records and repairs the tear.
        let (wal2, back, report) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(back, recs[..2]);
        assert!(report.truncated.is_some());
        assert_eq!(wal2.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
