//! Deterministic crash simulation.
//!
//! The recovery claim — *a `kill -9` at any instant loses nothing but the
//! attempt in flight, and the restarted service converges to the
//! bit-identical result* — is only worth making if it is tested at every
//! kill point, not a sampled few. This module makes that cheap:
//!
//! * time is a `VirtualClock`, so restart backoffs cost nothing (the
//!   evaluation guard always times against its own virtual clock — see
//!   [`crate::supervisor::ServeConfig::watchdog`] — so the default
//!   watchdog stays on and classifies injected stalls identically here
//!   and in production);
//! * the WAL runs `FsyncPolicy::Never` (the recovery path is what is
//!   under test, not the disk);
//! * kills are [`KillSpec`]s injected at the WAL append boundary, with
//!   torn trailing writes at byte granularity;
//! * one worker, so a simulated run is a pure function of (specs, kills).
//!
//! [`run_service`] plays a whole crash *schedule*: each kill spawns a
//! fresh service incarnation over the same data directory (exactly a
//! process restart after `kill -9`), and the final incarnation runs to
//! completion. The crash-recovery suite sweeps `kills = [k]` for every
//! `k` up to the uninterrupted record count and compares rendered
//! summaries for equality.

use crate::spec::CampaignSpec;
use crate::supervisor::{ServeConfig, Service, ServiceSummary};
use crate::wal::{FsyncPolicy, KillSpec, Wal, WAL_FILE_NAME};
use crate::{Result, ServeError};
use cets_core::VirtualClock;
use std::path::Path;
use std::sync::Arc;

/// The outcome of a simulated crash schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated kills that actually fired (a kill point beyond the end
    /// of the run never trips).
    pub crashes: usize,
    /// Records in the WAL after the final (completed) incarnation.
    pub records: usize,
    /// Final service summary.
    pub summary: ServiceSummary,
}

fn sim_config(data_dir: &Path, kill: Option<KillSpec>) -> ServeConfig {
    ServeConfig {
        spool_dir: None,
        fsync: FsyncPolicy::Never,
        workers: 1,
        clock: Arc::new(VirtualClock::new()),
        kill,
        ..ServeConfig::new(data_dir.to_path_buf())
    }
}

/// One service incarnation: open the directory (replaying whatever a
/// previous incarnation left), submit any spec not yet in the log, and
/// drain. Returns `Ok(Some(summary))` on completion, `Ok(None)` if the
/// armed kill fired.
fn incarnation(
    data_dir: &Path,
    specs: &[CampaignSpec],
    kill: Option<KillSpec>,
) -> Result<Option<ServiceSummary>> {
    let mut svc = Service::open(sim_config(data_dir, kill))?;
    for spec in specs {
        if svc.state().campaign(&spec.id).is_none() {
            match svc.submit(spec.clone()) {
                Ok(()) => {}
                Err(ServeError::SimulatedCrash { .. }) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }
    match svc.run_until_drained() {
        Ok(summary) => Ok(Some(summary)),
        Err(ServeError::SimulatedCrash { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Run `specs` to completion in `data_dir` under a crash schedule: the
/// *i*-th incarnation dies per `kills[i]` (if it ever reaches that record
/// count), and the incarnation after the schedule is exhausted runs
/// uninterrupted.
pub fn run_service(
    data_dir: &Path,
    specs: &[CampaignSpec],
    kills: &[KillSpec],
) -> Result<SimReport> {
    let mut crashes = 0;
    for kill in kills {
        match incarnation(data_dir, specs, Some(*kill))? {
            // Died as scheduled: next incarnation recovers.
            None => crashes += 1,
            // Kill point beyond the end of the run: already done.
            Some(summary) => {
                return Ok(SimReport {
                    crashes,
                    records: wal_records(data_dir)?,
                    summary,
                })
            }
        }
    }
    let summary = incarnation(data_dir, specs, None)?
        .ok_or_else(|| ServeError::Corrupt("uninterrupted incarnation did not complete".into()))?;
    Ok(SimReport {
        crashes,
        records: wal_records(data_dir)?,
        summary,
    })
}

/// Run `specs` with no kills at all — the golden trajectory interrupted
/// runs are compared against.
pub fn uninterrupted_baseline(data_dir: &Path, specs: &[CampaignSpec]) -> Result<SimReport> {
    run_service(data_dir, specs, &[])
}

/// Count the valid records currently in a service directory's WAL.
pub fn wal_records(data_dir: &Path) -> Result<usize> {
    let (wal, _, _) = Wal::open(&data_dir.join(WAL_FILE_NAME), FsyncPolicy::Never)?;
    Ok(wal.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cets_sim_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn specs() -> Vec<CampaignSpec> {
        vec![
            CampaignSpec {
                max_evals: 5,
                n_init: 3,
                ..CampaignSpec::new("alpha", "sphere", 7)
            },
            CampaignSpec {
                max_evals: 4,
                n_init: 2,
                stages: vec![vec!["x0".into(), "x1".into()], vec!["x2".into()]],
                flaky_rate: 0.25,
                max_retries: 1,
                ..CampaignSpec::new("beta", "sphere", 21)
            },
        ]
    }

    #[test]
    fn baseline_is_reproducible() {
        let (da, db) = (tmp_dir("base_a"), tmp_dir("base_b"));
        let a = uninterrupted_baseline(&da, &specs()).unwrap();
        let b = uninterrupted_baseline(&db, &specs()).unwrap();
        assert_eq!(a.summary.render(), b.summary.render());
        assert_eq!(a.records, b.records);
        assert_eq!(a.crashes, 0);
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn killed_and_recovered_run_matches_baseline() {
        let (da, db) = (tmp_dir("kill_a"), tmp_dir("kill_b"));
        let baseline = uninterrupted_baseline(&da, &specs()).unwrap();
        // Die twice — mid-run with a torn write, then a clean kill — and
        // still converge to the identical summary.
        let killed = run_service(
            &db,
            &specs(),
            &[
                KillSpec {
                    after_records: baseline.records / 3,
                    torn_bytes: 5,
                },
                KillSpec {
                    after_records: 2 * baseline.records / 3,
                    torn_bytes: 0,
                },
            ],
        )
        .unwrap();
        assert_eq!(killed.crashes, 2);
        assert_eq!(killed.summary.render(), baseline.summary.render());
        assert_eq!(killed.records, baseline.records);
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn kill_beyond_the_end_never_fires() {
        let d = tmp_dir("beyond");
        let report = run_service(
            &d,
            &specs()[..1],
            &[KillSpec {
                after_records: 100_000,
                torn_bytes: 0,
            }],
        )
        .unwrap();
        assert_eq!(report.crashes, 0);
        std::fs::remove_dir_all(&d).ok();
    }
}
