//! `cets-serve` — the durable multi-campaign tuning service.
//!
//! The paper's methodology is a long-lived, budget-accounted campaign, and
//! its engine of record (GPTune) runs as a shared service over a persistent
//! history database. This crate promotes the per-run resilience layer
//! (typed failures, watchdog, `VirtualClock`, bit-for-bit resumable
//! searches) to a per-service substrate:
//!
//! * [`wal`] — an append-only, length-prefixed, FNV-checksummed
//!   write-ahead log with an explicit fsync policy and a recovery reader
//!   that tolerates torn tails and bit-flips by truncating at the first
//!   bad record.
//! * [`spec`] — the campaign job description (JSON, validated by
//!   `cets-lint`'s `C0xx` family on intake) and the built-in objective
//!   registry.
//! * [`recovery`] — WAL replay: rebuild every campaign's `EvalRecord`
//!   history and stage fold so a restarted service resumes each search
//!   **bit-for-bit** through `BoSearch::run_resilient_with_records`.
//! * [`supervisor`] — the per-campaign state machine
//!   (`Pending → Running → {Degraded, Completed, Failed}`) with panic
//!   containment via `ResilientObjective`, capped-exponential-backoff
//!   restarts under a restart budget, and N concurrent campaigns through
//!   the `cets-linalg::par` worker layer.
//! * [`sim`] — deterministic crash simulation: virtual-clock runs with
//!   injected process kills at record *k* and torn writes at byte
//!   granularity, powering the recovery-invariant tests.
//!
//! ## Durability contract
//!
//! Job intake is a file spool (no networking, zero new dependencies): drop
//! a JSON spec in the spool directory, the service validates it and writes
//! a `CampaignSubmitted` record — the WAL, not the spool, is the source of
//! truth from then on. Every evaluation attempt is logged *before* the
//! search advances past it, so a `kill -9` at any instant loses at most
//! the attempt in flight; recovery replays the log and continues every
//! campaign to the identical final configuration (see `DESIGN.md` §16 for
//! the record-by-record contract).

pub mod recovery;
pub mod sim;
pub mod spec;
pub mod supervisor;
pub mod wal;

pub use recovery::{CampaignPhase, CampaignState, ServiceState, Terminal};
pub use sim::{run_service, uninterrupted_baseline, SimReport};
pub use spec::{build_objective, config_hash, CampaignSpec, ServeObjective};
pub use supervisor::{CampaignSummary, RestartPolicy, ServeConfig, Service, ServiceSummary};
pub use wal::{
    fnv1a, read_frames, FsyncPolicy, KillSpec, RecoveryReport, Wal, WalRecord, WAL_FILE_NAME,
};

/// Service-layer errors.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem or I/O failure (path context in the message).
    Io(String),
    /// The WAL replayed into a semantically impossible state — the file
    /// passed checksum validation but was not written by this service.
    Corrupt(String),
    /// A campaign spec failed validation.
    Spec(String),
    /// An error from the core search machinery.
    Core(cets_core::CoreError),
    /// A simulated process kill injected by [`wal::KillSpec`] fired; the
    /// payload is the number of intact records the log retains.
    SimulatedCrash {
        /// Valid records in the WAL at the moment of "death".
        records: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::Corrupt(m) => write!(f, "corrupt service state: {m}"),
            ServeError::Spec(m) => write!(f, "invalid campaign spec: {m}"),
            ServeError::Core(e) => write!(f, "search error: {e}"),
            ServeError::SimulatedCrash { records } => {
                write!(f, "simulated crash with {records} records durable")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<cets_core::CoreError> for ServeError {
    fn from(e: cets_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<cets_space::SpaceError> for ServeError {
    fn from(e: cets_space::SpaceError) -> Self {
        ServeError::Core(cets_core::CoreError::Space(e))
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
