//! Campaign specifications and the built-in objective registry.
//!
//! A campaign spec is the JSON job description dropped into the spool
//! directory (or submitted programmatically). Syntactic validation is
//! `cets_lint::validate_campaign` (the `C0xx` family); this module owns
//! the typed struct, its (de)serialization, and the semantic step the
//! lint layer cannot do — instantiating the objective and checking the
//! stage parameters against its search space.
//!
//! The spec is embedded verbatim in the `CampaignSubmitted` WAL record,
//! so recovery is independent of the spool: once accepted, a campaign is
//! reconstructible from the log alone.

use crate::{Result, ServeError};
use cets_core::{Objective, Observation};
use cets_space::{Config, ParamValue, SearchSpace};
use cets_synthetic::{SyntheticCase, SyntheticFunction};
use serde::{DeError, Deserialize, Serialize, Value};

/// A tuning-campaign job description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Stable campaign id (`[A-Za-z0-9._-]{1,64}`): keys the WAL, dedupes
    /// spool re-scans, names the campaign in summaries.
    pub id: String,
    /// Objective reference: `sphere` or `synthetic:1`..`synthetic:5`.
    pub objective: String,
    /// Master seed; every derived stream (LHS design, per-iteration RNG,
    /// retry jitter, fault plan) is keyed off it.
    pub seed: u64,
    /// Evaluation budget **per stage** (including the initial design).
    pub max_evals: usize,
    /// Initial Latin-hypercube design size per stage.
    pub n_init: usize,
    /// Sequential parameter groups: each inner list is one search, its
    /// best configuration folded into the defaults of later stages.
    /// Empty ⇒ one stage over every parameter.
    pub stages: Vec<Vec<String>>,
    /// Injected failure probability (deterministic, config-keyed — see
    /// `FaultPlan::flaky`); 0 disables fault injection.
    pub flaky_rate: f64,
    /// Retries per evaluation for transient failures.
    pub max_retries: usize,
}

impl CampaignSpec {
    /// A minimal spec with serve defaults (`n_init` 4, one stage over all
    /// parameters, no faults, one retry).
    pub fn new(id: impl Into<String>, objective: impl Into<String>, seed: u64) -> Self {
        CampaignSpec {
            id: id.into(),
            objective: objective.into(),
            seed,
            max_evals: 10,
            n_init: 4,
            stages: Vec::new(),
            flaky_rate: 0.0,
            max_retries: 1,
        }
    }

    /// The effective stage decomposition over `space`: the declared
    /// stages, or one stage covering every parameter.
    pub fn stage_params(&self, space: &SearchSpace) -> Vec<Vec<String>> {
        if self.stages.is_empty() {
            vec![space.names().iter().map(|n| n.to_string()).collect()]
        } else {
            self.stages.clone()
        }
    }

    /// Number of stages (at least 1: empty `stages` means one stage over
    /// every parameter).
    pub fn n_stages(&self) -> usize {
        if self.stages.is_empty() {
            1
        } else {
            self.stages.len()
        }
    }

    /// Full validation: the lint `C0xx` pass over the serialized form,
    /// then objective instantiation and stage-parameter membership. The
    /// error message carries the first diagnostic's code so rejections
    /// are machine-greppable.
    pub fn validate(&self) -> Result<()> {
        let v = self.serialize();
        let diags = cets_lint::validate_campaign(&v);
        if let Some(d) = diags
            .iter()
            .find(|d| d.severity == cets_lint::Severity::Error)
        {
            return Err(ServeError::Spec(format!("{}: {}", d.code, d.message)));
        }
        let obj = build_objective(self)?;
        let space = obj.space();
        for (si, stage) in self.stages.iter().enumerate() {
            for p in stage {
                if !space.names().iter().any(|n| n == p) {
                    return Err(ServeError::Spec(format!(
                        "stage {si} references parameter `{p}` not present in objective \
                         `{}`",
                        self.objective
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Serialize for CampaignSpec {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::String(self.id.clone())),
            (
                "objective".to_string(),
                Value::String(self.objective.clone()),
            ),
            ("seed".to_string(), self.seed.serialize()),
            ("max_evals".to_string(), self.max_evals.serialize()),
            ("n_init".to_string(), self.n_init.serialize()),
            ("flaky_rate".to_string(), self.flaky_rate.serialize()),
            ("max_retries".to_string(), self.max_retries.serialize()),
        ];
        // Empty means "one stage over every parameter" and is spelled by
        // *omitting* the field — the C004 rule rejects a literal `[]`.
        if !self.stages.is_empty() {
            fields.push(("stages".to_string(), self.stages.serialize()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for CampaignSpec {
    fn deserialize(v: &Value) -> std::result::Result<Self, DeError> {
        let id = String::deserialize(v.get_field("id")).map_err(|e| DeError(format!("id: {e}")))?;
        let objective = String::deserialize(v.get_field("objective"))
            .map_err(|e| DeError(format!("objective: {e}")))?;
        let seed = v
            .get_field("seed")
            .as_u64()
            .map_err(|e| DeError(format!("seed: {e}")))?;
        let max_evals = v
            .get_field("max_evals")
            .as_u64()
            .map_err(|e| DeError(format!("max_evals: {e}")))? as usize;
        let n_init = match v.get_field("n_init") {
            Value::Null => 4,
            other => other
                .as_u64()
                .map_err(|e| DeError(format!("n_init: {e}")))? as usize,
        };
        let stages: Vec<Vec<String>> = match v.get_field("stages") {
            Value::Null => Vec::new(),
            other => {
                Deserialize::deserialize(other).map_err(|e| DeError(format!("stages: {e}")))?
            }
        };
        let flaky_rate = match v.get_field("flaky_rate") {
            Value::Null => 0.0,
            other => other
                .as_f64()
                .map_err(|e| DeError(format!("flaky_rate: {e}")))?,
        };
        let max_retries = match v.get_field("max_retries") {
            Value::Null => 1,
            other => other
                .as_u64()
                .map_err(|e| DeError(format!("max_retries: {e}")))? as usize,
        };
        Ok(CampaignSpec {
            id,
            objective,
            seed,
            max_evals,
            n_init,
            stages,
            flaky_rate,
            max_retries,
        })
    }
}

// ---------------------------------------------------------------------------
// Built-in objectives
// ---------------------------------------------------------------------------

/// The service's built-in demo objective: a separable sphere over three
/// parameters in `[0, 4]` (minimum at the origin), with two routines
/// `r0 = x0² + x1²` and `r1 = x2²`. Cheap, deterministic, and separable —
/// the workhorse of the crash-simulation tests.
#[derive(Debug)]
pub struct SphereObjective {
    space: SearchSpace,
}

impl SphereObjective {
    /// Build the 3-parameter sphere.
    pub fn new() -> Self {
        SphereObjective {
            space: SearchSpace::builder()
                .real("x0", 0.0, 4.0)
                .real("x1", 0.0, 4.0)
                .real("x2", 0.0, 4.0)
                .build(),
        }
    }
}

impl Default for SphereObjective {
    fn default() -> Self {
        SphereObjective::new()
    }
}

impl Objective for SphereObjective {
    fn space(&self) -> &SearchSpace {
        &self.space
    }
    fn routine_names(&self) -> Vec<String> {
        vec!["r0".into(), "r1".into()]
    }
    fn evaluate(&self, cfg: &Config) -> Observation {
        let (a, b, c) = (cfg[0].as_f64(), cfg[1].as_f64(), cfg[2].as_f64());
        let (r0, r1) = (a * a + b * b, c * c);
        Observation {
            total: r0 + r1,
            routines: vec![r0, r1],
        }
    }
    fn default_config(&self) -> Config {
        vec![
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
            ParamValue::Real(1.0),
        ]
    }
}

/// A built-in objective instantiated from a spec reference.
#[derive(Debug)]
pub enum ServeObjective {
    /// The demo sphere.
    Sphere(SphereObjective),
    /// One of the paper's five synthetic interdependence cases.
    Synthetic(SyntheticFunction),
}

impl Objective for ServeObjective {
    fn space(&self) -> &SearchSpace {
        match self {
            ServeObjective::Sphere(o) => o.space(),
            ServeObjective::Synthetic(o) => o.space(),
        }
    }
    fn routine_names(&self) -> Vec<String> {
        match self {
            ServeObjective::Sphere(o) => o.routine_names(),
            ServeObjective::Synthetic(o) => o.routine_names(),
        }
    }
    fn evaluate(&self, cfg: &Config) -> Observation {
        match self {
            ServeObjective::Sphere(o) => o.evaluate(cfg),
            ServeObjective::Synthetic(o) => o.evaluate(cfg),
        }
    }
    fn default_config(&self) -> Config {
        match self {
            ServeObjective::Sphere(o) => o.default_config(),
            ServeObjective::Synthetic(o) => o.default_config(),
        }
    }
    fn sample_valid(&self, rng: &mut dyn rand::Rng) -> Option<Config> {
        match self {
            ServeObjective::Sphere(o) => o.sample_valid(rng),
            ServeObjective::Synthetic(o) => o.sample_valid(rng),
        }
    }
}

/// Instantiate the objective a spec references. The grammar mirrors
/// `cets_lint::campaign::OBJECTIVE_FAMILIES`; anything the lint pass
/// accepts instantiates here.
pub fn build_objective(spec: &CampaignSpec) -> Result<ServeObjective> {
    match spec.objective.as_str() {
        "sphere" => Ok(ServeObjective::Sphere(SphereObjective::new())),
        other => match other.split_once(':') {
            Some(("synthetic", case)) => {
                let n: usize = case.parse().map_err(|_| {
                    ServeError::Spec(format!("bad synthetic case `{case}` in `{other}`"))
                })?;
                let case = *SyntheticCase::all()
                    .get(n.wrapping_sub(1))
                    .ok_or_else(|| ServeError::Spec(format!("synthetic case {n} outside 1..=5")))?;
                Ok(ServeObjective::Synthetic(
                    SyntheticFunction::new(case).with_seed(spec.seed),
                ))
            }
            _ => Err(ServeError::Spec(format!(
                "unknown objective `{}` (expected `sphere` or `synthetic:1`..`synthetic:5`)",
                spec.objective
            ))),
        },
    }
}

/// FNV-1a fingerprint of a full-space configuration, printed as
/// `fnv1a:<16 hex digits>`. Bit-exact: reals hash their IEEE-754 bit
/// patterns, so two configs hash equal iff they are identical to the last
/// bit — this is the equality the CI `serve-chaos` gate compares across
/// interrupted and uninterrupted runs.
pub fn config_hash(cfg: &Config) -> String {
    let mut bytes = Vec::with_capacity(cfg.len() * 9);
    for p in cfg {
        match p {
            ParamValue::Real(x) => {
                bytes.push(b'r');
                bytes.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ParamValue::Int(i) => {
                bytes.push(b'i');
                bytes.extend_from_slice(&i.to_le_bytes());
            }
            ParamValue::Index(k) => {
                bytes.push(b'k');
                bytes.extend_from_slice(&(*k as u64).to_le_bytes());
            }
        }
    }
    format!("fnv1a:{:016x}", crate::wal::fnv1a(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::{from_str, to_string};

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = CampaignSpec {
            stages: vec![vec!["x0".into(), "x1".into()], vec!["x2".into()]],
            flaky_rate: 0.25,
            max_retries: 2,
            ..CampaignSpec::new("demo", "sphere", 7)
        };
        let json = to_string(&spec.serialize()).unwrap();
        let back = CampaignSpec::deserialize(&from_str(&json).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_fill_in_for_missing_optional_fields() {
        let v = from_str(r#"{"id":"m","objective":"sphere","seed":3,"max_evals":8}"#).unwrap();
        let spec = CampaignSpec::deserialize(&v).unwrap();
        assert_eq!(spec.n_init, 4);
        assert!(spec.stages.is_empty());
        assert_eq!(spec.flaky_rate, 0.0);
        assert_eq!(spec.max_retries, 1);
    }

    #[test]
    fn validate_rejects_unknown_stage_param() {
        let spec = CampaignSpec {
            stages: vec![vec!["nope".into()]],
            ..CampaignSpec::new("demo", "sphere", 7)
        };
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn validate_rejects_lint_errors_with_code() {
        let spec = CampaignSpec::new("bad id!", "sphere", 7);
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("C001"), "{err}");
    }

    #[test]
    fn objectives_instantiate_per_grammar() {
        assert!(build_objective(&CampaignSpec::new("a", "sphere", 1)).is_ok());
        for n in 1..=5 {
            assert!(build_objective(&CampaignSpec::new("a", format!("synthetic:{n}"), 1)).is_ok());
        }
        assert!(build_objective(&CampaignSpec::new("a", "synthetic:6", 1)).is_err());
        assert!(build_objective(&CampaignSpec::new("a", "nope", 1)).is_err());
    }

    #[test]
    fn config_hash_is_bit_sensitive() {
        let a = vec![ParamValue::Real(1.0), ParamValue::Int(3)];
        let b = vec![ParamValue::Real(1.0 + f64::EPSILON), ParamValue::Int(3)];
        assert_eq!(config_hash(&a), config_hash(&a));
        assert_ne!(config_hash(&a), config_hash(&b));
    }
}
